//! `phe` — command-line front end for the path-selectivity toolkit.
//!
//! ```text
//! phe generate <moreno|dbpedia|snap-er|snap-ff|chained> [--scale X] [--seed N] --out graph.tsv
//! phe stats <graph.tsv>
//! phe build <graph.tsv> --k K --beta B [--ordering NAME] [--histogram NAME] --out stats.json
//! phe delta --graph graph.tsv --changes changes.tsv --k K --beta B [--out stats.json]
//! phe estimate <stats.json> <path-expr>...          # e.g. knows/likes
//! phe accuracy <graph.tsv> --k K --beta B           # compare all orderings
//! phe serve --snapshot [name=]stats.json... [--addr A] [--workers N]
//! phe query --remote ADDR [--estimator NAME] <path-expr>...
//! ```
//!
//! The `build` → `estimate` pair demonstrates the production workflow:
//! statistics are built once against the graph (expensive: exact catalog),
//! serialized as a small JSON snapshot, and then queried with **no graph
//! access** — exactly what a query optimizer's statistics module does.
//! `serve` keeps that restored estimator resident and answers batched
//! estimate requests over TCP (see `phe-service`); `query --remote` is the
//! matching client. Re-issuing `load` (or `phe serve`'s snapshot op) while
//! serving hot-swaps statistics without dropping in-flight requests.

use std::process::ExitCode;

use phe::core::snapshot::EstimatorSnapshot;
use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::graph::{Graph, GraphStats};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("build") => cmd_build(&args[1..]),
        Some("delta") => cmd_delta(&args[1..]),
        Some("estimate") => cmd_estimate(&args[1..]),
        Some("accuracy") => cmd_accuracy(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(other) => Err(format!("unknown subcommand {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `phe --help` for usage");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
phe — histogram domain ordering for path selectivity estimation

USAGE:
  phe generate <dataset> [--scale X] [--seed N] --out <graph.tsv>
      dataset: moreno | dbpedia | snap-er | snap-ff | chained
  phe stats <graph.tsv>
  phe build <graph.tsv> --k K --beta B [--ordering O] [--histogram H] [--stats]
            [--no-accuracy] [--trace] [--catalog-file NAME.phc] --out <stats.json>
      ordering:  num-alph | num-card | lex-alph | lex-card | sum-based | sum-based-L2
      histogram: equi-width | equi-depth | v-optimal-greedy | v-optimal-exact |
                 v-optimal-maxdiff | end-biased
      --catalog-file write the sparse catalog to a checksummed .phc
                     sidecar next to --out (recorded by relative name in
                     the snapshot) instead of inlining it in the JSON;
                     `phe serve` memory-maps the sidecar so the catalog
                     payload stays disk-resident
      --stats        report sparse vs dense catalog memory; past the dense
                     domain limit (2^28 paths) this needs --no-accuracy,
                     since only the sparse pipeline can run there
      --no-accuracy  skip the whole-domain accuracy report; keeps the
                     build sparse end-to-end (REQUIRED past the dense
                     domain limit)
      --trace        print the nested stage-time tree of the build
                     (count/merge/order/histogram)
  phe delta --graph <graph.tsv> --changes <changes.tsv> --k K --beta B
            [--ordering O] [--histogram H] [--out <stats.json>] [--compare]
      incrementally refreshes statistics: builds from the graph, then
      merges the changes file (+/-<TAB>src<TAB>label<TAB>dst lines)
      instead of recounting; --compare verifies against (and times) a
      full rebuild
  phe estimate <stats.json> <path-expr>...
      path-expr: a regular path expression over label names —
      concatenation knows/likes, alternation (a|b), optional a?,
      bounded repetition a{m,n}, single-step wildcard .
      (labels whose names contain ( ) | ? { } , . / or whitespace
      cannot be referenced — those characters belong to the grammar)
  phe accuracy <graph.tsv> --k K --beta B
  phe serve --snapshot [name=]stats.json [--snapshot ...] [--addr 127.0.0.1:7878]
            [--workers N] [--shards N] [--cache ENTRIES] [--no-load]
            [--max-connections N] [--max-inflight-per-client N]
            [--shed-p99-ms MS] [--shed-queue-depth N] [--max-queue-depth N]
            [--metrics-addr 127.0.0.1:9464] [--publish-interval-ms MS]
            [--compact-after N] [--drift-scale S]
      serves batched estimates over newline-delimited JSON TCP via a
      readiness-driven event loop: --shards event-loop threads multiplex
      connections (0 = auto) and --workers dispatch threads run the
      CPU-heavy ops. Admission control refuses connections past
      --max-connections (default 1024) and requests past a per-peer
      --max-inflight-per-client quota (default 64) with structured
      overloaded lines; load shedding refuses expensive ops while more
      than --shed-queue-depth requests are queued (default 128) or the
      recent p99 latency exceeds --shed-p99-ms (default off). ctrl-C
      prints the metrics report (qps, p50/p99, cache + expression-cache
      hit rates, per-slot accuracy drift) and exits; --metrics-addr
      additionally serves the same metrics as a Prometheus text scrape
      endpoint (GET /metrics). Maintained slots run an autonomous
      freshness loop: delta ops enqueue (past --max-queue-depth batches
      per slot they are refused with a backpressure line, default 1024);
      every --publish-interval-ms (default 2000; 0 disables the loop and
      applies deltas inline) the queue is compacted into one counting
      pass and published; a full rebuild triggers after --compact-after
      applied deltas (default 64; 0 disables) or when accuracy drift
      exceeds the Baraud-Birge threshold scaled by --drift-scale
      (default 1.0; 0 disables)
  phe query (--remote 127.0.0.1:7878 | --snapshot stats.json) [--estimator NAME]
            [--graph graph.tsv] [--explain] [--trace] <path-expr>...
      estimates regular path expressions — locally against a snapshot, or
      remotely via the estimate_expr op (one batched request, answered by
      a single estimator generation). --graph enables follow-matrix
      pruning of impossible branches (local mode). --explain prints the
      expansion tree, per-branch estimates, prune counts, and (remote)
      the server-side stage timings. --trace prints the local
      stage-time tree (parse/expand/prune/estimate)
";

/// Tiny flag parser: positional args plus `--flag value` pairs.
struct Flags {
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Flags {
    fn parse(args: &[String]) -> Result<Flags, String> {
        Self::parse_with_booleans(args, &[])
    }

    /// Like [`Flags::parse`], but the named flags are valueless switches
    /// (recorded with value `"true"`).
    fn parse_with_booleans(args: &[String], booleans: &[&str]) -> Result<Flags, String> {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            if let Some(name) = args[i].strip_prefix("--") {
                if booleans.contains(&name) {
                    flags.push((name.to_owned(), "true".to_owned()));
                    i += 1;
                    continue;
                }
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("flag --{name} needs a value"))?;
                flags.push((name.to_owned(), value.clone()));
                i += 2;
            } else {
                positional.push(args[i].clone());
                i += 1;
            }
        }
        Ok(Flags { positional, flags })
    }

    fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// All values of a repeatable flag, in order.
    fn get_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn get_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.get(name) {
            None => Ok(None),
            Some(raw) => raw
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value {raw:?} for --{name}")),
        }
    }

    fn require<T: std::str::FromStr>(&self, name: &str) -> Result<T, String> {
        self.get_parsed(name)?
            .ok_or_else(|| format!("missing required flag --{name}"))
    }
}

fn load_graph(path: &str) -> Result<Graph, String> {
    phe::graph::io::read_tsv_path(path).map_err(|e| format!("reading {path}: {e}"))
}

fn parse_ordering(name: &str) -> Result<OrderingKind, String> {
    OrderingKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown ordering {name:?} (ideal is ablation-only)"))
}

fn parse_histogram(name: &str) -> Result<HistogramKind, String> {
    HistogramKind::ALL
        .into_iter()
        .find(|k| k.name() == name)
        .ok_or_else(|| format!("unknown histogram {name:?}"))
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let [dataset] = flags.positional.as_slice() else {
        return Err("generate needs exactly one dataset name".into());
    };
    let scale: f64 = flags.get_parsed("scale")?.unwrap_or(1.0);
    let seed: u64 = flags.get_parsed("seed")?.unwrap_or(42);
    let out: String = flags.require("out")?;
    let graph = match dataset.as_str() {
        "moreno" => phe::datasets::moreno_health_like_scaled(scale, seed),
        "dbpedia" => phe::datasets::dbpedia_like_scaled(scale, seed),
        "snap-er" => phe::datasets::snap_er_scaled(scale, seed),
        "snap-ff" => phe::datasets::snap_ff_scaled(scale, seed),
        "chained" => {
            let vertices = (10_000.0 * scale).round().max(16.0) as u32;
            let edges = (60_000.0 * scale).round().max(32.0) as u64;
            phe::datasets::schema_graph(vertices, &phe::datasets::chained_schema(6, edges), seed)
        }
        other => return Err(format!("unknown dataset {other:?}")),
    };
    phe::graph::io::write_tsv_path(&graph, &out).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "wrote {out}: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("stats needs exactly one graph file".into());
    };
    let graph = load_graph(path)?;
    let stats = GraphStats::compute(&graph);
    println!("vertices: {}", stats.vertex_count);
    println!("edges:    {}", stats.edge_count);
    println!("labels:   {}", stats.label_count);
    println!(
        "degrees:  mean {:.2}, max {}, sinks {}",
        stats.mean_out_degree, stats.max_out_degree, stats.sink_count
    );
    println!(
        "label independence score: {:.3} (1 = independent chaining)",
        stats.label_independence_correlation()
    );
    println!("per-label cardinalities:");
    for l in graph.label_ids() {
        println!(
            "  {:<20} {}",
            graph.labels().name(l).unwrap_or("?"),
            graph.label_frequency(l)
        );
    }
    Ok(())
}

fn cmd_build(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_booleans(args, &["stats", "no-accuracy", "trace"])?;
    let [path] = flags.positional.as_slice() else {
        return Err("build needs exactly one graph file".into());
    };
    let graph = load_graph(path)?;
    // The accuracy report needs the dense ground-truth catalog; skipping
    // it (--no-accuracy) keeps the build sparse end-to-end, which is the
    // only way through domains past the dense limit.
    let with_accuracy = flags.get("no-accuracy").is_none();
    // --catalog-file NAME writes the sparse catalog to a `.phc` sidecar
    // next to --out instead of inlining it in the snapshot JSON;
    // `phe serve` then memory-maps it, keeping the payload disk-resident.
    let catalog_file = flags.get("catalog-file").map(str::to_owned);
    if let Some(sidecar) = catalog_file.as_deref() {
        if std::path::Path::new(sidecar).is_absolute() {
            return Err(format!(
                "--catalog-file {sidecar:?} must be a relative name — the snapshot \
                 records it relative to its own directory so the pair stays movable"
            ));
        }
    }
    let config = EstimatorConfig {
        k: flags.require("k")?,
        beta: flags.require("beta")?,
        ordering: parse_ordering(flags.get("ordering").unwrap_or("sum-based"))?,
        histogram: parse_histogram(flags.get("histogram").unwrap_or("v-optimal-greedy"))?,
        threads: 0,
        retain_catalog: with_accuracy,
        // The sidecar is written from the retained sparse catalog.
        retain_sparse: catalog_file.is_some(),
    };
    let out: String = flags.require("out")?;
    let trace = flags.get("trace").is_some();
    let (result, spans) =
        phe::obs::span::capture(|| PathSelectivityEstimator::build(&graph, config));
    let estimator = result.map_err(|e| {
        if with_accuracy && matches!(e, phe::histogram::HistogramError::DomainTooLarge { .. }) {
            format!(
                "{e}\nhint: this domain is past the dense materialization limit, where \
                 only the sparse pipeline can run — retry with --no-accuracy (the \
                 ground-truth accuracy report is what needs the dense catalog; \
                 --stats still works without it)"
            )
        } else {
            e.to_string()
        }
    })?;
    if trace {
        print!("{}", phe::obs::span::render_tree(&spans));
    }
    let mut snapshot = estimator.snapshot().map_err(|e| e.to_string())?;
    if let Some(sidecar) = &catalog_file {
        let catalog = estimator
            .sparse_catalog()
            .expect("retain_sparse is set when --catalog-file is given");
        let phc_path = std::path::Path::new(&out).parent().map_or_else(
            || std::path::PathBuf::from(sidecar),
            |dir| dir.join(sidecar),
        );
        let bytes = phe::pathenum::file::write_catalog_file(&phc_path, catalog)
            .map_err(|e| format!("writing {}: {e}", phc_path.display()))?;
        snapshot.sparse_runs = None;
        snapshot.catalog_file = Some(sidecar.clone());
        println!(
            "wrote {} ({bytes} bytes; `phe serve` memory-maps it disk-resident)",
            phc_path.display()
        );
    }
    let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
    std::fs::write(&out, json).map_err(|e| format!("writing {out}: {e}"))?;
    println!(
        "built {} statistics over {} paths (k = {}, β = {})",
        config.ordering.name(),
        estimator.domain_size(),
        config.k,
        config.beta
    );
    println!(
        "catalog {:.2}s | ordering {:.3}s | histogram {:.3}s",
        estimator.build_stats().catalog_time.as_secs_f64(),
        estimator.build_stats().ordering_time.as_secs_f64(),
        estimator.build_stats().histogram_time.as_secs_f64()
    );
    if with_accuracy {
        let report = estimator.accuracy_report();
        println!(
            "whole-domain mean |err| = {:.4}, median q-error = {:.3}",
            report.mean_abs_error_rate, report.median_q_error
        );
    }
    if flags.get("stats").is_some() {
        let fp = estimator.footprint();
        let percent = 100.0 * fp.nonzero_paths as f64 / fp.domain_size.max(1) as f64;
        println!(
            "domain           {} paths, {} realized ({percent:.2}% non-zero)",
            fp.domain_size, fp.nonzero_paths
        );
        println!(
            "sparse catalog   {} bytes compressed ({:.2} bytes/entry); plain pairs {} bytes \
             ({:.1}x compression); dense equivalent {} bytes ({:.1}x)",
            fp.sparse_bytes,
            fp.bytes_per_entry(),
            fp.sparse_plain_bytes,
            fp.compression_ratio(),
            fp.dense_bytes,
            fp.dense_bytes as f64 / (fp.sparse_bytes as f64).max(1.0)
        );
        println!(
            "retained         {} bytes ({})",
            estimator.size_bytes(),
            if with_accuracy {
                "histogram + ordering state + dense catalog"
            } else {
                "histogram + ordering state only"
            }
        );
    }
    println!(
        "wrote {out} ({} bytes retained state)",
        snapshot.retained_bytes()
    );
    Ok(())
}

fn cmd_delta(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_booleans(args, &["compare"])?;
    let graph_path: String = flags.require("graph")?;
    let changes_path: String = flags.require("changes")?;
    let graph = load_graph(&graph_path)?;
    let changes_file =
        std::fs::File::open(&changes_path).map_err(|e| format!("reading {changes_path}: {e}"))?;
    let delta = phe::graph::delta::read_changes(changes_file, &graph)
        .map_err(|e| format!("parsing {changes_path}: {e}"))?;

    let config = EstimatorConfig {
        k: flags.require("k")?,
        beta: flags.require("beta")?,
        ordering: parse_ordering(flags.get("ordering").unwrap_or("sum-based"))?,
        histogram: parse_histogram(flags.get("histogram").unwrap_or("v-optimal-greedy"))?,
        threads: 0,
        retain_catalog: false,
        // The sparse catalog is the state the delta merges into.
        retain_sparse: true,
    };

    let t0 = std::time::Instant::now();
    let base = PathSelectivityEstimator::build(&graph, config).map_err(|e| e.to_string())?;
    let base_secs = t0.elapsed().as_secs_f64();
    println!(
        "base build       {} paths, {} realized — {base_secs:.3}s (build id {:016x})",
        base.domain_size(),
        base.footprint().nonzero_paths,
        base.build_id()
    );

    let t1 = std::time::Instant::now();
    let (refreshed, new_graph) = base
        .apply_delta(&graph, &delta)
        .map_err(|e| e.to_string())?;
    let delta_secs = t1.elapsed().as_secs_f64();
    println!(
        "delta            {} removals + {} insertions ⇒ {} realized paths — {delta_secs:.3}s \
         ({:.1}x faster than the base build)",
        delta.removals().len(),
        delta.insertions().len(),
        refreshed.footprint().nonzero_paths,
        base_secs / delta_secs.max(1e-9)
    );
    println!(
        "lineage          build id {:016x}, {} delta(s) applied (snapshot v5)",
        refreshed.build_id(),
        refreshed.applied_deltas()
    );
    if let Some(drift) = refreshed.drift() {
        println!(
            "drift            mean |err| = {:.4}, max q-error = {:.3} over {} of {} touched \
             path(s) sampled",
            drift.mean_abs_error_rate, drift.max_q_error, drift.sampled, drift.touched
        );
    }

    if flags.get("compare").is_some() {
        let t2 = std::time::Instant::now();
        let fresh =
            PathSelectivityEstimator::build(&new_graph, config).map_err(|e| e.to_string())?;
        let full_secs = t2.elapsed().as_secs_f64();
        let merged = refreshed.sparse_catalog().expect("retain_sparse is set");
        let recounted = fresh.sparse_catalog().expect("retain_sparse is set");
        if merged != recounted {
            return Err("incremental catalog diverged from the full recount".into());
        }
        // Catalogs identical ⇒ identical ordering inputs and histogram —
        // spot-check the estimates anyway.
        for (index, _) in merged.iter().take(512) {
            let path = merged.encoding().decode(index as usize);
            let (a, b) = (refreshed.estimate(&path), fresh.estimate(&path));
            if a.to_bits() != b.to_bits() {
                return Err(format!("estimate mismatch on {path:?}: {a} vs {b}"));
            }
        }
        println!(
            "verified         merged catalog bit-identical to full recount; \
             full rebuild {full_secs:.3}s ⇒ delta is {:.1}x faster",
            full_secs / delta_secs.max(1e-9)
        );
    }

    if let Some(out) = flags.get("out") {
        let snapshot = refreshed.snapshot().map_err(|e| e.to_string())?;
        let json = serde_json::to_string_pretty(&snapshot).map_err(|e| e.to_string())?;
        std::fs::write(out, json).map_err(|e| format!("writing {out}: {e}"))?;
        println!(
            "wrote {out} ({} bytes retained state)",
            snapshot.retained_bytes()
        );
    }
    Ok(())
}

/// Renders a spanned parse error with its caret-underlined snippet, the
/// way the CLI reports it under `error:`.
fn render_query_error(source: &str, err: &phe::query::QueryError) -> String {
    let mut out = err.to_string();
    for line in err.snippet(source).lines() {
        out.push_str("\n  ");
        out.push_str(line);
    }
    out
}

/// One locally estimated expression: the parsed form, its expansion, and
/// per-branch estimates (canonical order).
struct LocalExprEstimate {
    expr: phe::query::PathExpr,
    expansion: phe::query::Expansion,
    branches: Vec<(String, f64)>,
    total: f64,
}

/// Parses, expands, and estimates one expression against a restored
/// snapshot — the local counterpart of the service's `estimate_expr` op,
/// plus optional follow-matrix pruning when the build graph is at hand.
fn local_expr_estimate(
    snapshot: &EstimatorSnapshot,
    restored: &phe::core::LabelPathHistogram,
    source: &str,
    follow: Option<&phe::graph::FollowMatrix>,
) -> Result<LocalExprEstimate, String> {
    let parse_span = phe::obs::span::stage("query.parse");
    let expr = phe::query::parse_expr(snapshot.label_names.as_slice(), source)
        .map_err(|e| render_query_error(source, &e))?;
    drop(parse_span);
    // Concrete over-length chains keep the pre-expression error text;
    // branchy expressions handle the budget per concrete path.
    if let Some(chain) = expr.as_concrete() {
        if chain.len() > snapshot.k {
            return Err(format!(
                "{source:?} has {} steps but the statistics cover k ≤ {}",
                chain.len(),
                snapshot.k
            ));
        }
    }
    let mut opts = phe::query::ExpandOptions::new(snapshot.label_names.len(), snapshot.k);
    if let Some(follow) = follow {
        opts = opts.with_follow(follow);
    }
    let expansion = expr.normalize().expand(&opts).map_err(|e| e.to_string())?;
    let estimate_span = phe::obs::span::stage("query.estimate");
    let mut total = 0.0f64;
    let mut branches = Vec::with_capacity(expansion.paths.len());
    for path in &expansion.paths {
        let estimate = restored.estimate(path);
        total += estimate;
        let name = phe::query::render_path(path, &|l| snapshot.label_names.get(l.index()).cloned());
        branches.push((name, estimate));
    }
    drop(estimate_span);
    Ok(LocalExprEstimate {
        expr,
        expansion,
        branches,
        total,
    })
}

fn read_snapshot(snapshot_path: &str) -> Result<EstimatorSnapshot, String> {
    let json = std::fs::read_to_string(snapshot_path)
        .map_err(|e| format!("reading {snapshot_path}: {e}"))?;
    serde_json::from_str(&json).map_err(|e| format!("parsing {snapshot_path}: {e}"))
}

fn cmd_estimate(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let (snapshot_path, exprs) = flags
        .positional
        .split_first()
        .ok_or("estimate needs a stats.json and at least one path expression")?;
    if exprs.is_empty() {
        return Err("estimate needs at least one path expression".into());
    }
    let snapshot = read_snapshot(snapshot_path)?;
    let restored = snapshot.restore().map_err(|e| e.to_string())?;
    for expr in exprs {
        let estimate = local_expr_estimate(&snapshot, &restored, expr, None)?;
        println!("{expr}\t{:.2}", estimate.total);
    }
    Ok(())
}

fn cmd_accuracy(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse(args)?;
    let [path] = flags.positional.as_slice() else {
        return Err("accuracy needs exactly one graph file".into());
    };
    let graph = load_graph(path)?;
    let k: usize = flags.require("k")?;
    let beta: usize = flags.require("beta")?;
    let catalog = phe::pathenum::parallel::compute_parallel(&graph, k, 0);
    println!(
        "{:<14} {:>12} {:>14}",
        "ordering", "mean |err|", "median q-error"
    );
    for kind in OrderingKind::ALL {
        let ordering = kind.build(&graph, &catalog, k);
        let report = phe::core::evaluate_configuration(
            &catalog,
            ordering.as_ref(),
            HistogramKind::VOptimalGreedy,
            beta,
        )
        .map_err(|e| e.to_string())?;
        println!(
            "{:<14} {:>12.4} {:>14.3}",
            kind.name(),
            report.mean_abs_error_rate,
            report.median_q_error
        );
    }
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_booleans(args, &["no-load"])?;
    let snapshots = flags.get_all("snapshot");
    if snapshots.is_empty() {
        return Err("serve needs at least one --snapshot [name=]stats.json".into());
    }

    // One registry for everything: span stage histograms, service
    // counters, cache counters, and drift gauges all land in the global
    // registry, so the scrape endpoint, the `metrics` protocol op, and
    // the shutdown dump can never disagree.
    let obs = std::sync::Arc::clone(phe::obs::global());
    let metrics = std::sync::Arc::new(phe::service::ServiceMetrics::with_registry(
        std::sync::Arc::clone(&obs),
    ));
    let cache_capacity: usize = flags
        .get_parsed("cache")?
        .unwrap_or(phe::service::EstimatorRegistry::DEFAULT_CACHE_CAPACITY);
    let registry = std::sync::Arc::new(
        phe::service::EstimatorRegistry::new(metrics.cache_counters(), cache_capacity)
            .with_observability(obs),
    );
    for spec in snapshots {
        // "--snapshot name=path" names the slot; bare paths serve as
        // "default" (first) or their file stem (subsequent).
        let (name, path) = match spec.split_once('=') {
            Some((name, path)) => (name.to_owned(), path),
            None if registry.is_empty() => ("default".to_owned(), spec),
            None => {
                let stem = std::path::Path::new(spec)
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(spec);
                (stem.to_owned(), spec)
            }
        };
        // register() hot-swaps silently; at startup a repeated name is an
        // operator mistake (e.g. two bare paths with the same file stem),
        // not a swap — refuse before publishing anything over the first.
        if registry.get(&name).is_some() {
            return Err(format!(
                "duplicate estimator name {name:?} (name snapshots explicitly: --snapshot NAME={path})"
            ));
        }
        let servable = phe::service::load_snapshot(path)?;
        let residency = servable.catalog_residency();
        registry.register(&name, servable);
        match residency {
            Some(c) if c.mapped => println!(
                "loaded {name:?} from {path} (catalog mmap-resident: {} payload bytes \
                 on disk, {} heap bytes for the skip index)",
                c.payload_bytes, c.heap_bytes
            ),
            Some(c) => println!(
                "loaded {name:?} from {path} (catalog heap-resident: {} bytes — \
                 mmap unavailable on this target)",
                c.payload_bytes
            ),
            None => println!("loaded {name:?} from {path}"),
        }
    }

    let mut config = phe::service::ServerConfig {
        allow_load: flags.get("no-load").is_none(),
        ..Default::default()
    };
    if let Some(addr) = flags.get("addr") {
        config.addr = addr.to_owned();
    }
    if let Some(workers) = flags.get_parsed("workers")? {
        config.workers = workers;
    }
    if let Some(shards) = flags.get_parsed("shards")? {
        config.shards = shards;
    }
    if let Some(max_connections) = flags.get_parsed("max-connections")? {
        config.max_connections = max_connections;
    }
    if let Some(quota) = flags.get_parsed("max-inflight-per-client")? {
        config.max_inflight_per_client = quota;
    }
    if let Some(depth) = flags.get_parsed("shed-queue-depth")? {
        config.shed_queue_depth = depth;
    }
    if let Some(p99_ms) = flags.get_parsed::<u64>("shed-p99-ms")? {
        config.shed_p99 = (p99_ms > 0).then(|| std::time::Duration::from_millis(p99_ms));
    }
    let metrics_server = match flags.get("metrics-addr") {
        None => None,
        Some(addr) => {
            let render_metrics = std::sync::Arc::clone(&metrics);
            let endpoint = phe::obs::http::serve_metrics(
                addr,
                std::sync::Arc::new(move || render_metrics.render_prometheus()),
            )
            .map_err(|e| format!("starting metrics endpoint on {addr}: {e}"))?;
            println!(
                "metrics scrape endpoint on http://{}/metrics",
                endpoint.local_addr()
            );
            Some(endpoint)
        }
    };
    // The maintenance loop is on by default; --publish-interval-ms 0
    // reverts `delta` to the legacy apply-inline path (no queue, no
    // compaction, no policy rebuilds).
    let publish_interval_ms: u64 = flags.get_parsed("publish-interval-ms")?.unwrap_or(2000);
    let max_queue_depth: Option<usize> = flags.get_parsed("max-queue-depth")?;
    let mut policy = phe::core::RebuildPolicy::default();
    if let Some(compact_after) = flags.get_parsed("compact-after")? {
        policy.max_applied_deltas = compact_after;
    }
    if let Some(drift_scale) = flags.get_parsed("drift-scale")? {
        policy.drift_scale = drift_scale;
    }
    let coordinator = (publish_interval_ms > 0).then(|| {
        phe::service::MaintenanceCoordinator::new(
            std::sync::Arc::clone(&registry),
            metrics.clone(),
            phe::service::MaintenanceConfig {
                publish_interval: std::time::Duration::from_millis(publish_interval_ms),
                policy,
                max_queue_depth: max_queue_depth
                    .unwrap_or(phe::service::MaintenanceConfig::default().max_queue_depth),
            },
        )
    });
    let ticker = coordinator.as_ref().map(|c| c.start_ticker());

    let sigint = phe::service::install_sigint_flag();
    let server = phe::service::Server::start_with(
        std::sync::Arc::clone(&registry),
        metrics.clone(),
        coordinator.clone(),
        config,
    )
    .map_err(|e| format!("starting server: {e}"))?;
    println!(
        "serving {} estimator(s) on {} — ctrl-C for metrics + shutdown",
        registry.len(),
        server.local_addr()
    );
    match publish_interval_ms {
        0 => println!("maintenance loop disabled (deltas apply inline)"),
        ms => println!("maintenance loop: compacted publish every {ms}ms"),
    }
    while !sigint() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("\nshutting down...");
    if let Some(coordinator) = &coordinator {
        coordinator.request_shutdown();
    }
    if let Some(handle) = ticker {
        let _ = handle.join();
    }
    server.shutdown();
    if let Some(mut endpoint) = metrics_server {
        endpoint.shutdown();
    }
    println!("{}", metrics.report());
    for info in registry.list() {
        let lineage = info.lineage.map_or_else(
            || "lineage unknown (pre-v3 snapshot)".to_owned(),
            |(id, deltas)| format!("build {id:016x} + {deltas} delta(s)"),
        );
        println!(
            "estimator        {:?} v{}: {} bytes retained, {lineage} ({})",
            info.name, info.version, info.size_bytes, info.description
        );
        println!(
            "                 expression cache: {} normalized-key hit(s) / {} raw miss(es)",
            info.expr_cache.0, info.expr_cache.1
        );
        if let Some(m) = info.maintained {
            println!(
                "                 maintained catalog: {} bytes compressed vs {} plain \
                 ({:.2} bytes/entry over {} paths)",
                m.catalog_bytes,
                m.plain_bytes,
                m.catalog_bytes as f64 / (m.nonzero_paths as f64).max(1.0),
                m.nonzero_paths
            );
        }
        if let Some(d) = info.drift {
            println!(
                "                 drift after last delta: mean |err| = {:.4}, \
                 max q-error = {:.3} ({} path(s) sampled)",
                d.mean_abs_error_rate, d.max_q_error, d.sampled
            );
        }
        if let Some(c) = info.catalog {
            println!(
                "                 catalog {}: {} payload bytes, {} heap bytes, \
                 {} realized paths",
                if c.mapped {
                    "mmap-resident"
                } else {
                    "heap-resident"
                },
                c.payload_bytes,
                c.heap_bytes,
                c.nonzero_paths
            );
        }
    }
    Ok(())
}

fn cmd_query(args: &[String]) -> Result<(), String> {
    let flags = Flags::parse_with_booleans(args, &["explain", "trace"])?;
    let explain = flags.get("explain").is_some();
    let trace = flags.get("trace").is_some();
    if flags.positional.is_empty() {
        return Err("query needs at least one path expression".into());
    }
    match (flags.get("remote"), flags.get("snapshot")) {
        (Some(_), Some(_)) => Err("--remote and --snapshot are mutually exclusive".into()),
        (Some(remote), None) => {
            if trace {
                return Err(
                    "--trace times the local pipeline; for server-side timings use \
                     --remote with --explain (the response carries the stage breakdown)"
                        .into(),
                );
            }
            query_remote(
                remote,
                flags.get("estimator").unwrap_or("default"),
                &flags.positional,
                explain,
            )
        }
        (None, Some(snapshot)) => query_local(
            snapshot,
            flags.get("graph"),
            &flags.positional,
            explain,
            trace,
        ),
        (None, None) => Err("query needs --remote host:port or --snapshot stats.json".into()),
    }
}

/// One batched `estimate_expr` request for all expressions: the batch is
/// answered by a single estimator generation, so the printed results are
/// consistent even if the server hot-swaps mid-call.
fn query_remote(
    remote: &str,
    estimator: &str,
    exprs: &[String],
    explain: bool,
) -> Result<(), String> {
    let mut client = phe::service::ServiceClient::connect(remote)
        .map_err(|e| format!("connecting {remote}: {e}"))?;
    let batch = client
        .estimate_expr(estimator, exprs, explain)
        .map_err(|e| e.to_string())?;
    if batch.results.len() != exprs.len() {
        return Err(format!(
            "server answered {} results for {} expressions",
            batch.results.len(),
            exprs.len()
        ));
    }
    for (expr, result) in exprs.iter().zip(&batch.results) {
        println!("{expr}\t{:.2}", result.estimate);
        if explain {
            println!(
                "  {} concrete path(s), {} pruned, {} truncated{}{}",
                result.paths,
                result.pruned,
                result.truncated,
                if result.cached { ", cached" } else { "" },
                if result.matches_empty {
                    ", also matches the empty path"
                } else {
                    ""
                }
            );
            for (path, estimate) in result.branches.iter().flatten() {
                println!("    {path}\t{estimate:.2}");
            }
            for (depth, stage, seconds) in result.stages.iter().flatten() {
                println!(
                    "    {:indent$}{stage} {:.3} ms",
                    "",
                    seconds * 1e3,
                    indent = depth * 2
                );
            }
        }
    }
    eprintln!(
        "(estimator {estimator:?} v{} answered {} expression(s))",
        batch.version,
        batch.results.len()
    );
    Ok(())
}

/// Local expression estimation against a snapshot — `phe estimate` with
/// the full expression surface, plus follow-matrix pruning when the
/// build graph is supplied.
fn query_local(
    snapshot_path: &str,
    graph_path: Option<&str>,
    exprs: &[String],
    explain: bool,
    trace: bool,
) -> Result<(), String> {
    let snapshot = read_snapshot(snapshot_path)?;
    let restored = snapshot.restore().map_err(|e| e.to_string())?;
    let follow = match graph_path {
        None => None,
        Some(path) => {
            let graph = load_graph(path)?;
            let graph_names: Vec<&str> = graph
                .label_ids()
                .map(|l| graph.labels().name(l).unwrap_or("?"))
                .collect();
            if graph_names != snapshot.label_names {
                return Err(format!(
                    "{path} does not match the statistics: its labels differ from the \
                     snapshot's (follow-matrix pruning needs the build graph)"
                ));
            }
            Some(phe::graph::FollowMatrix::from_graph(&graph))
        }
    };
    for expr in exprs {
        let (estimate, spans) = phe::obs::span::capture(|| {
            local_expr_estimate(&snapshot, &restored, expr, follow.as_ref())
        });
        let estimate = estimate?;
        println!("{expr}\t{:.2}", estimate.total);
        if trace {
            for line in phe::obs::span::render_tree(&spans).lines() {
                println!("  {line}");
            }
        }
        if explain {
            println!(
                "  {} concrete path(s), {} pruned, {} truncated{}",
                estimate.branches.len(),
                estimate.expansion.pruned,
                estimate.expansion.truncated,
                if estimate.expansion.matches_empty {
                    ", also matches the empty path"
                } else {
                    ""
                }
            );
            for line in estimate
                .expr
                .tree(&|l| snapshot.label_names.get(l.index()).cloned())
                .lines()
            {
                println!("  {line}");
            }
            for (path, value) in &estimate.branches {
                println!("    {path}\t{value:.2}");
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn get_all_collects_repeated_flags() {
        let f = Flags::parse(&s(&["--snapshot", "a.json", "--snapshot", "b=c.json"])).unwrap();
        assert_eq!(f.get_all("snapshot"), vec!["a.json", "b=c.json"]);
        assert!(f.get_all("missing").is_empty());
    }

    #[test]
    fn boolean_flags_take_no_value() {
        let f =
            Flags::parse_with_booleans(&s(&["--no-load", "--addr", "x:1"]), &["no-load"]).unwrap();
        assert_eq!(f.get("no-load"), Some("true"));
        assert_eq!(f.get("addr"), Some("x:1"));
        // Bare non-boolean flags still error.
        assert!(Flags::parse_with_booleans(&s(&["--k"]), &["no-load"]).is_err());
    }

    #[test]
    fn flags_parse_positional_and_pairs() {
        let f = Flags::parse(&s(&["g.tsv", "--k", "3", "--beta", "64"])).unwrap();
        assert_eq!(f.positional, vec!["g.tsv"]);
        assert_eq!(f.get("k"), Some("3"));
        assert_eq!(f.require::<usize>("beta").unwrap(), 64);
        assert!(f.get("missing").is_none());
    }

    #[test]
    fn flags_last_wins() {
        let f = Flags::parse(&s(&["--k", "3", "--k", "5"])).unwrap();
        assert_eq!(f.require::<usize>("k").unwrap(), 5);
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Flags::parse(&s(&["--k"])).is_err());
    }

    #[test]
    fn bad_parse_is_reported() {
        let f = Flags::parse(&s(&["--k", "abc"])).unwrap();
        let err = f.require::<usize>("k").unwrap_err();
        assert!(err.contains("abc"));
    }

    #[test]
    fn ordering_and_histogram_names_resolve() {
        assert_eq!(parse_ordering("sum-based").unwrap(), OrderingKind::SumBased);
        assert_eq!(
            parse_histogram("v-optimal-greedy").unwrap(),
            HistogramKind::VOptimalGreedy
        );
        assert!(parse_ordering("ideal").is_err(), "ideal is ablation-only");
        assert!(parse_histogram("nope").is_err());
    }
}
