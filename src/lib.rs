#![warn(missing_docs)]

//! # phe — histogram domain ordering for path selectivity estimation
//!
//! Umbrella crate re-exporting the whole workspace. See the crate-level
//! documentation of each member for details:
//!
//! * [`graph`] — directed edge-labeled graph substrate,
//! * [`datasets`] — seeded synthetic dataset generators (paper Table 3),
//! * [`pathenum`] — path evaluation and full selectivity catalogs,
//! * [`histogram`] — equi-width / equi-depth / V-optimal histograms,
//! * [`core`] — the paper's contribution: ranking rules, domain orderings
//!   (numerical, lexicographical, sum-based), and the estimator,
//! * [`query`] — a path-query optimizer driven by the estimator,
//! * [`obs`] — observability substrate: metrics registry, Prometheus
//!   exposition, structured stage spans, HTTP scrape endpoint,
//! * [`service`] — long-lived concurrent serving: estimator registry with
//!   snapshot hot-swap, batched estimation, LRU caching, TCP server.

pub use phe_core as core;
pub use phe_datasets as datasets;
pub use phe_graph as graph;
pub use phe_histogram as histogram;
pub use phe_obs as obs;
pub use phe_pathenum as pathenum;
pub use phe_query as query;
pub use phe_service as service;
