//! Concurrent serving under snapshot hot-swap: several client threads fire
//! batched estimate requests over TCP while the main thread swaps the
//! estimator mid-flight. The contract under test:
//!
//! * **zero failed requests** — a swap never drops or errors a request;
//! * **batch consistency** — every batch is answered entirely by one
//!   generation (all estimates match that generation's expected values,
//!   never a mix);
//! * **monotone visibility** — a connection never sees the version go
//!   backwards, and after the swap completes new requests see v2.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::{erdos_renyi, LabelDistribution};
use phe::graph::LabelId;
use phe::service::protocol::PathStep;
use phe::service::{
    EstimatorRegistry, ServableEstimator, Server, ServerConfig, ServiceClient, ServiceMetrics,
};

const LABELS: u16 = 4;
const K: usize = 3;

fn build_servable(beta: usize, ordering: OrderingKind) -> ServableEstimator {
    let g = erdos_renyi(
        60,
        480,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        23,
    );
    ServableEstimator::from_estimator(
        PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: K,
                beta,
                ordering,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap(),
    )
}

/// The fixed query batch every request asks for.
fn batch_paths() -> Vec<Vec<LabelId>> {
    let mut paths = Vec::new();
    for l1 in 0..LABELS {
        paths.push(vec![LabelId(l1)]);
        for l2 in 0..LABELS {
            paths.push(vec![LabelId(l1), LabelId(l2)]);
        }
    }
    paths
}

fn expected_estimates(est: &ServableEstimator) -> Vec<f64> {
    batch_paths()
        .iter()
        .map(|p| est.estimate_labels(p).unwrap())
        .collect()
}

/// One plain-HTTP scrape of the metrics endpoint; panics unless the
/// endpoint answers 200 with a body.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::{BufRead, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: phe\r\nConnection: close\r\n\r\n"
    )
    .expect("send scrape request");
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "scrape failed: {line}");
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("scrape body");
    body
}

#[test]
fn concurrent_batches_survive_hot_swap() {
    // Two deliberately different estimator generations: different β and
    // ordering ⇒ different estimates for at least some paths.
    let v1 = build_servable(4, OrderingKind::SumBased);
    let v2 = build_servable(48, OrderingKind::NumCard);
    let expected_v1 = expected_estimates(&v1);
    let expected_v2 = expected_estimates(&v2);
    assert_ne!(
        expected_v1, expected_v2,
        "test needs distinguishable generations"
    );

    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 4096));
    registry.register("main", v1);

    let server = Server::start(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(), // ephemeral port
            workers: 8,
            allow_load: false,
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 120;

    let wire_paths: Vec<Vec<PathStep>> = batch_paths()
        .iter()
        .map(|p| p.iter().map(|l| PathStep::Id(l.0)).collect())
        .collect();

    let v1_batches = Arc::new(AtomicU64::new(0));
    let v2_batches = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_id in 0..CLIENTS {
            let wire_paths = wire_paths.clone();
            let expected_v1 = expected_v1.clone();
            let expected_v2 = expected_v2.clone();
            let v1_batches = Arc::clone(&v1_batches);
            let v2_batches = Arc::clone(&v2_batches);
            handles.push(scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("client connects");
                let mut last_version = 0u64;
                for request in 0..REQUESTS_PER_CLIENT {
                    let batch = client
                        .estimate("main", wire_paths.clone())
                        .unwrap_or_else(|e| {
                            panic!("client {client_id} request {request} failed: {e}")
                        });
                    // Monotone visibility per connection.
                    assert!(
                        batch.version >= last_version,
                        "client {client_id}: version went {last_version} -> {}",
                        batch.version
                    );
                    last_version = batch.version;
                    // Batch consistency: entirely one generation's answers.
                    let expected = match batch.version {
                        1 => &expected_v1,
                        2 => &expected_v2,
                        v => panic!("client {client_id}: unexpected version {v}"),
                    };
                    assert_eq!(
                        &batch.estimates, expected,
                        "client {client_id} request {request}: batch mixes generations \
                         (version {})",
                        batch.version
                    );
                    match batch.version {
                        1 => v1_batches.fetch_add(1, Ordering::Relaxed),
                        _ => v2_batches.fetch_add(1, Ordering::Relaxed),
                    };
                }
            }));
        }

        // Let the clients get going, then hot-swap mid-flight. `v2` was
        // built up front, so the swap window is microseconds — rebuilding
        // here could let fast clients drain all traffic first.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while v1_batches.load(Ordering::Relaxed) < (CLIENTS * 5) as u64 {
            // A deadline keeps an early client panic (which only surfaces
            // at join, after this loop) from turning into a test hang.
            assert!(
                std::time::Instant::now() < deadline,
                "clients made no progress — check for client-thread panics"
            );
            std::thread::yield_now();
        }
        let version = registry.register("main", v2);
        metrics.record_swap();
        assert_eq!(version, 2);

        for handle in handles {
            handle.join().expect("client thread panicked");
        }
    });

    // Post-swap, a fresh request must see v2.
    let mut client = ServiceClient::connect(addr).expect("post-swap connect");
    let batch = client
        .estimate("main", wire_paths.clone())
        .expect("post-swap estimate");
    assert_eq!(batch.version, 2);
    assert_eq!(batch.estimates, expected_v2);

    // The swap happened mid-flight: both generations actually served.
    assert!(
        v1_batches.load(Ordering::Relaxed) > 0,
        "no batch served by v1"
    );
    assert!(
        v2_batches.load(Ordering::Relaxed) > 0,
        "swap landed after all traffic — not mid-flight"
    );

    let report = metrics.report();
    assert_eq!(report.errors, 0, "no request may fail during a swap");
    assert_eq!(
        report.requests,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 1,
        "every request was answered exactly once"
    );
    // The fixed batch repeats, so the cache must be doing real work.
    assert!(
        report.cache_hits > 0,
        "repeated identical batches should hit the cache"
    );

    // The scrape endpoint reads the same registry atomics as the report:
    // spin it up, scrape it over HTTP, and fail on any exposition the
    // Prometheus text parser rejects or that disagrees with the report.
    let render = Arc::clone(&metrics);
    let mut endpoint =
        phe::obs::http::serve_metrics("127.0.0.1:0", Arc::new(move || render.render_prometheus()))
            .expect("metrics endpoint starts");
    let body = scrape_metrics(endpoint.local_addr());
    let samples = phe::obs::parse_exposition(&body).expect("scrape output must parse");
    let value = |name: &str, labels: &[(&str, &str)]| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .map(|s| s.value)
    };
    assert_eq!(
        value("phe_requests_total", &[]),
        Some(report.requests as f64)
    );
    assert_eq!(value("phe_swaps_total", &[]), Some(1.0));
    assert_eq!(
        value("phe_request_duration_seconds_count", &[]),
        Some(report.requests as f64)
    );
    assert_eq!(
        value(
            "phe_cache_requests_total",
            &[("cache", "estimate"), ("outcome", "hit")]
        ),
        Some(report.cache_hits as f64)
    );
    endpoint.shutdown();

    server.shutdown();
}

#[test]
fn server_shutdown_with_open_idle_connection() {
    let registry = Arc::new(EstimatorRegistry::with_default_counters());
    registry.register("main", build_servable(8, OrderingKind::SumBased));
    let server = Server::start(
        registry,
        Arc::new(ServiceMetrics::new()),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            allow_load: false,
        },
    )
    .expect("server starts");
    // An idle connection must not wedge shutdown (workers poll the stop
    // flag on read timeout).
    let idle = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(5),
        "shutdown took {:?}",
        t0.elapsed()
    );
    drop(idle);
}
