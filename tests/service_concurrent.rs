//! Concurrent serving under snapshot hot-swap: several client threads fire
//! batched estimate requests over TCP while the main thread swaps the
//! estimator mid-flight. The contract under test:
//!
//! * **zero failed requests** — a swap never drops or errors a request;
//! * **batch consistency** — every batch is answered entirely by one
//!   generation (all estimates match that generation's expected values,
//!   never a mix);
//! * **monotone visibility** — a connection never sees the version go
//!   backwards, and after the swap completes new requests see v2.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::{erdos_renyi, LabelDistribution};
use phe::graph::{GraphDelta, LabelId};
use phe::service::protocol::PathStep;
use phe::service::{
    EstimatorRegistry, ServableEstimator, Server, ServerConfig, ServiceClient, ServiceMetrics,
};

const LABELS: u16 = 4;
const K: usize = 3;

fn build_servable(beta: usize, ordering: OrderingKind) -> ServableEstimator {
    let g = erdos_renyi(
        60,
        480,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        23,
    );
    ServableEstimator::from_estimator(
        PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: K,
                beta,
                ordering,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap(),
    )
}

/// The fixed query batch every request asks for.
fn batch_paths() -> Vec<Vec<LabelId>> {
    let mut paths = Vec::new();
    for l1 in 0..LABELS {
        paths.push(vec![LabelId(l1)]);
        for l2 in 0..LABELS {
            paths.push(vec![LabelId(l1), LabelId(l2)]);
        }
    }
    paths
}

fn expected_estimates(est: &ServableEstimator) -> Vec<f64> {
    batch_paths()
        .iter()
        .map(|p| est.estimate_labels(p).unwrap())
        .collect()
}

/// One plain-HTTP scrape of the metrics endpoint; panics unless the
/// endpoint answers 200 with a body.
fn scrape_metrics(addr: std::net::SocketAddr) -> String {
    use std::io::{BufRead, Read, Write};
    let mut stream = std::net::TcpStream::connect(addr).expect("connect metrics endpoint");
    write!(
        stream,
        "GET /metrics HTTP/1.1\r\nHost: phe\r\nConnection: close\r\n\r\n"
    )
    .expect("send scrape request");
    let mut reader = std::io::BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    assert!(line.starts_with("HTTP/1.1 200"), "scrape failed: {line}");
    loop {
        line.clear();
        reader.read_line(&mut line).expect("header line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
    }
    let mut body = String::new();
    reader.read_to_string(&mut body).expect("scrape body");
    body
}

#[test]
fn concurrent_batches_survive_hot_swap() {
    // Two deliberately different estimator generations: different β and
    // ordering ⇒ different estimates for at least some paths.
    let v1 = build_servable(4, OrderingKind::SumBased);
    let v2 = build_servable(48, OrderingKind::NumCard);
    let expected_v1 = expected_estimates(&v1);
    let expected_v2 = expected_estimates(&v2);
    assert_ne!(
        expected_v1, expected_v2,
        "test needs distinguishable generations"
    );

    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 4096));
    registry.register("main", v1);

    let server = Server::start(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(), // ephemeral port
            workers: 8,
            allow_load: false,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    const CLIENTS: usize = 4;
    const REQUESTS_PER_CLIENT: usize = 120;

    let wire_paths: Vec<Vec<PathStep>> = batch_paths()
        .iter()
        .map(|p| p.iter().map(|l| PathStep::Id(l.0)).collect())
        .collect();

    let v1_batches = Arc::new(AtomicU64::new(0));
    let v2_batches = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_id in 0..CLIENTS {
            let wire_paths = wire_paths.clone();
            let expected_v1 = expected_v1.clone();
            let expected_v2 = expected_v2.clone();
            let v1_batches = Arc::clone(&v1_batches);
            let v2_batches = Arc::clone(&v2_batches);
            handles.push(scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("client connects");
                let mut last_version = 0u64;
                for request in 0..REQUESTS_PER_CLIENT {
                    let batch = client
                        .estimate("main", wire_paths.clone())
                        .unwrap_or_else(|e| {
                            panic!("client {client_id} request {request} failed: {e}")
                        });
                    // Monotone visibility per connection.
                    assert!(
                        batch.version >= last_version,
                        "client {client_id}: version went {last_version} -> {}",
                        batch.version
                    );
                    last_version = batch.version;
                    // Batch consistency: entirely one generation's answers.
                    let expected = match batch.version {
                        1 => &expected_v1,
                        2 => &expected_v2,
                        v => panic!("client {client_id}: unexpected version {v}"),
                    };
                    assert_eq!(
                        &batch.estimates, expected,
                        "client {client_id} request {request}: batch mixes generations \
                         (version {})",
                        batch.version
                    );
                    match batch.version {
                        1 => v1_batches.fetch_add(1, Ordering::Relaxed),
                        _ => v2_batches.fetch_add(1, Ordering::Relaxed),
                    };
                }
            }));
        }

        // Let the clients get going, then hot-swap mid-flight. `v2` was
        // built up front, so the swap window is microseconds — rebuilding
        // here could let fast clients drain all traffic first.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
        while v1_batches.load(Ordering::Relaxed) < (CLIENTS * 5) as u64 {
            // A deadline keeps an early client panic (which only surfaces
            // at join, after this loop) from turning into a test hang.
            assert!(
                std::time::Instant::now() < deadline,
                "clients made no progress — check for client-thread panics"
            );
            std::thread::yield_now();
        }
        let version = registry.register("main", v2);
        metrics.record_swap();
        assert_eq!(version, 2);

        for handle in handles {
            handle.join().expect("client thread panicked");
        }
    });

    // Post-swap, a fresh request must see v2.
    let mut client = ServiceClient::connect(addr).expect("post-swap connect");
    let batch = client
        .estimate("main", wire_paths.clone())
        .expect("post-swap estimate");
    assert_eq!(batch.version, 2);
    assert_eq!(batch.estimates, expected_v2);

    // The swap happened mid-flight: both generations actually served.
    assert!(
        v1_batches.load(Ordering::Relaxed) > 0,
        "no batch served by v1"
    );
    assert!(
        v2_batches.load(Ordering::Relaxed) > 0,
        "swap landed after all traffic — not mid-flight"
    );

    let report = metrics.report();
    assert_eq!(report.errors, 0, "no request may fail during a swap");
    assert_eq!(
        report.requests,
        (CLIENTS * REQUESTS_PER_CLIENT) as u64 + 1,
        "every request was answered exactly once"
    );
    // The fixed batch repeats, so the cache must be doing real work.
    assert!(
        report.cache_hits > 0,
        "repeated identical batches should hit the cache"
    );

    // The scrape endpoint reads the same registry atomics as the report:
    // spin it up, scrape it over HTTP, and fail on any exposition the
    // Prometheus text parser rejects or that disagrees with the report.
    let render = Arc::clone(&metrics);
    let mut endpoint =
        phe::obs::http::serve_metrics("127.0.0.1:0", Arc::new(move || render.render_prometheus()))
            .expect("metrics endpoint starts");
    let body = scrape_metrics(endpoint.local_addr());
    let samples = phe::obs::parse_exposition(&body).expect("scrape output must parse");
    let value = |name: &str, labels: &[(&str, &str)]| {
        samples
            .iter()
            .find(|s| {
                s.name == name
                    && labels
                        .iter()
                        .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
            })
            .map(|s| s.value)
    };
    assert_eq!(
        value("phe_requests_total", &[]),
        Some(report.requests as f64)
    );
    assert_eq!(value("phe_swaps_total", &[]), Some(1.0));
    assert_eq!(
        value("phe_request_duration_seconds_count", &[]),
        Some(report.requests as f64)
    );
    assert_eq!(
        value(
            "phe_cache_requests_total",
            &[("cache", "estimate"), ("outcome", "hit")]
        ),
        Some(report.cache_hits as f64)
    );
    endpoint.shutdown();

    server.shutdown();
}

/// A small valid churn batch against `graph`: existing edges removed,
/// fresh same-label endpoint recombinations inserted. Each batch drawn
/// from the same base composes validly with the others in any order (a
/// removal names an edge present in the base, an insertion an absent
/// one, so no cross-batch insert/remove pair can collide).
fn churn(graph: &phe::graph::Graph, seed: u64, removals: usize, insertions: usize) -> GraphDelta {
    use phe::graph::VertexId;
    let mut x = seed | 1;
    let mut step = |m: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % m as u64) as usize
    };
    let mut edges: Vec<(u32, u16, u32)> = Vec::new();
    for label in 0..graph.label_count() as u16 {
        for (s, t) in graph.forward_csr(LabelId(label)).iter_edges() {
            edges.push((s.0, label, t.0));
        }
    }
    let mut delta = GraphDelta::new();
    let mut removed = std::collections::HashSet::new();
    let mut attempts = 0;
    while removed.len() < removals && attempts < removals * 200 {
        attempts += 1;
        let (s, l, t) = edges[step(edges.len())];
        if removed.insert((s, l, t)) {
            delta.remove(VertexId(s), LabelId(l), VertexId(t));
        }
    }
    let mut added = std::collections::HashSet::new();
    let mut attempts = 0;
    while added.len() < insertions && attempts < insertions * 200 {
        attempts += 1;
        let (s, l, _) = edges[step(edges.len())];
        let (_, l2, t) = edges[step(edges.len())];
        if l != l2
            || graph.has_edge(VertexId(s), LabelId(l), VertexId(t))
            || removed.contains(&(s, l, t))
        {
            continue;
        }
        if added.insert((s, l, t)) {
            delta.insert(VertexId(s), LabelId(l), VertexId(t));
        }
    }
    assert!(!delta.is_empty(), "churn produced an empty batch");
    delta
}

/// Concurrent `delta` ops racing an **in-flight drift-triggered
/// rebuild**: the maintenance worker is parked inside the rebuild (fault
/// gate), wire clients enqueue fresh batches and hammer
/// `estimate_id_batch` across the rebuild's publish, and every response
/// must stay single-generation-consistent (a batch with each path asked
/// twice must answer both copies identically, and equal versions must
/// answer identically across the whole run).
#[test]
fn concurrent_deltas_during_inflight_drift_rebuild() {
    use phe::core::{DriftThreshold, RebuildPolicy};
    use phe::graph::delta::write_changes_path;
    use phe::service::protocol::Request;
    use phe::service::registry::MaintenanceState;
    use phe::service::{FailAction, FailPoint, Gate, MaintenanceConfig, MaintenanceCoordinator};
    use serde_json::Value;

    let dir = std::env::temp_dir()
        .join("phe_service_concurrent")
        .join("drift_rebuild");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");

    let g0 = erdos_renyi(
        80,
        640,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        41,
    );
    let maintained_config = EstimatorConfig {
        k: K,
        beta: 8,
        ordering: OrderingKind::SumBased,
        histogram: HistogramKind::VOptimalGreedy,
        threads: 1,
        retain_catalog: false,
        retain_sparse: true,
    };
    let estimator = PathSelectivityEstimator::build(&g0, maintained_config).expect("base build");
    let servable = ServableEstimator::from_snapshot(&estimator.snapshot().expect("snapshot"))
        .expect("servable");
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 4096));
    assert_eq!(
        registry.register_if_version_maintained(
            "main",
            servable,
            0,
            Some(MaintenanceState {
                graph: g0.clone(),
                estimator,
            }),
        ),
        Some(1)
    );
    let coordinator = MaintenanceCoordinator::new(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        MaintenanceConfig {
            publish_interval: std::time::Duration::from_secs(3600), // ticked by hand
            // A threshold any nonzero drift crosses: the first compacted
            // publish flows straight into a drift-triggered rebuild.
            policy: RebuildPolicy {
                max_applied_deltas: 0,
                drift_scale: 1.0,
                drift_override: Some(DriftThreshold {
                    mean_abs_error_rate: 1e-9,
                    max_q_error: 1.0 + 1e-9,
                }),
            },
            ..MaintenanceConfig::default()
        },
    );
    let server = Server::start_with(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        Some(Arc::clone(&coordinator)),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 8,
            allow_load: true,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    let send_delta = |path: &std::path::Path| {
        let mut client = ServiceClient::connect(addr).expect("delta client connects");
        let response = client
            .roundtrip(&Request::Delta {
                name: "main".to_owned(),
                changes: path.display().to_string(),
            })
            .expect("delta op");
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("queued"),
            "maintained delta ops must queue: {response:?}"
        );
    };

    // Batch 1 drives the drift crossing; its compacted publish is v2 and
    // the triggered rebuild parks at the gate with v3 still unpublished.
    let driver = churn(&g0, 1009, 6, 6);
    let driver_path = dir.join("driver.tsv");
    write_changes_path(&driver, &g0, &driver_path).expect("write driver");
    send_delta(&driver_path);
    let g1 = g0.apply_delta(&driver).expect("driver applies");

    let gate = Gate::new();
    coordinator.failure_plan().inject(
        FailPoint::BeforeRebuild,
        FailAction::Hold(Arc::clone(&gate)),
    );
    let worker = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || coordinator.run_slot("main"))
    };
    gate.wait_arrived();
    assert_eq!(
        registry.get("main").unwrap().version(),
        2,
        "the compacted publish lands before the rebuild parks"
    );

    // Wire batches valid against g1 (the parked rebuild holds the
    // single-flight mark, so nothing can compact them out from under
    // their base until it finishes).
    const WIRE_BATCHES: usize = 6;
    let batch_files: Vec<std::path::PathBuf> = (0..WIRE_BATCHES)
        .map(|i| {
            let delta = churn(&g1, 2003 + i as u64 * 7919, 4, 4);
            let path = dir.join(format!("batch{i}.tsv"));
            write_changes_path(&delta, &g1, &path).expect("write batch");
            path
        })
        .collect();

    let wire_paths: Vec<Vec<PathStep>> = batch_paths()
        .iter()
        .map(|p| p.iter().map(|l| PathStep::Id(l.0)).collect())
        .collect();
    // Each path asked twice in one request: a torn response shows up as
    // the two copies disagreeing.
    let half = wire_paths.len();
    let doubled: Vec<Vec<PathStep>> = wire_paths
        .iter()
        .chain(wire_paths.iter())
        .cloned()
        .collect();
    let by_version: Arc<std::sync::Mutex<std::collections::HashMap<u64, Vec<f64>>>> =
        Arc::new(std::sync::Mutex::new(std::collections::HashMap::new()));
    let released = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        // Estimate hammer: runs across the parked window, the release,
        // the rebuild's publish, and the drain below.
        let mut estimate_handles = Vec::new();
        for client_id in 0..3 {
            let doubled = doubled.clone();
            let by_version = Arc::clone(&by_version);
            let released = Arc::clone(&released);
            estimate_handles.push(scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("estimate client");
                let mut last_version = 0u64;
                let mut request = 0usize;
                // Keep hammering until well after the gate released.
                while !released.load(Ordering::Relaxed) || !request.is_multiple_of(16) {
                    request += 1;
                    let batch = client
                        .estimate("main", doubled.clone())
                        .unwrap_or_else(|e| {
                            panic!("client {client_id} request {request} failed: {e}")
                        });
                    assert!(
                        batch.version >= last_version,
                        "client {client_id}: version went {last_version} -> {}",
                        batch.version
                    );
                    last_version = batch.version;
                    let (first, second) = batch.estimates.split_at(half);
                    assert_eq!(
                        first, second,
                        "client {client_id} request {request}: torn batch at v{}",
                        batch.version
                    );
                    let mut seen = by_version.lock().unwrap();
                    match seen.get(&batch.version) {
                        Some(expected) => assert_eq!(
                            expected, &batch.estimates,
                            "v{} answered two different ways",
                            batch.version
                        ),
                        None => {
                            seen.insert(batch.version, batch.estimates.clone());
                        }
                    }
                }
            }));
        }

        // Concurrent delta ops, all guaranteed to land while the
        // drift-triggered rebuild is in flight: the gate is released only
        // after every enqueue returned.
        let mut delta_handles = Vec::new();
        for chunk in batch_files.chunks(2) {
            delta_handles.push(scope.spawn(move || {
                for path in chunk {
                    send_delta(path);
                }
            }));
        }
        for handle in delta_handles {
            handle.join().expect("delta thread");
        }
        assert_eq!(coordinator.status("main").queued, WIRE_BATCHES);
        assert_eq!(
            registry.get("main").unwrap().version(),
            2,
            "nothing may publish while the rebuild holds the slot"
        );

        gate.release();
        let outcome = worker.join().expect("worker joins");
        assert_eq!(
            outcome,
            phe::service::RunOutcome::Published {
                version: 3,
                batches: 1,
                rebuilt: Some("drift".to_owned()),
            }
        );
        // Drain the batches queued during the rebuild in one compacted
        // pass (drift arm off now — this pass is about the queue).
        coordinator.set_policy(RebuildPolicy {
            max_applied_deltas: 0,
            drift_scale: 0.0,
            drift_override: None,
        });
        let outcome = coordinator.run_slot("main");
        assert_eq!(
            outcome,
            phe::service::RunOutcome::Published {
                version: 4,
                batches: WIRE_BATCHES,
                rebuilt: None,
            }
        );
        released.store(true, Ordering::Relaxed);
        for handle in estimate_handles {
            handle.join().expect("estimate thread");
        }
    });

    // Exactly-once accounting: every batch enqueued over the wire was
    // compacted into a publish, none lost, none replayed.
    let status = coordinator.status("main");
    assert_eq!(
        (
            status.queued,
            status.enqueued,
            status.compacted,
            status.purged
        ),
        (0, 1 + WIRE_BATCHES as u64, 1 + WIRE_BATCHES as u64, 0)
    );

    // Lineage consistency: the maintained catalog equals a recount of
    // the final graph (driver + every wire batch, in any order — the
    // batches are pairwise compose-safe by construction).
    let wire_deltas: Vec<GraphDelta> = batch_files
        .iter()
        .map(|path| phe::graph::delta::read_changes_path(path, &g1).expect("reread batch"))
        .collect();
    let final_graph = g1
        .apply_delta(&GraphDelta::compose(&wire_deltas))
        .expect("composed wire batches apply");
    let state = registry.maintenance("main").expect("still maintained");
    let reference =
        PathSelectivityEstimator::build(&final_graph, maintained_config).expect("recount");
    assert_eq!(
        state
            .estimator
            .sparse_catalog()
            .expect("maintained catalog"),
        reference.sparse_catalog().expect("reference catalog"),
        "maintained catalog diverged from a recount of the final graph"
    );

    // A fresh request sees the drained generation.
    let mut client = ServiceClient::connect(addr).expect("final client");
    assert_eq!(client.estimate("main", wire_paths).unwrap().version, 4);
    assert_eq!(
        metrics.report().errors,
        0,
        "no request may fail mid-rebuild"
    );

    server.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn server_shutdown_with_open_idle_connection() {
    let registry = Arc::new(EstimatorRegistry::with_default_counters());
    registry.register("main", build_servable(8, OrderingKind::SumBased));
    let server = Server::start(
        registry,
        Arc::new(ServiceMetrics::new()),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            allow_load: false,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    // An idle connection must not wedge — or even delay — shutdown: the
    // event loop wakes on its shutdown pipes immediately, well under the
    // old thread pool's ~250 ms read-timeout poll.
    let idle = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    // Let the acceptor hand the connection to a shard first.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let t0 = std::time::Instant::now();
    server.shutdown();
    assert!(
        t0.elapsed() < std::time::Duration::from_millis(250),
        "shutdown took {:?}",
        t0.elapsed()
    );
    drop(idle);
}
