//! Fidelity checks against the published paper: the worked example
//! (Tables 1–2), the domain arithmetic behind Table 4, and the err metric
//! (Formula 6) — all through the public `phe` API.

use phe::core::ordering::{
    DomainOrdering, LexicographicalOrdering, NumericalOrdering, SumBasedOrdering,
};
use phe::core::{LabelPath, LabelRanking, PathDomain};
use phe::graph::LabelId;
use phe::histogram::error_rate;

fn path(spec: &str) -> LabelPath {
    let ids: Vec<LabelId> = spec
        .split(',')
        .map(|t| LabelId(t.trim().parse::<u16>().unwrap() - 1))
        .collect();
    LabelPath::new(&ids)
}

fn assert_row(ordering: &dyn DomainOrdering, expected: &[&str]) {
    for (i, spec) in expected.iter().enumerate() {
        assert_eq!(
            ordering.path_at(i as u64),
            path(spec),
            "{} index {i}",
            ordering.name()
        );
        assert_eq!(ordering.index_of(&path(spec)), i as u64);
    }
}

/// Table 2, all five rows, exactly as published.
#[test]
fn table2_all_rows() {
    let domain = PathDomain::new(3, 2);
    let alph = LabelRanking::identity(3);
    let card = LabelRanking::cardinality_from_frequencies(&[20, 100, 80]);

    assert_row(
        &NumericalOrdering::new(domain, alph.clone(), "num-alph"),
        &[
            "1", "2", "3", "1,1", "1,2", "1,3", "2,1", "2,2", "2,3", "3,1", "3,2", "3,3",
        ],
    );
    assert_row(
        &NumericalOrdering::new(domain, card.clone(), "num-card"),
        &[
            "1", "3", "2", "1,1", "1,3", "1,2", "3,1", "3,3", "3,2", "2,1", "2,3", "2,2",
        ],
    );
    assert_row(
        &LexicographicalOrdering::new(domain, alph, "lex-alph"),
        &[
            "1", "1,1", "1,2", "1,3", "2", "2,1", "2,2", "2,3", "3", "3,1", "3,2", "3,3",
        ],
    );
    assert_row(
        &LexicographicalOrdering::new(domain, card.clone(), "lex-card"),
        &[
            "1", "1,1", "1,3", "1,2", "3", "3,1", "3,3", "3,2", "2", "2,1", "2,3", "2,2",
        ],
    );
    assert_row(
        &SumBasedOrdering::new(domain, card),
        &[
            "1", "3", "2", "1,1", "1,3", "3,1", "3,3", "1,2", "2,1", "3,2", "2,3", "2,2",
        ],
    );
}

/// Table 1: summed ranks of the worked example.
#[test]
fn table1_summed_ranks() {
    let domain = PathDomain::new(3, 2);
    let card = LabelRanking::cardinality_from_frequencies(&[20, 100, 80]);
    let ordering = SumBasedOrdering::new(domain, card);
    let expected = [
        ("1", 1u32),
        ("2", 3),
        ("3", 2),
        ("1,1", 2),
        ("1,2", 4),
        ("1,3", 3),
        ("2,1", 4),
        ("2,2", 6),
        ("2,3", 5),
        ("3,1", 3),
        ("3,2", 5),
        ("3,3", 4),
    ];
    for (spec, sum) in expected {
        assert_eq!(ordering.summed_rank(&path(spec)), sum, "path {spec}");
    }
}

/// The paper's k = 6 / 6-label domain arithmetic: |L6| = 55 986, and its
/// halving β sweep is exactly the published Table 4 column — evidence the
/// paper's "55996" is a typo.
#[test]
fn table4_domain_arithmetic() {
    let domain = PathDomain::new(6, 6);
    assert_eq!(domain.size(), 55_986);
    let betas: Vec<u64> = (1..=7).map(|i| domain.size() >> i).collect();
    assert_eq!(betas, vec![27993, 13996, 6998, 3499, 1749, 874, 437]);
}

/// Formula 6 edge cases, as published.
#[test]
fn formula6_error_metric() {
    assert_eq!(error_rate(10.0, 10), 0.0);
    assert_eq!(error_rate(0.0, 0), 0.0);
    assert_eq!(error_rate(0.0, 42), -1.0);
    assert_eq!(error_rate(42.0, 0), 1.0);
    assert!((error_rate(15.0, 10) - (1.0 / 3.0)).abs() < 1e-12);
    assert!((error_rate(10.0, 15) + (1.0 / 3.0)).abs() < 1e-12);
}

/// The Figure 1 domain: 6 labels, k = 3 ⇒ 258 label paths.
#[test]
fn figure1_domain_size() {
    assert_eq!(PathDomain::new(6, 3).size(), 258);
}

/// The greedy splitting example from Section 3.1:
/// 4/4/3/3/6 → 4/4, 3/3, 6.
#[test]
fn section31_greedy_split_example() {
    use phe::core::base_set::{greedy_split, Piece};
    let p = path("4,4,3,3,6");
    assert_eq!(
        greedy_split(&p),
        vec![
            Piece::Pair(LabelId(3), LabelId(3)),
            Piece::Pair(LabelId(2), LabelId(2)),
            Piece::Single(LabelId(5)),
        ]
    );
}
