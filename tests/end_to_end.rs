//! End-to-end integration: dataset generation → catalog → ordering →
//! histogram → estimation, across the public `phe` API.

use phe::core::eval::evaluate_configuration;
use phe::core::ordering::OrderingKind;
use phe::core::{EstimatorConfig, HistogramKind, PathSelectivityEstimator};
use phe::datasets::{self, LabelDistribution};
use phe::graph::LabelId;
use phe::pathenum::{parallel, SelectivityCatalog};

/// Every (ordering, histogram) configuration builds and produces finite,
/// non-negative estimates over the whole domain on every paper dataset
/// (reduced scale).
#[test]
fn every_configuration_builds_on_every_dataset() {
    for dataset in datasets::paper_datasets(0.01, 11) {
        let graph = &dataset.graph;
        let k = 2;
        let catalog = SelectivityCatalog::compute(graph, k);
        for ordering in OrderingKind::ALL {
            for histogram in [
                HistogramKind::EquiWidth,
                HistogramKind::EquiDepth,
                HistogramKind::VOptimalGreedy,
                HistogramKind::VOptimalMaxDiff,
            ] {
                let built = ordering.build(graph, &catalog, k);
                let report = evaluate_configuration(&catalog, built.as_ref(), histogram, 8)
                    .unwrap_or_else(|e| {
                        panic!(
                            "{}/{}/{}: {e}",
                            dataset.name,
                            ordering.name(),
                            histogram.name()
                        )
                    });
                assert!(
                    report.mean_abs_error_rate.is_finite()
                        && (0.0..=1.0).contains(&report.mean_abs_error_rate),
                    "{}/{}/{}: error rate {}",
                    dataset.name,
                    ordering.name(),
                    histogram.name(),
                    report.mean_abs_error_rate
                );
            }
        }
    }
}

/// The paper's headline result end-to-end: on a skewed, independently
/// labeled synthetic graph, sum-based ordering beats every native
/// ordering at an equal (tight) bucket budget.
#[test]
fn sum_based_wins_on_skewed_synthetic_data() {
    let graph = datasets::erdos_renyi(120, 2400, 5, LabelDistribution::Zipf { exponent: 1.1 }, 99);
    let k = 3;
    let catalog = SelectivityCatalog::compute(&graph, k);
    let beta = catalog.len() / 32;
    let error_of = |kind: OrderingKind| {
        let ordering = kind.build(&graph, &catalog, k);
        evaluate_configuration(
            &catalog,
            ordering.as_ref(),
            HistogramKind::VOptimalGreedy,
            beta,
        )
        .unwrap()
        .mean_abs_error_rate
    };
    let sum_based = error_of(OrderingKind::SumBased);
    for native in [
        OrderingKind::NumAlph,
        OrderingKind::NumCard,
        OrderingKind::LexAlph,
        OrderingKind::LexCard,
    ] {
        let native_err = error_of(native);
        assert!(
            sum_based < native_err,
            "sum-based ({sum_based:.4}) should beat {} ({native_err:.4})",
            native.name()
        );
    }
}

/// Estimator builds are deterministic for a fixed seed and configuration.
#[test]
fn estimates_are_deterministic() {
    let build = || {
        let graph = datasets::moreno_health_like_scaled(0.05, 7);
        PathSelectivityEstimator::build(
            &graph,
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 2, // parallel catalog must not break determinism
                retain_catalog: true,
                retain_sparse: false,
            },
        )
        .unwrap()
    };
    let a = build();
    let b = build();
    for l1 in 0..6u16 {
        for l2 in 0..6u16 {
            let path = [LabelId(l1), LabelId(l2)];
            assert_eq!(a.estimate(&path), b.estimate(&path), "path {l1}/{l2}");
            assert_eq!(a.exact(&path), b.exact(&path));
        }
    }
}

/// The retained catalog agrees with an independently computed one, and
/// estimates of a full-budget histogram reproduce it exactly.
#[test]
fn full_budget_estimator_is_an_oracle() {
    let graph = datasets::snap_er_scaled(0.005, 3);
    let k = 2;
    let est = PathSelectivityEstimator::build(
        &graph,
        EstimatorConfig {
            k,
            beta: usize::MAX,
            ordering: OrderingKind::LexCard,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: true,
            retain_sparse: false,
        },
    )
    .unwrap();
    let reference = parallel::compute_parallel(&graph, k, 2);
    for (path, truth) in reference.iter() {
        assert_eq!(
            est.estimate(&path),
            truth as f64,
            "path {path:?} should be exact at full budget"
        );
    }
}

/// Larger bucket budgets never make whole-domain accuracy worse
/// (V-optimal greedy, any ordering) on a real-ish workload.
#[test]
fn accuracy_improves_with_budget_end_to_end() {
    let graph = datasets::dbpedia_like_scaled(0.01, 5);
    let k = 3;
    let catalog = SelectivityCatalog::compute(&graph, k);
    for kind in [OrderingKind::NumCard, OrderingKind::SumBased] {
        let ordering = kind.build(&graph, &catalog, k);
        let mut last = f64::INFINITY;
        for beta in [4usize, 16, 64, 256] {
            let err = evaluate_configuration(
                &catalog,
                ordering.as_ref(),
                HistogramKind::VOptimalGreedy,
                beta,
            )
            .unwrap()
            .mean_abs_error_rate;
            assert!(
                err <= last + 0.02,
                "{}: error went {last:.4} -> {err:.4} at beta {beta}",
                kind.name()
            );
            last = err;
        }
    }
}
