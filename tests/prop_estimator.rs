//! Property tests at the whole-system level: for arbitrary graphs and
//! configurations, the estimator upholds its contract.

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::graph::{GraphBuilder, LabelId, VertexId};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = phe::graph::Graph> {
    (
        2u16..4,
        prop::collection::vec((0u32..20, 0u16..4, 0u32..20), 1..120),
    )
        .prop_map(|(labels, edges)| {
            let mut b = GraphBuilder::with_numeric_labels(20, labels);
            for (s, l, t) in edges {
                b.add_edge(VertexId(s), LabelId(l % labels), VertexId(t));
            }
            b.build()
        })
}

fn arb_config() -> impl Strategy<Value = (usize, usize, OrderingKind, HistogramKind)> {
    (
        1usize..4,
        1usize..40,
        prop::sample::select(OrderingKind::ALL.to_vec()),
        prop::sample::select(vec![
            HistogramKind::EquiWidth,
            HistogramKind::EquiDepth,
            HistogramKind::VOptimalGreedy,
            HistogramKind::VOptimalMaxDiff,
            HistogramKind::EndBiased,
        ]),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn estimates_are_finite_and_nonnegative(g in arb_graph(), (k, beta, ordering, histogram) in arb_config()) {
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig { k, beta, ordering, histogram, threads: 1, retain_catalog: true, retain_sparse: false },
        ).unwrap();
        // Walk the whole domain through the public API.
        for (path, truth) in est.catalog().expect("retained").iter() {
            let e = est.estimate(&path);
            prop_assert!(e.is_finite() && e >= 0.0, "estimate {e} for {path:?}");
            let err = est.error(&path);
            prop_assert!((-1.0..=1.0).contains(&err), "err {err}");
            // Formula 6 consistency with the separately computed truth.
            if e == truth as f64 {
                prop_assert_eq!(err, 0.0);
            }
        }
    }

    #[test]
    fn estimate_mass_is_conserved_for_bucket_histograms(g in arb_graph(), k in 1usize..4, beta in 1usize..30) {
        // Bucketed histograms preserve total mass: summing estimates over
        // the whole domain reproduces the catalog's total mass (each
        // bucket contributes count × mean = sum).
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k,
                beta,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                            retain_catalog: true,
                            retain_sparse: false,
            },
        ).unwrap();
        let total_estimate: f64 = est
            .catalog()
            .expect("retained")
            .iter()
            .map(|(path, _)| est.estimate(&path))
            .sum();
        let total_truth = est.catalog().expect("retained").total_mass() as f64;
        prop_assert!(
            (total_estimate - total_truth).abs() <= 1e-6 * total_truth.max(1.0) + 1e-3,
            "mass drifted: {total_estimate} vs {total_truth}"
        );
    }

    #[test]
    fn snapshots_round_trip_for_arbitrary_graphs(g in arb_graph(), (k, beta, ordering, histogram) in arb_config()) {
        prop_assume!(ordering != OrderingKind::Ideal);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig { k, beta, ordering, histogram, threads: 1, retain_catalog: true, retain_sparse: false },
        ).unwrap();
        let restored = est.snapshot().unwrap().restore().unwrap();
        for (path, _) in est.catalog().expect("retained").iter() {
            prop_assert_eq!(est.estimate(&path), restored.estimate_labels(&path));
        }
    }
}
