//! The sparse pipeline's contract: for arbitrary graphs, every ordering ×
//! histogram configuration built through the sparse streaming pipeline
//! produces **bit-identical** estimates to the dense reference pipeline,
//! the two catalog representations round-trip losslessly, and — for
//! arbitrary edge churn — incremental delta application reproduces a
//! from-scratch build exactly.

use std::time::Duration;

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::graph::{Graph, GraphBuilder, GraphDelta, LabelId, VertexId};
use phe::pathenum::{SelectivityCatalog, SparseCatalog};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = phe::graph::Graph> {
    (
        2u16..5,
        prop::collection::vec((0u32..20, 0u16..5, 0u32..20), 0..120),
    )
        .prop_map(|(labels, edges)| {
            let mut b = GraphBuilder::with_numeric_labels(20, labels);
            for (s, l, t) in edges {
                b.add_edge(VertexId(s), LabelId(l % labels), VertexId(t));
            }
            b.build()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // Sparse build ≡ dense build, across every ordering and histogram
    // kind, over every path in the domain.
    #[test]
    fn sparse_and_dense_pipelines_estimate_identically(
        g in arb_graph(),
        k in 1usize..4,
        beta in 1usize..24,
    ) {
        let dense_catalog = SelectivityCatalog::compute(&g, k);
        for ordering in OrderingKind::ALL.into_iter().chain([OrderingKind::Ideal]) {
            for histogram in HistogramKind::ALL {
                let config = EstimatorConfig {
                    k,
                    beta,
                    ordering,
                    histogram,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: false,
                };
                let sparse_est = PathSelectivityEstimator::build(&g, config).unwrap();
                let dense_est = PathSelectivityEstimator::from_catalog(
                    &g,
                    dense_catalog.clone(),
                    config,
                    Duration::ZERO,
                )
                .unwrap();
                for (path, _) in dense_catalog.iter() {
                    let d = dense_est.estimate(&path);
                    let s = sparse_est.estimate(&path);
                    prop_assert_eq!(
                        d.to_bits(),
                        s.to_bits(),
                        "{}/{}: dense {} != sparse {} for {:?}",
                        ordering.name(),
                        histogram.name(),
                        d,
                        s,
                        path
                    );
                }
            }
        }
    }

}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `SparseCatalog ⇄ SelectivityCatalog` round-trips losslessly, and
    // both computation routes agree (sequential, sharded-parallel,
    // converted-from-dense).
    #[test]
    fn catalog_representations_round_trip(g in arb_graph(), k in 1usize..5) {
        let dense = SelectivityCatalog::compute(&g, k);
        let sparse = SparseCatalog::compute(&g, k).unwrap();
        prop_assert_eq!(&sparse, &SparseCatalog::from_dense(&dense));
        let round_tripped = sparse.to_dense().unwrap();
        prop_assert_eq!(round_tripped.counts(), dense.counts());
        for threads in [2, 5] {
            let parallel = SparseCatalog::compute_parallel(&g, k, threads).unwrap();
            prop_assert_eq!(&sparse, &parallel, "threads = {}", threads);
        }
        // Aggregates agree with the dense oracle.
        prop_assert_eq!(sparse.total_mass(), dense.total_mass());
        prop_assert_eq!(sparse.zero_count(), dense.zero_count());
        prop_assert_eq!(sparse.len(), dense.len());
    }

}

/// Builds a valid delta from generated raw material: every edge whose
/// index hashes to 0 mod 3 is removed, and the candidate insertions are
/// filtered down to edges absent from `graph − removals` (duplicates
/// dropped), so the delta always satisfies its strict contract.
fn churn_delta(graph: &Graph, removal_salt: u64, candidates: &[(u32, u16, u32)]) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let mut removed = std::collections::HashSet::new();
    for (i, (s, l, t)) in graph.iter_edges().enumerate() {
        if ((i as u64).wrapping_mul(0x9e3779b97f4a7c15) ^ removal_salt).is_multiple_of(3) {
            delta.remove(s, l, t);
            removed.insert((s.0, l.0, t.0));
        }
    }
    let labels = graph.label_count() as u16;
    let mut added = std::collections::HashSet::new();
    for &(s, l, t) in candidates {
        let l = l % labels;
        let present = (s as usize) < graph.vertex_count()
            && graph.has_edge(VertexId(s), LabelId(l), VertexId(t))
            && !removed.contains(&(s, l, t));
        if present || !added.insert((s, l, t)) {
            continue;
        }
        delta.insert(VertexId(s), LabelId(l), VertexId(t));
    }
    delta
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // Incremental maintenance ≡ full rebuild: random edge churn applied
    // via `apply_delta` yields bit-identical catalogs and estimates to a
    // from-scratch sparse build of the changed graph, across every
    // ordering × histogram kind.
    #[test]
    fn apply_delta_equals_full_rebuild(
        g in arb_graph(),
        removal_salt in 0u64..u64::MAX,
        // Insertions may mention vertices beyond the current 20, growing
        // the vertex set.
        candidates in prop::collection::vec((0u32..24, 0u16..5, 0u32..24), 0..40),
        k in 1usize..4,
        beta in 1usize..24,
    ) {
        let delta = churn_delta(&g, removal_salt, &candidates);
        for ordering in OrderingKind::ALL.into_iter().chain([OrderingKind::Ideal]) {
            for histogram in HistogramKind::ALL {
                let config = EstimatorConfig {
                    k,
                    beta,
                    ordering,
                    histogram,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: true,
                };
                let base = PathSelectivityEstimator::build(&g, config).unwrap();
                let (refreshed, g2) = base.apply_delta(&g, &delta).unwrap();
                let fresh = PathSelectivityEstimator::build(&g2, config).unwrap();

                // Lineage: inherited id, bumped delta count.
                prop_assert_eq!(refreshed.build_id(), base.build_id());
                prop_assert_eq!(refreshed.applied_deltas(), 1);

                // The merged catalog is the recounted catalog, exactly.
                prop_assert_eq!(
                    refreshed.sparse_catalog().unwrap(),
                    fresh.sparse_catalog().unwrap()
                );

                // And every estimate in the domain agrees bit-for-bit.
                for (path, _) in SelectivityCatalog::compute(&g2, k).iter() {
                    let a = refreshed.estimate(&path);
                    let b = fresh.estimate(&path);
                    prop_assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "{}/{}: delta {} != fresh {} for {:?}",
                        ordering.name(),
                        histogram.name(),
                        a,
                        b,
                        path
                    );
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The ordered-index remap is the composition the trait documents:
    // `ordered_index(c) == index_of(canonical_path(c))` for every
    // ordering, including the combinatorial overrides.
    #[test]
    fn ordered_index_matches_index_of(g in arb_graph(), k in 1usize..4) {
        let catalog = SelectivityCatalog::compute(&g, k);
        let domain = phe::core::PathDomain::new(g.label_count(), k);
        for kind in OrderingKind::ALL.into_iter().chain([OrderingKind::Ideal]) {
            let ordering = kind.build(&g, &catalog, k);
            for c in 0..domain.size() {
                let via_path = ordering.index_of(&domain.canonical_path(c));
                prop_assert_eq!(
                    ordering.ordered_index(c),
                    via_path,
                    "{} at canonical {}",
                    kind.name(),
                    c
                );
            }
        }
    }
}
