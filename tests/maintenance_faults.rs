//! Fault-injection suite for the maintenance loop (`phe-service`'s
//! [`MaintenanceCoordinator`]): every scenario scripts an exact failure
//! interleaving through the coordinator's [`FailurePlan`] and asserts the
//! two invariants the design claims:
//!
//! * **lineage consistency** — whatever fails, the slot converges to a
//!   published state identical to a from-scratch build of the final
//!   graph (the compacted merge is bit-identical to a recount);
//! * **exactly-once batches** — the queue never loses a batch (failures
//!   retain it for retry) and never double-applies one (batches pop only
//!   after their statistics won the compare-and-swap; a superseded pass
//!   purges them instead of replaying them against a foreign lineage).

use std::collections::HashSet;
use std::sync::Arc;

use phe::core::{DriftThreshold, EstimatorConfig, PathSelectivityEstimator, RebuildPolicy};
use phe::datasets::{erdos_renyi, LabelDistribution};
use phe::graph::{Graph, GraphDelta, LabelId, VertexId};
use phe::service::registry::MaintenanceState;
use phe::service::{
    EnqueueError, EstimatorRegistry, FailAction, FailPoint, Gate, MaintenanceConfig,
    MaintenanceCoordinator, RunOutcome, ServableEstimator, ServiceMetrics,
};

const K: usize = 3;
const BETA: usize = 8;
const LABELS: u16 = 4;

fn config() -> EstimatorConfig {
    EstimatorConfig {
        k: K,
        beta: BETA,
        threads: 1,
        retain_sparse: true,
        ..EstimatorConfig::default()
    }
}

fn base_graph(seed: u64) -> Graph {
    erdos_renyi(
        80,
        640,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        seed,
    )
}

/// The servable snapshot derivation the coordinator itself uses.
fn servable_of(est: &PathSelectivityEstimator) -> ServableEstimator {
    let snapshot = est.snapshot().expect("snapshot");
    ServableEstimator::from_snapshot(&snapshot).expect("servable from snapshot")
}

/// A registry + coordinator serving one maintained slot built over
/// `graph`, exactly as a `rebuild --maintain` would leave it.
fn maintained_slot(
    name: &str,
    graph: &Graph,
    policy: RebuildPolicy,
) -> (
    Arc<EstimatorRegistry>,
    Arc<ServiceMetrics>,
    Arc<MaintenanceCoordinator>,
) {
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 1024));
    let estimator = PathSelectivityEstimator::build(graph, config()).expect("base build");
    let version = registry.register_if_version_maintained(
        name,
        servable_of(&estimator),
        0,
        Some(MaintenanceState {
            graph: graph.clone(),
            estimator,
        }),
    );
    assert_eq!(version, Some(1));
    let coordinator = MaintenanceCoordinator::new(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        MaintenanceConfig {
            publish_interval: std::time::Duration::from_secs(3600), // ticked by hand
            policy,
            ..MaintenanceConfig::default()
        },
    );
    (registry, metrics, coordinator)
}

/// A small valid churn batch against `graph`: `removals` existing edges
/// dropped, `insertions` fresh recombinations of the same label's
/// endpoints added. Deterministic in `seed`.
fn churn(graph: &Graph, seed: u64, removals: usize, insertions: usize) -> GraphDelta {
    let mut x = seed | 1;
    let mut step = |m: usize| {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        (x % m as u64) as usize
    };
    let mut edges: Vec<(u32, u16, u32)> = Vec::new();
    for label in 0..graph.label_count() as u16 {
        for (s, t) in graph.forward_csr(LabelId(label)).iter_edges() {
            edges.push((s.0, label, t.0));
        }
    }
    let mut delta = GraphDelta::new();
    let mut removed = HashSet::new();
    let mut attempts = 0;
    while removed.len() < removals && attempts < removals * 200 {
        attempts += 1;
        let (s, l, t) = edges[step(edges.len())];
        if removed.insert((s, l, t)) {
            delta.remove(VertexId(s), LabelId(l), VertexId(t));
        }
    }
    let mut added = HashSet::new();
    let mut attempts = 0;
    while added.len() < insertions && attempts < insertions * 200 {
        attempts += 1;
        let (s, l, _) = edges[step(edges.len())];
        let (_, l2, t) = edges[step(edges.len())];
        if l != l2
            || graph.has_edge(VertexId(s), LabelId(l), VertexId(t))
            || removed.contains(&(s, l, t))
        {
            continue;
        }
        if added.insert((s, l, t)) {
            delta.insert(VertexId(s), LabelId(l), VertexId(t));
        }
    }
    assert!(!delta.is_empty(), "churn produced an empty batch");
    delta
}

/// `n` batches, each valid against the graph left by its predecessors
/// (exactly how protocol `delta` ops arrive), plus the final graph.
fn sequential_batches(graph: &Graph, n: usize, seed: u64) -> (Vec<GraphDelta>, Graph) {
    let mut batches = Vec::new();
    let mut current = graph.clone();
    for i in 0..n {
        let delta = churn(&current, seed + i as u64 * 7919, 6, 6);
        current = current
            .apply_delta(&delta)
            .expect("sequential churn applies");
        batches.push(delta);
    }
    (batches, current)
}

/// Asserts the slot's maintained catalog is bit-identical to a fresh
/// single-threaded recount of `final_graph` — the lineage-consistency
/// oracle every scenario converges to.
fn assert_converged(registry: &EstimatorRegistry, name: &str, final_graph: &Graph) {
    let state = registry.maintenance(name).expect("slot stays maintained");
    let reference = PathSelectivityEstimator::build(final_graph, config()).expect("recount");
    assert_eq!(
        state
            .estimator
            .sparse_catalog()
            .expect("maintained catalog"),
        reference.sparse_catalog().expect("reference catalog"),
        "maintained catalog diverged from a recount of the final graph"
    );
}

fn prometheus_value(metrics: &ServiceMetrics, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let samples =
        phe::obs::parse_exposition(&metrics.render_prometheus()).expect("exposition parses");
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .map(|s| s.value)
}

#[test]
fn counting_failure_mid_compaction_retains_queue_and_converges() {
    let graph = base_graph(11);
    let policy = RebuildPolicy {
        max_applied_deltas: 0,
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, _metrics, coordinator) = maintained_slot("main", &graph, policy);
    let (batches, final_graph) = sequential_batches(&graph, 3, 101);
    for batch in &batches {
        coordinator.enqueue("main", batch.clone()).expect("enqueue");
    }

    // The compacted counting pass dies (an OOM-shaped failure).
    coordinator.failure_plan().inject(
        FailPoint::BeforeCount,
        FailAction::Fail("counting oom".into()),
    );
    let outcome = coordinator.run_slot("main");
    let RunOutcome::Failed { message, retained } = outcome else {
        panic!("expected Failed, got {outcome:?}");
    };
    assert!(message.contains("counting oom"), "{message}");
    assert_eq!(retained, 3, "failed pass must retain every batch");
    assert_eq!(coordinator.status("main").queued, 3);
    assert_eq!(
        registry.get("main").unwrap().version(),
        1,
        "nothing may publish on a failed pass"
    );

    // Next tick: the same batches, one compacted pass, converged.
    let outcome = coordinator.run_slot("main");
    assert_eq!(
        outcome,
        RunOutcome::Published {
            version: 2,
            batches: 3,
            rebuilt: None,
        },
        "retry must fold exactly the retained batches"
    );
    let status = coordinator.status("main");
    assert_eq!((status.queued, status.compacted, status.purged), (0, 3, 0));
    assert_eq!(coordinator.failure_plan().hits(FailPoint::BeforeCount), 2);
    assert_converged(&registry, "main", &final_graph);
}

#[test]
fn worker_crash_before_cas_is_recovered_and_retried() {
    let graph = base_graph(13);
    let policy = RebuildPolicy {
        max_applied_deltas: 0,
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, _metrics, coordinator) = maintained_slot("main", &graph, policy);
    let (batches, final_graph) = sequential_batches(&graph, 3, 211);
    for batch in &batches {
        coordinator.enqueue("main", batch.clone()).expect("enqueue");
    }

    // The worker thread crashes after counting, before anything
    // publishes — all work lost, queue intact.
    coordinator.failure_plan().inject(
        FailPoint::BeforePublish,
        FailAction::Panic("worker crash".into()),
    );
    let outcome = coordinator.run_slot("main");
    let RunOutcome::Failed { message, retained } = outcome else {
        panic!("expected recovered panic, got {outcome:?}");
    };
    assert!(message.contains("worker crash"), "{message}");
    assert_eq!(retained, 3);
    assert_eq!(registry.get("main").unwrap().version(), 1);
    assert_eq!(
        registry
            .maintenance("main")
            .unwrap()
            .estimator
            .applied_deltas(),
        0,
        "a crashed pass must not advance the lineage"
    );

    // The crash released the single-flight mark: the next pass runs (not
    // Busy) and converges on the same batches.
    let outcome = coordinator.run_slot("main");
    assert_eq!(
        outcome,
        RunOutcome::Published {
            version: 2,
            batches: 3,
            rebuilt: None,
        }
    );
    let status = coordinator.status("main");
    assert_eq!((status.queued, status.compacted, status.purged), (0, 3, 0));
    assert_converged(&registry, "main", &final_graph);
}

#[test]
fn publish_superseded_by_concurrent_load_purges_queue() {
    let graph = base_graph(17);
    let policy = RebuildPolicy {
        max_applied_deltas: 0,
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, _metrics, coordinator) = maintained_slot("main", &graph, policy);
    let (batches, _) = sequential_batches(&graph, 3, 307);
    for batch in &batches {
        coordinator.enqueue("main", batch.clone()).expect("enqueue");
    }

    // Park the worker in the race window between deriving its snapshot
    // and the compare-and-swap, land a `load` over it, then release.
    let gate = Gate::new();
    coordinator
        .failure_plan()
        .inject(FailPoint::BeforeCas, FailAction::Hold(Arc::clone(&gate)));
    let worker = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || coordinator.run_slot("main"))
    };
    gate.wait_arrived();
    let loaded = base_graph(99);
    let fresh = PathSelectivityEstimator::build(&loaded, config()).expect("loaded snapshot build");
    assert_eq!(registry.register("main", servable_of(&fresh)), 2);
    gate.release();

    let outcome = worker.join().expect("worker joins");
    assert_eq!(
        outcome,
        RunOutcome::Superseded { purged: 3 },
        "the stale compacted publish must lose the CAS and purge its queue"
    );
    // The load's statistics — not the worker's — are what serves, and the
    // queue cannot replay batches against the foreign lineage.
    assert_eq!(registry.get("main").unwrap().version(), 2);
    assert!(registry.maintenance("main").is_none());
    let status = coordinator.status("main");
    assert_eq!((status.queued, status.compacted, status.purged), (0, 0, 3));
    assert!(
        coordinator.enqueue("main", batches[0].clone()).is_err(),
        "a slot whose lineage a load killed must refuse new batches"
    );
}

#[test]
fn drift_crossing_triggers_exactly_one_rebuild_and_resets_gauges() {
    let graph = base_graph(19);
    // A threshold any nonzero drift crosses, with the lineage arm off:
    // the rebuild below is attributable to drift alone.
    let policy = RebuildPolicy {
        max_applied_deltas: 0,
        drift_scale: 1.0,
        drift_override: Some(DriftThreshold {
            mean_abs_error_rate: 1e-9,
            max_q_error: 1.0 + 1e-9,
        }),
    };
    let (registry, metrics, coordinator) = maintained_slot("main", &graph, policy);
    let (batches, final_graph) = sequential_batches(&graph, 2, 401);
    for batch in &batches {
        coordinator.enqueue("main", batch.clone()).expect("enqueue");
    }

    let outcome = coordinator.run_slot("main");
    assert_eq!(
        outcome,
        RunOutcome::Published {
            version: 3, // v2 = compacted publish, v3 = the drift rebuild
            batches: 2,
            rebuilt: Some("drift".into()),
        },
        "the crossing must trigger a rebuild in the same pass"
    );
    assert_eq!(
        prometheus_value(
            &metrics,
            "phe_maintenance_rebuilds_total",
            &[("trigger", "drift")]
        ),
        Some(1.0)
    );
    // The rebuild reset the lineage and unpublished the drift gauges the
    // dead lineage sampled.
    let state = registry.maintenance("main").expect("still maintained");
    assert_eq!(state.estimator.applied_deltas(), 0);
    assert!(state.estimator.drift().is_none());
    assert_eq!(
        prometheus_value(&metrics, "phe_drift_mean_abs_error", &[("slot", "main")]),
        None,
        "drift gauges must not outlive the lineage they measured"
    );
    assert!(coordinator
        .status("main")
        .last_trigger
        .as_deref()
        .unwrap()
        .starts_with("drift"));

    // Exactly one: the post-rebuild lineage has no drift sample, so the
    // next pass is a no-op.
    assert_eq!(coordinator.run_slot("main"), RunOutcome::Idle);
    assert_eq!(
        prometheus_value(
            &metrics,
            "phe_maintenance_rebuilds_total",
            &[("trigger", "drift")]
        ),
        Some(1.0)
    );
    assert_converged(&registry, "main", &final_graph);
}

#[test]
fn applied_deltas_threshold_triggers_full_rebuild() {
    let graph = base_graph(23);
    let policy = RebuildPolicy {
        max_applied_deltas: 2,
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, metrics, coordinator) = maintained_slot("main", &graph, policy);
    let (batches, final_graph) = sequential_batches(&graph, 2, 503);

    // First batch: ordinary compacted publish, lineage below threshold.
    coordinator
        .enqueue("main", batches[0].clone())
        .expect("enqueue");
    assert_eq!(
        coordinator.run_slot("main"),
        RunOutcome::Published {
            version: 2,
            batches: 1,
            rebuilt: None,
        }
    );
    assert_eq!(
        registry
            .maintenance("main")
            .unwrap()
            .estimator
            .applied_deltas(),
        1
    );

    // Second batch crosses max_applied_deltas: compacted publish, then a
    // full maintaining rebuild folds the lineage back to zero.
    coordinator
        .enqueue("main", batches[1].clone())
        .expect("enqueue");
    assert_eq!(
        coordinator.run_slot("main"),
        RunOutcome::Published {
            version: 4, // v3 = compacted publish, v4 = the rebuild
            batches: 1,
            rebuilt: Some("applied-deltas".into()),
        }
    );
    assert_eq!(
        registry
            .maintenance("main")
            .unwrap()
            .estimator
            .applied_deltas(),
        0
    );
    assert_eq!(
        prometheus_value(
            &metrics,
            "phe_maintenance_rebuilds_total",
            &[("trigger", "applied-deltas")],
        ),
        Some(1.0)
    );
    assert!(coordinator
        .status("main")
        .last_trigger
        .as_deref()
        .unwrap()
        .starts_with("applied-deltas"));
    assert_converged(&registry, "main", &final_graph);
}

#[test]
fn cancelling_batches_compact_to_a_no_op_without_publishing() {
    let graph = base_graph(29);
    let policy = RebuildPolicy {
        max_applied_deltas: 0,
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, _metrics, coordinator) = maintained_slot("main", &graph, policy);

    // A batch and its exact inverse: valid sequentially, net nothing.
    let delta = churn(&graph, 601, 5, 5);
    let mut inverse = GraphDelta::new();
    for &(s, l, t) in delta.insertions() {
        inverse.remove(s, l, t);
    }
    for &(s, l, t) in delta.removals() {
        inverse.insert(s, l, t);
    }
    coordinator.enqueue("main", delta).expect("enqueue");
    coordinator
        .enqueue("main", inverse)
        .expect("enqueue inverse");

    // Composition cancels to empty: the batches are consumed without a
    // counting pass or a publish (no version bump, no new lineage).
    assert_eq!(coordinator.run_slot("main"), RunOutcome::Idle);
    assert_eq!(registry.get("main").unwrap().version(), 1);
    let status = coordinator.status("main");
    assert_eq!((status.queued, status.compacted, status.purged), (0, 2, 0));
    assert_converged(&registry, "main", &graph);
}

#[test]
fn failure_before_rebuild_retains_queue_and_next_tick_completes_it() {
    let graph = base_graph(31);
    let policy = RebuildPolicy {
        max_applied_deltas: 1, // every compacted publish demands a rebuild
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, _metrics, coordinator) = maintained_slot("main", &graph, policy);
    let (batches, final_graph) = sequential_batches(&graph, 1, 701);
    coordinator
        .enqueue("main", batches[0].clone())
        .expect("enqueue");

    // The compacted publish lands (v2), then the policy rebuild dies.
    coordinator.failure_plan().inject(
        FailPoint::BeforeRebuild,
        FailAction::Fail("rebuild oom".into()),
    );
    let outcome = coordinator.run_slot("main");
    let RunOutcome::Failed { message, retained } = outcome else {
        panic!("expected rebuild failure, got {outcome:?}");
    };
    assert!(message.contains("rebuild oom"), "{message}");
    assert_eq!(retained, 0, "the compacted batch already published");
    assert_eq!(registry.get("main").unwrap().version(), 2);
    assert_converged(&registry, "main", &final_graph);

    // The trigger condition still holds; the next tick completes the
    // rebuild it owes.
    assert_eq!(
        coordinator.run_slot("main"),
        RunOutcome::Published {
            version: 3,
            batches: 0,
            rebuilt: Some("applied-deltas".into()),
        }
    );
    assert_eq!(
        registry
            .maintenance("main")
            .unwrap()
            .estimator
            .applied_deltas(),
        0
    );
    assert_converged(&registry, "main", &final_graph);
}

/// Satellite: the delta queue is bounded. Past `max_queue_depth` the
/// coordinator refuses with a structured [`EnqueueError::QueueFull`]
/// (counted as `phe_maintenance_batches_total{event="rejected"}`), the
/// refusal holds even while a publish pass is parked mid-flight over the
/// full queue, and the cap reopens once the pass drains it — with the
/// retried batch converging the lineage as if nothing was ever refused.
#[test]
fn enqueue_past_cap_is_structured_backpressure_and_recovers() {
    let graph = base_graph(23);
    let policy = RebuildPolicy {
        max_applied_deltas: 0,
        drift_scale: 0.0,
        drift_override: None,
    };
    let (registry, metrics, _wide) = maintained_slot("main", &graph, policy);
    // A second coordinator over the same slot, with a 2-batch cap.
    let coordinator = MaintenanceCoordinator::new(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        MaintenanceConfig {
            publish_interval: std::time::Duration::from_secs(3600),
            policy,
            max_queue_depth: 2,
        },
    );
    let (batches, final_graph) = sequential_batches(&graph, 3, 501);

    assert_eq!(coordinator.enqueue("main", batches[0].clone()), Ok(1));
    assert_eq!(coordinator.enqueue("main", batches[1].clone()), Ok(2));
    let refused = coordinator
        .enqueue("main", batches[2].clone())
        .expect_err("third batch must hit the cap");
    assert_eq!(refused, EnqueueError::QueueFull { cap: 2 });
    assert!(refused.to_string().contains("cap of 2"), "{refused}");
    assert_eq!(
        prometheus_value(
            &metrics,
            "phe_maintenance_batches_total",
            &[("event", "rejected")],
        ),
        Some(1.0)
    );
    let status = coordinator.status("main");
    assert_eq!((status.queued, status.rejected), (2, 1));

    // Park a publish pass mid-flight: the queued batches are still
    // owned by the pass (peeked, not popped), so the cap still refuses.
    let gate = Gate::new();
    coordinator
        .failure_plan()
        .inject(FailPoint::BeforeCas, FailAction::Hold(Arc::clone(&gate)));
    let worker = {
        let coordinator = Arc::clone(&coordinator);
        std::thread::spawn(move || coordinator.run_slot("main"))
    };
    gate.wait_arrived();
    assert_eq!(
        coordinator.enqueue("main", batches[2].clone()),
        Err(EnqueueError::QueueFull { cap: 2 })
    );
    gate.release();
    assert_eq!(
        worker.join().expect("publish pass"),
        RunOutcome::Published {
            version: 2,
            batches: 2,
            rebuilt: None,
        }
    );

    // The publish drained the queue; the refused batch retries cleanly
    // and the lineage converges as if the cap never fired.
    assert_eq!(coordinator.enqueue("main", batches[2].clone()), Ok(1));
    assert_eq!(
        coordinator.run_slot("main"),
        RunOutcome::Published {
            version: 3,
            batches: 1,
            rebuilt: None,
        }
    );
    assert_converged(&registry, "main", &final_graph);
    assert_eq!(
        prometheus_value(
            &metrics,
            "phe_maintenance_batches_total",
            &[("event", "rejected")],
        ),
        Some(2.0)
    );
}
