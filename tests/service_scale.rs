//! Connection-scale stress and admission-control suite for the
//! readiness-driven event-loop server. The contracts under test:
//!
//! * **scale** — 512+ concurrent connections (mostly idle, some active)
//!   served with zero dropped responses for admitted requests, even
//!   while a snapshot hot-swap lands mid-flight; every batch stays
//!   single-generation-consistent;
//! * **capacity** — a connect past `max_connections` receives one
//!   structured `overloaded` line (`reason = "capacity"`), then EOF;
//! * **quota** — concurrent requests past the per-client in-flight
//!   quota are refused with `reason = "quota"`, never silently dropped;
//! * **shedding** — under dispatch-queue pressure expensive ops are
//!   refused with `reason = "shed"` while cheap observability ops
//!   (`ping`) keep answering.
//!
//! All refusal paths are also asserted through the Prometheus
//! exposition (`phe_connections_open`, `phe_admission_total{outcome}`).

#![cfg(unix)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::{erdos_renyi, LabelDistribution};
use phe::graph::{GraphDelta, LabelId};
use phe::service::protocol::{MaintenanceAction, PathStep, Request};
use phe::service::registry::MaintenanceState;
use phe::service::{
    ClientError, EstimatorRegistry, FailAction, FailPoint, Gate, MaintenanceConfig,
    MaintenanceCoordinator, ServableEstimator, Server, ServerConfig, ServiceClient, ServiceMetrics,
};

const LABELS: u16 = 4;
const K: usize = 3;

fn build_servable(beta: usize, ordering: OrderingKind) -> ServableEstimator {
    let g = erdos_renyi(
        60,
        480,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        23,
    );
    ServableEstimator::from_estimator(
        PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: K,
                beta,
                ordering,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap(),
    )
}

fn batch_paths() -> Vec<Vec<LabelId>> {
    let mut paths = Vec::new();
    for l1 in 0..LABELS {
        paths.push(vec![LabelId(l1)]);
        for l2 in 0..LABELS {
            paths.push(vec![LabelId(l1), LabelId(l2)]);
        }
    }
    paths
}

fn expected_estimates(est: &ServableEstimator) -> Vec<f64> {
    batch_paths()
        .iter()
        .map(|p| est.estimate_labels(p).unwrap())
        .collect()
}

fn wire_paths() -> Vec<Vec<PathStep>> {
    batch_paths()
        .iter()
        .map(|p| p.iter().map(|l| PathStep::Id(l.0)).collect())
        .collect()
}

/// A batch big enough to route to the dispatch workers (the inline
/// threshold is 4096 paths).
fn heavy_paths(n: usize) -> Vec<Vec<PathStep>> {
    (0..n)
        .map(|i| vec![PathStep::Id((i % LABELS as usize) as u16), PathStep::Id(0)])
        .collect()
}

fn exposition_value(metrics: &ServiceMetrics, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
    let samples =
        phe::obs::parse_exposition(&metrics.render_prometheus()).expect("exposition parses");
    samples
        .iter()
        .find(|s| {
            s.name == name
                && labels
                    .iter()
                    .all(|(k, v)| s.labels.iter().any(|(lk, lv)| lk == k && lv == v))
        })
        .map(|s| s.value)
}

/// 512 idle connections held open while 64 active clients hammer
/// batched estimates across a mid-flight hot swap: nothing admitted may
/// drop or error, every batch stays single-generation-consistent, and
/// the open-connection gauge reflects the full set.
#[test]
fn five_hundred_twelve_connections_with_mid_flight_hot_swap() {
    const IDLE: usize = 512;
    const ACTIVE: usize = 64;
    const REQUESTS_PER_CLIENT: usize = 20;

    let v1 = build_servable(4, OrderingKind::SumBased);
    let v2 = build_servable(48, OrderingKind::NumCard);
    let expected_v1 = expected_estimates(&v1);
    let expected_v2 = expected_estimates(&v2);
    assert_ne!(expected_v1, expected_v2);

    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 4096));
    registry.register("main", v1);
    let server = Server::start(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            allow_load: false,
            shards: 2,
            max_connections: 2048,
            // Every client here shares 127.0.0.1, so the per-peer quota
            // must not see the whole test as one throttled client.
            max_inflight_per_client: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Hold the idle majority open for the whole run.
    let idles: Vec<std::net::TcpStream> = (0..IDLE)
        .map(|i| std::net::TcpStream::connect(addr).unwrap_or_else(|e| panic!("idle {i}: {e}")))
        .collect();
    // The acceptor counts a connection when it accepts it; give it until
    // a deadline to drain the backlog, then the gauge must cover at
    // least the idle set.
    let deadline = Instant::now() + Duration::from_secs(10);
    while metrics.open_connections() < IDLE as u64 {
        assert!(
            Instant::now() < deadline,
            "acceptor stalled at {} of {IDLE} connections",
            metrics.open_connections()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        exposition_value(&metrics, "phe_connections_open", &[]).unwrap_or(0.0) >= IDLE as f64,
        "phe_connections_open must cover the idle set"
    );

    let paths = wire_paths();
    let v1_batches = Arc::new(AtomicU64::new(0));
    let v2_batches = Arc::new(AtomicU64::new(0));
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for client_id in 0..ACTIVE {
            let paths = paths.clone();
            let expected_v1 = expected_v1.clone();
            let expected_v2 = expected_v2.clone();
            let v1_batches = Arc::clone(&v1_batches);
            let v2_batches = Arc::clone(&v2_batches);
            handles.push(scope.spawn(move || {
                let mut client = ServiceClient::connect(addr).expect("active client connects");
                let mut last_version = 0u64;
                for request in 0..REQUESTS_PER_CLIENT {
                    let batch = client.estimate("main", paths.clone()).unwrap_or_else(|e| {
                        panic!("client {client_id} request {request} failed: {e}")
                    });
                    assert!(batch.version >= last_version);
                    last_version = batch.version;
                    let expected = match batch.version {
                        1 => &expected_v1,
                        2 => &expected_v2,
                        v => panic!("unexpected version {v}"),
                    };
                    assert_eq!(
                        &batch.estimates, expected,
                        "client {client_id} request {request}: batch mixes generations"
                    );
                    match batch.version {
                        1 => v1_batches.fetch_add(1, Ordering::Relaxed),
                        _ => v2_batches.fetch_add(1, Ordering::Relaxed),
                    };
                }
            }));
        }

        // Hot-swap mid-flight, once the clients are demonstrably going.
        let deadline = Instant::now() + Duration::from_secs(30);
        while v1_batches.load(Ordering::Relaxed) < ACTIVE as u64 {
            assert!(
                Instant::now() < deadline,
                "clients made no progress — check for client-thread panics"
            );
            std::thread::yield_now();
        }
        assert_eq!(registry.register("main", v2), 2);

        for handle in handles {
            handle.join().expect("client thread panicked");
        }
    });

    assert!(v1_batches.load(Ordering::Relaxed) > 0, "v1 never served");
    assert!(
        v2_batches.load(Ordering::Relaxed) > 0,
        "swap landed after all traffic — not mid-flight"
    );

    let report = metrics.report();
    assert_eq!(report.errors, 0, "no admitted request may fail");
    assert_eq!(report.requests, (ACTIVE * REQUESTS_PER_CLIENT) as u64);
    assert_eq!(
        exposition_value(&metrics, "phe_admission_total", &[("outcome", "admitted")]),
        Some((ACTIVE * REQUESTS_PER_CLIENT) as f64)
    );
    assert_eq!(
        exposition_value(&metrics, "phe_admission_total", &[("outcome", "refused")]),
        Some(0.0)
    );

    drop(idles);
    server.shutdown();
}

/// A connect past `max_connections` is told why — one structured
/// `overloaded` line with `reason = "capacity"` — and then hung up on.
#[test]
fn connect_past_capacity_gets_structured_refusal_then_eof() {
    use std::io::{BufRead, BufReader, Read};

    const CAP: usize = 8;
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 1024));
    registry.register("main", build_servable(8, OrderingKind::SumBased));
    let server = Server::start(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            allow_load: false,
            max_connections: CAP,
            max_inflight_per_client: 4096,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    // Fill the cap; a ping roundtrip proves each was accepted (the
    // capacity gauge counts at accept, not at connect).
    let mut residents: Vec<ServiceClient> = (0..CAP)
        .map(|i| ServiceClient::connect(addr).unwrap_or_else(|e| panic!("resident {i}: {e}")))
        .collect();
    for client in &mut residents {
        client.ping().expect("resident ping");
    }

    let over = std::net::TcpStream::connect(addr).expect("over-cap connect");
    over.set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    let mut reader = BufReader::new(over);
    let mut line = String::new();
    reader.read_line(&mut line).expect("refusal line");
    let value: serde_json::Value = serde_json::from_str(line.trim()).expect("refusal parses");
    assert_eq!(value.get("ok"), Some(&serde_json::Value::Bool(false)));
    assert_eq!(
        value.get("overloaded"),
        Some(&serde_json::Value::Bool(true))
    );
    assert_eq!(
        value.get("reason").and_then(serde_json::Value::as_str),
        Some("capacity")
    );
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("EOF after refusal");
    assert_eq!(n, 0, "refused connection must close after its one line");

    assert_eq!(
        exposition_value(&metrics, "phe_admission_total", &[("outcome", "refused")]),
        Some(1.0)
    );
    // The residents were never disturbed.
    for client in &mut residents {
        client.ping().expect("resident ping after refusal");
    }
    drop(residents);
    server.shutdown();
}

/// A registry + coordinator serving one maintained slot ("main") with a
/// single queued churn batch, so a forced `maintenance compact` has a
/// counting pass that a fail-point gate can park inside the dispatch
/// worker — the deterministic way to keep the worker (and its quota
/// ticket / dispatch-queue slot) provably occupied with no timing
/// window.
fn maintained_slot() -> (
    Arc<ServiceMetrics>,
    Arc<EstimatorRegistry>,
    Arc<MaintenanceCoordinator>,
) {
    let graph = erdos_renyi(
        60,
        480,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        23,
    );
    let estimator = PathSelectivityEstimator::build(
        &graph,
        EstimatorConfig {
            k: K,
            beta: 8,
            threads: 1,
            retain_sparse: true,
            ..EstimatorConfig::default()
        },
    )
    .expect("base build");
    let servable = ServableEstimator::from_snapshot(&estimator.snapshot().expect("snapshot"))
        .expect("servable from snapshot");
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 4096));
    let version = registry.register_if_version_maintained(
        "main",
        servable,
        0,
        Some(MaintenanceState {
            graph: graph.clone(),
            estimator,
        }),
    );
    assert_eq!(version, Some(1));
    let coordinator = MaintenanceCoordinator::new(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        MaintenanceConfig {
            publish_interval: Duration::from_secs(3600), // compacted by hand
            ..MaintenanceConfig::default()
        },
    );
    // One queued batch so the compaction has a counting pass to park in.
    let mut delta = GraphDelta::new();
    let (s, t) = graph
        .forward_csr(LabelId(0))
        .iter_edges()
        .next()
        .expect("graph has label-0 edges");
    delta.remove(s, LabelId(0), t);
    coordinator.enqueue("main", delta).expect("enqueue");
    (metrics, registry, coordinator)
}

/// The request that parks on the gate: a forced compaction of the
/// maintained slot, dispatched to a worker like any heavy op.
fn compact_request() -> Request {
    Request::Maintenance {
        name: "main".to_owned(),
        action: MaintenanceAction::Compact,
    }
}

/// Requests past the per-client in-flight quota are refused with
/// `reason = "quota"` — deterministically, with no timing window: the
/// single dispatch worker is parked mid-compaction on a fail-point gate
/// (holding one quota ticket), a queued heavy estimate holds the
/// second, so a third request from the same peer *must* be refused.
/// Once the gate releases, both occupiers complete and the quota
/// recovers.
#[test]
fn per_client_quota_refuses_excess_inflight_requests() {
    const QUOTA: usize = 2;
    const PATHS: usize = 8000; // > inline threshold ⇒ dispatch workers

    let (metrics, registry, coordinator) = maintained_slot();
    let gate = Gate::new();
    coordinator
        .failure_plan()
        .inject(FailPoint::BeforeCount, FailAction::Hold(Arc::clone(&gate)));

    let server = Server::start_with(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        Some(Arc::clone(&coordinator)),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            allow_load: true, // `maintenance compact` is a mutating op
            shards: 1,
            max_inflight_per_client: QUOTA,
            // Keep the shed trigger out of this test's way.
            shed_queue_depth: 64,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // Ticket 1: the compaction parks on the gate inside the worker.
        let compact = scope.spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("compact client connects");
            client
                .roundtrip(&compact_request())
                .expect("parked compaction completes after release");
        });
        gate.wait_arrived(); // the worker now provably holds ticket 1

        // Ticket 2: a heavy estimate queues behind the parked worker.
        let heavy = scope.spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("heavy client connects");
            let batch = client
                .estimate("main", heavy_paths(PATHS))
                .expect("queued estimate completes after release");
            assert_eq!(batch.estimates.len(), PATHS);
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.dispatch_depth() < 2 {
            assert!(Instant::now() < deadline, "heavy estimate never queued");
            std::thread::sleep(Duration::from_millis(1));
        }

        // Both tickets are pinned — the prober *must* be refused.
        let mut prober = ServiceClient::connect(addr).expect("prober connects");
        match prober.estimate("main", wire_paths()) {
            Err(ClientError::Overloaded(reason)) => assert_eq!(reason, "quota"),
            Err(other) => panic!("expected a quota refusal, got error {other}"),
            Ok(_) => panic!("expected a quota refusal, got a successful batch"),
        }
        assert_eq!(
            exposition_value(&metrics, "phe_admission_total", &[("outcome", "refused")]),
            Some(1.0)
        );

        gate.release();
        compact.join().expect("compact thread");
        heavy.join().expect("heavy thread");

        // Tickets released: the same prober is admitted again.
        let batch = prober
            .estimate("main", wire_paths())
            .expect("quota recovers after tickets release");
        assert_eq!(batch.estimates.len(), batch_paths().len());
    });
    server.shutdown();
}

/// Under dispatch-queue pressure expensive ops are shed with
/// `reason = "shed"` while `ping` — deliberately unsheddable — keeps
/// answering, so an overloaded server stays observable. Deterministic
/// like the quota test: the worker is parked on a fail-point gate
/// (depth 1), a queued heavy estimate raises the depth past the shed
/// threshold of 1, so the prober's heavy request *must* be shed — and a
/// concurrent `ping` must still answer.
#[test]
fn queue_pressure_sheds_heavy_ops_but_answers_ping() {
    const PATHS: usize = 8000; // > inline threshold ⇒ dispatch workers

    let (metrics, registry, coordinator) = maintained_slot();
    let gate = Gate::new();
    coordinator
        .failure_plan()
        .inject(FailPoint::BeforeCount, FailAction::Hold(Arc::clone(&gate)));

    let server = Server::start_with(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        Some(Arc::clone(&coordinator)),
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 1,
            allow_load: true, // `maintenance compact` is a mutating op
            shards: 1,
            // Keep the quota out of this test's way.
            max_inflight_per_client: 1024,
            // Shed as soon as more than one job waits behind the worker.
            shed_queue_depth: 1,
            ..ServerConfig::default()
        },
    )
    .expect("server starts");
    let addr = server.local_addr();

    std::thread::scope(|scope| {
        // Depth 1: the compaction parks on the gate inside the worker.
        let compact = scope.spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("compact client connects");
            client
                .roundtrip(&compact_request())
                .expect("parked compaction completes after release");
        });
        gate.wait_arrived();

        // Depth 2: a heavy estimate queues behind the parked worker —
        // its own shed check ran at depth 1, at the threshold but not
        // past it, so it was admitted.
        let heavy = scope.spawn(move || {
            let mut client = ServiceClient::connect(addr).expect("heavy client connects");
            let batch = client
                .estimate("main", heavy_paths(PATHS))
                .expect("queued estimate completes after release");
            assert_eq!(batch.estimates.len(), PATHS);
        });
        let deadline = Instant::now() + Duration::from_secs(10);
        while metrics.dispatch_depth() < 2 {
            assert!(Instant::now() < deadline, "heavy estimate never queued");
            std::thread::sleep(Duration::from_millis(1));
        }

        // Depth 2 > threshold 1 — the prober's heavy request *must* be
        // shed, while its pings keep answering through the overload.
        let mut prober = ServiceClient::connect(addr).expect("prober connects");
        prober.ping().expect("ping before the shed probe");
        match prober.estimate("main", heavy_paths(PATHS)) {
            Err(ClientError::Overloaded(reason)) => assert_eq!(reason, "shed"),
            Err(other) => panic!("expected a shed refusal, got error {other}"),
            Ok(_) => panic!("expected a shed refusal, got a successful batch"),
        }
        prober.ping().expect("ping while overloaded");
        assert_eq!(
            exposition_value(&metrics, "phe_admission_total", &[("outcome", "shed")]),
            Some(1.0)
        );

        gate.release();
        compact.join().expect("compact thread");
        heavy.join().expect("heavy thread");

        // Shedding never cost the queue its consistency: once the
        // pressure is gone, the same prober's heavy request completes.
        let batch = prober
            .estimate("main", heavy_paths(PATHS))
            .expect("post-pressure estimate");
        assert_eq!(batch.estimates.len(), PATHS);
    });
    server.shutdown();
}
