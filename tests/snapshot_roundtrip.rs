//! Estimator snapshots survive a full JSON round trip and restore to
//! bit-identical estimates — the "ship statistics to the optimizer"
//! workflow.

use phe::core::snapshot::EstimatorSnapshot;
use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::{dbpedia_like_scaled, moreno_health_like_scaled};
use phe::graph::LabelId;

fn build(
    graph: &phe::graph::Graph,
    ordering: OrderingKind,
    histogram: HistogramKind,
) -> PathSelectivityEstimator {
    PathSelectivityEstimator::build(
        graph,
        EstimatorConfig {
            k: 3,
            beta: 24,
            ordering,
            histogram,
            threads: 1,
            retain_catalog: true,
            retain_sparse: false,
        },
    )
    .unwrap()
}

#[test]
fn json_round_trip_preserves_every_estimate() {
    let graph = moreno_health_like_scaled(0.05, 21);
    for ordering in OrderingKind::ALL {
        for histogram in [HistogramKind::VOptimalGreedy, HistogramKind::EndBiased] {
            let est = build(&graph, ordering, histogram);
            let snapshot = est.snapshot().unwrap();
            let json = serde_json::to_string(&snapshot).unwrap();
            let back: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
            let restored = back.restore().unwrap();
            // Every path in the domain estimates identically.
            for (path, _) in est.catalog().expect("retained").iter() {
                let want = est.estimate(&path);
                let got = restored.estimate_labels(&path);
                assert_eq!(
                    want,
                    got,
                    "{}/{}: path {path:?}",
                    ordering.name(),
                    histogram.name()
                );
            }
        }
    }
}

#[test]
fn snapshot_is_much_smaller_than_the_catalog() {
    let graph = dbpedia_like_scaled(0.01, 3);
    let est = PathSelectivityEstimator::build(
        &graph,
        EstimatorConfig {
            k: 4,
            beta: 64,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: true,
            retain_sparse: false,
        },
    )
    .unwrap();
    let snapshot = est.snapshot().unwrap();
    let raw_table_bytes = est.domain_size() * 8;
    assert!(
        snapshot.retained_bytes() * 4 < raw_table_bytes,
        "snapshot {} bytes vs raw table {} bytes",
        snapshot.retained_bytes(),
        raw_table_bytes
    );
}

#[test]
fn restored_estimator_resolves_label_names() {
    let graph = moreno_health_like_scaled(0.05, 9);
    let est = build(
        &graph,
        OrderingKind::SumBased,
        HistogramKind::VOptimalGreedy,
    );
    let snapshot = est.snapshot().unwrap();
    // Label names are carried in the snapshot, so a restored estimator's
    // host can rebuild a name → id mapping without the original graph.
    assert_eq!(snapshot.label_names.len(), graph.label_count());
    for (i, name) in snapshot.label_names.iter().enumerate() {
        assert_eq!(graph.labels().get(name), Some(LabelId(i as u16)));
    }
}

#[test]
fn tampered_json_is_rejected_not_trusted() {
    let graph = moreno_health_like_scaled(0.05, 4);
    let est = build(
        &graph,
        OrderingKind::SumBasedL2,
        HistogramKind::VOptimalGreedy,
    );
    let snapshot = est.snapshot().unwrap();
    let mut json: serde_json::Value = serde_json::to_value(&snapshot).unwrap();
    // Drop a label frequency: lengths no longer match the names.
    json["label_frequencies"].as_array_mut().unwrap().pop();
    let back: EstimatorSnapshot = serde_json::from_value(json).unwrap();
    assert!(back.restore().is_err());
}
