//! The expression layer's contract, property-tested:
//!
//! 1. **Expansion ≡ brute force.** `PathExpr::expand` produces exactly
//!    the concrete label sequences a brute-force enumeration of the
//!    domain accepts via the independent `PathExpr::matches`
//!    implementation — with and without follow-matrix pruning.
//! 2. **Normalization** is idempotent, semantics-preserving, and gives
//!    commuted alternations identical cache keys.
//! 3. **Exactness of the sum.** `estimate_expr` is bit-identical to
//!    summing per-path `estimate` calls over the brute-force enumeration
//!    (length-major, lexicographic), across **all 7 orderings × 6
//!    histogram kinds** — and the exact-oracle path agrees with actual
//!    graph counts.

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::graph::{FollowMatrix, Graph, GraphBuilder, LabelId, VertexId};
use phe::pathenum::{PathRelation, SelectivityCatalog};
use phe::query::{CardinalityEstimator, ExactOracle, ExpandOptions, HistogramEstimator, PathExpr};
use proptest::prelude::*;

const LABELS: u16 = 3;

fn arb_graph() -> impl Strategy<Value = Graph> {
    prop::collection::vec((0u32..12, 0u16..LABELS, 0u32..12), 0..60).prop_map(|edges| {
        let mut b = GraphBuilder::with_numeric_labels(12, LABELS);
        for (s, l, t) in edges {
            b.add_edge(VertexId(s), LabelId(l), VertexId(t));
        }
        b.build()
    })
}

/// A recursive random expression over the fixed alphabet; depth and
/// fan-out are bounded so expansions stay enumerable.
struct ArbExpr {
    depth: u8,
}

impl Strategy for ArbExpr {
    type Value = PathExpr;
    fn generate(&self, rng: &mut proptest::TestRng) -> PathExpr {
        gen_expr(rng, self.depth)
    }
}

fn gen_expr(rng: &mut proptest::TestRng, depth: u8) -> PathExpr {
    if depth == 0 || rng.below(3) == 0 {
        return if rng.below(5) == 0 {
            PathExpr::Wildcard
        } else {
            PathExpr::Label(LabelId(rng.below(LABELS as u64) as u16))
        };
    }
    match rng.below(3) {
        0 => PathExpr::Concat(
            (0..2 + rng.below(2))
                .map(|_| gen_expr(rng, depth - 1))
                .collect(),
        ),
        1 => PathExpr::Alt(
            (0..2 + rng.below(2))
                .map(|_| gen_expr(rng, depth - 1))
                .collect(),
        ),
        _ => {
            let min = rng.below(3) as u8;
            let max = (min + 1 + rng.below(2) as u8).min(3).max(min.max(1));
            PathExpr::Repeat {
                inner: Box::new(gen_expr(rng, depth - 1)),
                min,
                max,
            }
        }
    }
}

/// Every concrete sequence of length `1..=max_len`, in the canonical
/// length-major, lexicographic order, that the expression matches and
/// the (optional) follow matrix allows — the reference the expansion
/// must reproduce exactly.
fn brute_force_matches(
    expr: &PathExpr,
    max_len: usize,
    follow: Option<&FollowMatrix>,
) -> Vec<Vec<LabelId>> {
    let mut out = Vec::new();
    for len in 1..=max_len {
        let total = (LABELS as u64).pow(len as u32);
        for i in 0..total {
            let mut seq = Vec::with_capacity(len);
            for j in 0..len {
                let div = (LABELS as u64).pow((len - 1 - j) as u32);
                seq.push(LabelId(((i / div) % LABELS as u64) as u16));
            }
            if !expr.matches(&seq) {
                continue;
            }
            if let Some(follow) = follow {
                if !follow.allows(&seq) {
                    continue;
                }
            }
            out.push(seq);
        }
    }
    out
}

fn opts(max_len: usize) -> ExpandOptions<'static> {
    ExpandOptions::new(LABELS as usize, max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    // Expansion produces exactly the brute-force match set, in canonical
    // order, with and without follow pruning.
    #[test]
    fn expansion_equals_brute_force_enumeration(
        expr in ArbExpr { depth: 3 },
        g in arb_graph(),
        max_len in 1usize..4,
    ) {
        let follow = FollowMatrix::from_graph(&g);
        for follow in [None, Some(&follow)] {
            let mut o = opts(max_len);
            if let Some(f) = follow {
                o = o.with_follow(f);
            }
            let expansion = expr.expand(&o).unwrap();
            let got: Vec<Vec<LabelId>> =
                expansion.paths.iter().map(|p| p.label_ids()).collect();
            let expected = brute_force_matches(&expr, max_len, follow);
            prop_assert_eq!(
                &got,
                &expected,
                "expr {} (follow: {})",
                expr,
                follow.is_some()
            );
            prop_assert_eq!(expansion.matches_empty, expr.matches(&[]));
        }
    }

    // Normalization: idempotent, key-stable, and semantics-preserving.
    #[test]
    fn normalization_is_idempotent_and_semantics_preserving(
        expr in ArbExpr { depth: 3 },
    ) {
        let normalized = expr.normalize();
        prop_assert_eq!(normalized.normalize(), normalized.clone(), "idempotence");
        prop_assert_eq!(expr.cache_key(), normalized.cache_key());
        let a = expr.expand(&opts(3)).unwrap();
        let b = normalized.expand(&opts(3)).unwrap();
        prop_assert_eq!(a.paths, b.paths, "{} vs {}", expr, normalized);
        prop_assert_eq!(a.matches_empty, b.matches_empty);
    }

    // Commuting (and duplicating) alternation branches never changes the
    // cache key.
    #[test]
    fn commuted_alternations_share_cache_keys(
        a in ArbExpr { depth: 2 },
        b in ArbExpr { depth: 2 },
        c in ArbExpr { depth: 2 },
    ) {
        let forward = PathExpr::Concat(vec![
            PathExpr::Alt(vec![a.clone(), b.clone(), c.clone()]),
            a.clone(),
        ]);
        let rotated = PathExpr::Concat(vec![
            PathExpr::Alt(vec![c.clone(), a.clone(), b.clone(), c]),
            a,
        ]);
        prop_assert_eq!(forward.cache_key(), rotated.cache_key());
        prop_assert_eq!(
            PathExpr::Alt(vec![b.clone()]).cache_key(),
            b.cache_key(),
            "singleton alternation unwraps"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // The acceptance property: `estimate_expr` is bit-identical to the
    // sum of per-concrete-path `estimate` calls over the brute-force
    // enumeration, across all 7 orderings × 6 histogram kinds.
    #[test]
    fn estimate_expr_is_bit_identical_to_brute_force_sum(
        expr in ArbExpr { depth: 3 },
        g in arb_graph(),
        k in 1usize..4,
        beta in 1usize..16,
    ) {
        let follow = FollowMatrix::from_graph(&g);
        for ordering in OrderingKind::ALL.into_iter().chain([OrderingKind::Ideal]) {
            for histogram in HistogramKind::ALL {
                let config = EstimatorConfig {
                    k,
                    beta,
                    ordering,
                    histogram,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: false,
                };
                let built = PathSelectivityEstimator::build(&g, config).unwrap();
                let estimator =
                    HistogramEstimator::new(&built).with_follow(follow.clone());
                let got = estimator.estimate_expr(&expr).unwrap();

                let reference = brute_force_matches(&expr, k, Some(&follow));
                let mut expected = 0.0f64;
                for seq in &reference {
                    expected += estimator.estimate(seq).max(0.0);
                }
                prop_assert_eq!(
                    got.total.to_bits(),
                    expected.to_bits(),
                    "{}/{}: expr {} got {} expected {}",
                    ordering.name(),
                    histogram.name(),
                    expr,
                    got.total,
                    expected
                );
                prop_assert_eq!(got.width(), reference.len());
                // The branch breakdown is the enumeration itself.
                for ((path, _), seq) in got.branches.iter().zip(&reference) {
                    prop_assert_eq!(&path.label_ids(), seq);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // The oracle path: expression totals equal actual graph counts —
    // summed per concrete path over the brute-force enumeration, where
    // each path's count comes from evaluating the graph directly.
    #[test]
    fn oracle_expr_totals_agree_with_actual_graph_counts(
        expr in ArbExpr { depth: 3 },
        g in arb_graph(),
        k in 1usize..4,
    ) {
        let catalog = SelectivityCatalog::compute(&g, k);
        let follow = FollowMatrix::from_graph(&g);
        let oracle = ExactOracle::new(&catalog).with_follow(follow.clone());
        let got = oracle.estimate_expr(&expr).unwrap();

        let mut actual = 0u64;
        for seq in brute_force_matches(&expr, k, Some(&follow)) {
            actual += PathRelation::evaluate(&g, &seq).pair_count();
        }
        prop_assert_eq!(
            got.total,
            actual as f64,
            "expr {}: oracle {} vs actual {}",
            expr,
            got.total,
            actual
        );
        // Pruning is sound for truth: branches the follow matrix removed
        // contribute zero, so the unpruned total is identical.
        let unpruned = ExactOracle::new(&catalog).estimate_expr(&expr).unwrap();
        prop_assert_eq!(unpruned.total, got.total);
        prop_assert!(unpruned.width() >= got.width());
    }
}
