//! End-to-end tests of the `phe` CLI binary: generate → stats → build →
//! estimate → accuracy, exercising real process boundaries and file I/O.

use std::path::PathBuf;
use std::process::Command;

fn phe() -> Command {
    Command::new(env!("CARGO_BIN_EXE_phe"))
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("phe_cli_tests").join(name);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_workflow_generate_build_estimate() {
    let dir = workdir("workflow");
    let graph = dir.join("g.tsv");
    let stats = dir.join("stats.json");

    // generate
    let out = phe()
        .args([
            "generate",
            "chained",
            "--scale",
            "0.05",
            "--seed",
            "7",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .expect("spawn phe generate");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(graph.exists());

    // stats
    let out = phe()
        .args(["stats", graph.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("labels:   6"), "{text}");

    // build
    let out = phe()
        .args([
            "build",
            graph.to_str().unwrap(),
            "--k",
            "3",
            "--beta",
            "32",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stats.exists());

    // estimate — needs only the snapshot, not the graph.
    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "r0/r1", "r5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "{text}");
    for line in lines {
        let (expr, value) = line.split_once('\t').expect("tab-separated output");
        assert!(!expr.is_empty());
        let v: f64 = value.parse().expect("numeric estimate");
        assert!(v >= 0.0);
    }

    // accuracy
    let out = phe()
        .args([
            "accuracy",
            graph.to_str().unwrap(),
            "--k",
            "2",
            "--beta",
            "16",
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sum-based"), "{text}");
}

#[test]
fn build_stats_reports_sparse_memory() {
    let dir = workdir("build_stats");
    let graph = dir.join("g.tsv");
    let stats = dir.join("stats.json");
    let out = phe()
        .args([
            "generate",
            "chained",
            "--scale",
            "0.05",
            "--seed",
            "11",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // --stats + --no-accuracy: sparse end-to-end, memory report printed,
    // no accuracy line.
    let out = phe()
        .args([
            "build",
            graph.to_str().unwrap(),
            "--k",
            "3",
            "--beta",
            "32",
            "--stats",
            "--no-accuracy",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("sparse catalog"), "{text}");
    assert!(text.contains("realized"), "{text}");
    assert!(text.contains("bytes/entry"), "{text}");
    assert!(text.contains("compression"), "{text}");
    assert!(text.contains("histogram + ordering state only"), "{text}");
    assert!(!text.contains("whole-domain mean"), "{text}");

    // The written snapshot is v5 and still estimates.
    let json = std::fs::read_to_string(&stats).unwrap();
    assert!(json.contains("\"version\": 5"), "{json}");
    assert!(json.contains("\"nonzero_paths\""), "{json}");
    assert!(json.contains("\"base_build_id\""), "{json}");
    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "r0/r1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn build_catalog_file_writes_a_servable_sidecar() {
    let dir = workdir("catalog_file");
    let graph = dir.join("g.tsv");
    let stats = dir.join("stats.json");
    let out = phe()
        .args([
            "generate",
            "chained",
            "--scale",
            "0.05",
            "--seed",
            "13",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // --catalog-file writes the .phc sidecar next to --out and records
    // it by relative name; the JSON carries no inline runs.
    let out = phe()
        .args([
            "build",
            graph.to_str().unwrap(),
            "--k",
            "3",
            "--beta",
            "32",
            "--no-accuracy",
            "--catalog-file",
            "cat.phc",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cat.phc"), "{text}");
    assert!(dir.join("cat.phc").exists());
    let json = std::fs::read_to_string(&stats).unwrap();
    assert!(json.contains("\"catalog_file\": \"cat.phc\""), "{json}");
    assert!(json.contains("\"sparse_runs\": null"), "{json}");

    // Estimation needs only the histogram — the sidecar is for serving.
    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "r0/r1"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // An absolute sidecar path is refused: the pair must stay movable.
    let out = phe()
        .args([
            "build",
            graph.to_str().unwrap(),
            "--k",
            "2",
            "--beta",
            "8",
            "--no-accuracy",
            "--catalog-file",
            "/tmp/abs.phc",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("relative"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn delta_refreshes_statistics_incrementally() {
    let dir = workdir("delta");
    let graph = dir.join("g.tsv");
    let changes = dir.join("changes.tsv");
    let stats = dir.join("refreshed.json");

    let out = phe()
        .args([
            "generate",
            "chained",
            "--scale",
            "0.05",
            "--seed",
            "3",
            "--out",
            graph.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());

    // Remove the first edge of the file and add a fresh one.
    let tsv = std::fs::read_to_string(&graph).unwrap();
    let first_edge = tsv
        .lines()
        .find(|l| !l.starts_with('#') && !l.trim().is_empty())
        .unwrap();
    std::fs::write(&changes, format!("# churn\n-\t{first_edge}\n+\t1\tr2\t0\n")).unwrap();

    let out = phe()
        .args([
            "delta",
            "--graph",
            graph.to_str().unwrap(),
            "--changes",
            changes.to_str().unwrap(),
            "--k",
            "3",
            "--beta",
            "32",
            "--compare",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 removals + 1 insertions"), "{text}");
    assert!(text.contains("1 delta(s) applied"), "{text}");
    assert!(
        text.contains("bit-identical to full recount"),
        "--compare must verify: {text}"
    );

    // The refreshed snapshot carries the lineage and still estimates.
    let json = std::fs::read_to_string(&stats).unwrap();
    assert!(json.contains("\"applied_deltas\": 1"), "{json}");
    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "r2/r3"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // A changes file naming an unknown label is refused with the
    // full-rebuild hint.
    std::fs::write(&changes, "+\t0\tbrand-new-label\t1\n").unwrap();
    let out = phe()
        .args([
            "delta",
            "--graph",
            graph.to_str().unwrap(),
            "--changes",
            changes.to_str().unwrap(),
            "--k",
            "2",
            "--beta",
            "8",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("full rebuild"),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn query_estimates_expressions_locally_with_explain_and_pruning() {
    let dir = workdir("query_expr");
    let graph = dir.join("g.tsv");
    let stats = dir.join("stats.json");
    // a feeds b; c is disconnected from both.
    std::fs::write(&graph, "0\ta\t1\n1\tb\t2\n1\tb\t3\n7\tc\t8\n").unwrap();
    let out = phe()
        .args([
            "build",
            graph.to_str().unwrap(),
            "--k",
            "2",
            "--beta",
            "8",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // estimate handles full expressions now.
    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "(a|c)/b?"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.starts_with("(a|c)/b?\t"), "{text}");

    // query --snapshot --explain prints the tree, branches, and counts.
    let out = phe()
        .args([
            "query",
            "--snapshot",
            stats.to_str().unwrap(),
            "--explain",
            "(a|c)/b?",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("concrete path(s)"), "{text}");
    assert!(text.contains("alt"), "{text}");
    assert!(text.contains("a/b\t"), "{text}");
    assert!(text.contains("0 pruned"), "{text}");

    // With the build graph, impossible branches (c/b) are pruned.
    let out = phe()
        .args([
            "query",
            "--snapshot",
            stats.to_str().unwrap(),
            "--graph",
            graph.to_str().unwrap(),
            "--explain",
            "(a|c)/b?",
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("1 pruned"), "{text}");
    assert!(!text.contains("c/b\t"), "{text}");

    // Parse errors point at the offending bytes with a caret snippet.
    let out = phe()
        .args(["query", "--snapshot", stats.to_str().unwrap(), "a/zzz"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown edge label \"zzz\""), "{err}");
    assert!(err.contains("a/zzz"), "{err}");
    assert!(err.contains("  ^^^"), "caret underline expected: {err}");
}

#[test]
fn errors_are_reported_not_panicked() {
    // Unknown subcommand.
    let out = phe().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));

    // Missing file.
    let out = phe()
        .args(["stats", "/nonexistent/g.tsv"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("error"));

    // Missing required flag.
    let dir = workdir("errors");
    let graph = dir.join("g.tsv");
    std::fs::write(&graph, "0\ta\t1\n").unwrap();
    let out = phe()
        .args(["build", graph.to_str().unwrap(), "--k", "2"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--beta"));
}

#[test]
fn estimate_rejects_unknown_labels_and_overlong_paths() {
    let dir = workdir("estimate_errors");
    let graph = dir.join("g.tsv");
    let stats = dir.join("stats.json");
    std::fs::write(&graph, "0\ta\t1\n1\tb\t2\n").unwrap();
    let out = phe()
        .args([
            "build",
            graph.to_str().unwrap(),
            "--k",
            "2",
            "--beta",
            "4",
            "--out",
            stats.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "a/zzz"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("zzz"));

    let out = phe()
        .args(["estimate", stats.to_str().unwrap(), "a/b/a"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("k ≤ 2"));
}
