//! Cross-crate integration of the query engine: parsing, optimizing with
//! histogram-backed estimates, executing, and comparing plan quality
//! across estimators.

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::dbpedia_like_scaled;
use phe::pathenum::{parallel, PathRelation};
use phe::query::{
    execute, optimize, CardinalityEstimator, ExactOracle, HistogramEstimator, IndependenceBaseline,
};

/// Whatever the estimator, the optimizer's plan must compute the correct
/// answer — estimates may only change the cost, never the result.
#[test]
fn all_estimators_produce_correct_answers() {
    let graph = dbpedia_like_scaled(0.01, 13);
    let k = 4;
    let catalog = parallel::compute_parallel(&graph, k, 2);
    let estimator = PathSelectivityEstimator::from_catalog(
        &graph,
        catalog.clone(),
        EstimatorConfig {
            k,
            beta: 32,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: false,
            retain_sparse: false,
        },
        std::time::Duration::ZERO,
    )
    .unwrap();

    let oracle = ExactOracle::new(&catalog);
    let histogram = HistogramEstimator::new(&estimator);
    let independence = IndependenceBaseline::from_graph(&graph);
    let estimators: [&dyn CardinalityEstimator; 3] = [&oracle, &histogram, &independence];

    let query: Vec<phe::graph::LabelId> = (0..4u16).map(phe::graph::LabelId).collect();
    let reference: Vec<(u32, u32)> = PathRelation::evaluate(&graph, &query)
        .iter_pairs()
        .collect();
    for est in estimators {
        let plan = optimize(&query, est);
        let report = execute(&graph, &plan);
        let got: Vec<(u32, u32)> = report.result.iter_pairs().collect();
        assert_eq!(got, reference, "estimator {} broke the answer", est.name());
        // The plan's estimated root cardinality is the estimator's value
        // for the full query.
        assert!((plan.estimated() - est.estimate(&query)).abs() < 1e-9);
    }
}

/// The exact oracle's chosen plan is never beaten in actual cost by the
/// plans other estimators choose (on the matrix-chain plan space, exact
/// intermediate knowledge is optimal for this cost model).
#[test]
fn oracle_plans_lower_bound_other_estimators() {
    let graph = dbpedia_like_scaled(0.008, 29);
    let k = 3;
    let catalog = parallel::compute_parallel(&graph, k, 2);
    let estimator = PathSelectivityEstimator::from_catalog(
        &graph,
        catalog.clone(),
        EstimatorConfig {
            k,
            beta: 16,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: false,
            retain_sparse: false,
        },
        std::time::Duration::ZERO,
    )
    .unwrap();
    let oracle = ExactOracle::new(&catalog);
    let histogram = HistogramEstimator::new(&estimator);
    let independence = IndependenceBaseline::from_graph(&graph);

    let labels = graph.label_count() as u16;
    for a in 0..labels.min(4) {
        for b in 0..labels.min(4) {
            for c in 0..labels.min(4) {
                let query = vec![
                    phe::graph::LabelId(a),
                    phe::graph::LabelId(b),
                    phe::graph::LabelId(c),
                ];
                if catalog.selectivity(&query) == 0 {
                    continue;
                }
                let oracle_cost = execute(&graph, &optimize(&query, &oracle)).actual_cost();
                for est in [&histogram as &dyn CardinalityEstimator, &independence] {
                    let cost = execute(&graph, &optimize(&query, est)).actual_cost();
                    assert!(
                        oracle_cost <= cost,
                        "query {a}/{b}/{c}: oracle {oracle_cost} beaten by {} {cost}",
                        est.name()
                    );
                }
            }
        }
    }
}
