//! Figure 1, live: renders the label-path frequency distribution of a
//! Moreno-like graph and an equi-width histogram over it as ASCII bars,
//! under two different domain orderings — making *visible* why ordering
//! decides histogram quality.
//!
//! ```text
//! cargo run --release --example histogram_viz
//! ```

use phe::core::eval::ordered_frequencies;
use phe::core::ordering::OrderingKind;
use phe::datasets::moreno_health_like_scaled;
use phe::histogram::builder::{EquiWidth, HistogramBuilder};
use phe::histogram::PointEstimator;
use phe::pathenum::SelectivityCatalog;

const WIDTH: usize = 56;

fn bar(value: f64, max: f64) -> String {
    let filled = ((value / max) * WIDTH as f64).round() as usize;
    "█".repeat(filled.min(WIDTH))
}

fn main() {
    let graph = moreno_health_like_scaled(0.25, 42);
    let k = 2; // small domain so the plot fits a terminal
    let catalog = SelectivityCatalog::compute(&graph, k);
    let beta = 6;

    for kind in [OrderingKind::NumAlph, OrderingKind::SumBased] {
        let ordering = kind.build(&graph, &catalog, k);
        let ordered = ordered_frequencies(&catalog, ordering.as_ref());
        let histogram = EquiWidth.build(&ordered, beta).expect("non-empty");
        let max = *ordered.iter().max().expect("non-empty") as f64;

        println!("\n== {} ordering, equi-width β = {beta} ==\n", kind.name());
        println!(
            "{:>5} {:>10} {:>10}  distribution (█ = truth, estimate marked ▕)",
            "idx", "f", "est"
        );
        for (i, &f) in ordered.iter().enumerate() {
            let est = histogram.estimate(i);
            let est_pos = ((est / max) * WIDTH as f64).round() as usize;
            let mut line = bar(f as f64, max);
            // Pad to the estimate marker.
            while line.chars().count() < est_pos {
                line.push(' ');
            }
            line.push('▕');
            println!("{i:>5} {f:>10} {est:>10.1}  {line}");
        }

        // Aggregate quality under this ordering.
        let sse = histogram.sse(&ordered);
        println!("\nSSE of this bucketing: {sse:.0}");
    }

    println!(
        "\nSame data, same bucket budget — the sum-based ordering sorts the\n\
         domain towards monotonicity, so equal-width buckets cut it where it\n\
         is flat. That is the entire idea of the paper."
    );
}
