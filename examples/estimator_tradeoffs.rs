//! The estimator design space in one table: exact catalog vs histogram
//! (this paper) vs sampling — build cost, retained memory, per-query
//! latency, and accuracy, measured on the same workload.
//!
//! ```text
//! cargo run --release --example estimator_tradeoffs
//! ```

use std::time::Instant;

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::moreno_health_like_scaled;
use phe::histogram::{mean_abs_error_rate, PointEstimator};
use phe::pathenum::{parallel, SamplingConfig, SamplingEstimator};
use phe::query::stratified_workload;

fn main() {
    let graph = moreno_health_like_scaled(0.5, 123);
    let k = 4;
    println!(
        "dataset: Moreno-like at half scale — {} vertices, {} edges, k = {k}\n",
        graph.vertex_count(),
        graph.edge_count()
    );

    // Ground truth + a stratified query workload.
    let t = Instant::now();
    let catalog = parallel::compute_parallel(&graph, k, 0);
    let catalog_build = t.elapsed();
    let workload = stratified_workload(&catalog, k, 64, 7);
    let truths: Vec<u64> = workload
        .queries
        .iter()
        .map(|q| catalog.selectivity(q))
        .collect();
    println!(
        "workload: {} stratified length-{k} queries (selectivity {} .. {})\n",
        workload.queries.len(),
        truths.iter().min().unwrap(),
        truths.iter().max().unwrap()
    );

    println!(
        "{:<26} {:>10} {:>12} {:>12} {:>12}",
        "estimator", "build", "memory", "ns/query", "mean |err|"
    );

    // 1. Exact catalog: perfect but stores the whole table.
    {
        let t = Instant::now();
        let mut acc = 0.0;
        for q in &workload.queries {
            acc += catalog.selectivity(q) as f64;
        }
        std::hint::black_box(acc);
        let per_query = t.elapsed().as_nanos() as f64 / workload.queries.len() as f64;
        println!(
            "{:<26} {:>9.2}s {:>11}B {:>12.0} {:>12.4}",
            "exact catalog",
            catalog_build.as_secs_f64(),
            catalog.len() * 8,
            per_query,
            0.0
        );
    }

    // 2. Histograms under two orderings (the paper's subject).
    for ordering in [OrderingKind::NumAlph, OrderingKind::SumBased] {
        let t = Instant::now();
        let est = PathSelectivityEstimator::from_catalog(
            &graph,
            catalog.clone(),
            EstimatorConfig {
                k,
                beta: catalog.len() / 64,
                ordering,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 0,
                retain_catalog: false,
                retain_sparse: false,
            },
            catalog_build,
        )
        .expect("estimator");
        let build = t.elapsed() + catalog_build;
        let estimates: Vec<f64> = workload.queries.iter().map(|q| est.estimate(q)).collect();
        let t = Instant::now();
        let mut acc = 0.0;
        for q in &workload.queries {
            acc += est.estimate(q);
        }
        std::hint::black_box(acc);
        let per_query = t.elapsed().as_nanos() as f64 / workload.queries.len() as f64;
        println!(
            "{:<26} {:>9.2}s {:>11}B {:>12.0} {:>12.4}",
            format!("histogram/{}", ordering.name()),
            build.as_secs_f64(),
            est.histogram().histogram().size_bytes(),
            per_query,
            mean_abs_error_rate(&estimates, &truths)
        );
    }

    // 3. Sampling: no build, no memory, per-query traversal.
    for sample_size in [32usize, 256] {
        let est = SamplingEstimator::new(
            &graph,
            SamplingConfig {
                sample_size,
                seed: 99,
            },
        );
        let estimates: Vec<f64> = workload.queries.iter().map(|q| est.estimate(q)).collect();
        let t = Instant::now();
        let mut acc = 0.0;
        for q in &workload.queries {
            acc += est.estimate(q);
        }
        std::hint::black_box(acc);
        let per_query = t.elapsed().as_nanos() as f64 / workload.queries.len() as f64;
        println!(
            "{:<26} {:>9.2}s {:>11}B {:>12.0} {:>12.4}",
            format!("sampling-{sample_size}"),
            0.0,
            0,
            per_query,
            mean_abs_error_rate(&estimates, &truths)
        );
    }

    println!(
        "\nThe paper lives in the middle row: histograms pay the catalog build\n\
         once, retain kilobytes, and answer in nanoseconds — and the domain\n\
         ordering decides how much accuracy survives the compression."
    );
}
