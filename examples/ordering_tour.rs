//! A guided tour of the ordering framework on the paper's Section 3.4
//! example: three labels "1", "2", "3" with cardinalities 20, 100, 80 and
//! paths up to length 2.
//!
//! ```text
//! cargo run --release --example ordering_tour
//! ```

use phe::core::base_set::{greedy_split, Piece, SumBasedL2Ordering};
use phe::core::ordering::{
    DomainOrdering, LexicographicalOrdering, NumericalOrdering, SumBasedOrdering,
};
use phe::core::{LabelPath, LabelRanking, PathDomain};
use phe::graph::LabelId;

fn show(p: &LabelPath) -> String {
    p.iter()
        .map(|l| (l.0 + 1).to_string())
        .collect::<Vec<_>>()
        .join("/")
}

fn main() {
    let domain = PathDomain::new(3, 2);
    let freqs = [20u64, 100, 80];

    println!("== Ranking rules ==\n");
    let alph = LabelRanking::identity(3);
    let card = LabelRanking::cardinality_from_frequencies(&freqs);
    for id in 0..3u16 {
        let l = LabelId(id);
        println!(
            "label \"{}\": f = {:>3}, alphabetical rank {}, cardinality rank {}",
            id + 1,
            freqs[id as usize],
            alph.rank(l),
            card.rank(l)
        );
    }

    println!("\n== The five ordering methods (paper Table 2) ==\n");
    let orderings: Vec<Box<dyn DomainOrdering>> = vec![
        Box::new(NumericalOrdering::new(domain, alph.clone(), "num-alph")),
        Box::new(NumericalOrdering::new(domain, card.clone(), "num-card")),
        Box::new(LexicographicalOrdering::new(domain, alph, "lex-alph")),
        Box::new(LexicographicalOrdering::new(
            domain,
            card.clone(),
            "lex-card",
        )),
        Box::new(SumBasedOrdering::new(domain, card.clone())),
    ];
    for o in &orderings {
        let row: Vec<String> = (0..domain.size()).map(|i| show(&o.path_at(i))).collect();
        println!("{:<10} {}", o.name(), row.join(" "));
    }

    println!("\n== How sum-based ordering places \"3/1\" ==\n");
    let sum_based = SumBasedOrdering::new(domain, card);
    let path = LabelPath::new(&[LabelId(2), LabelId(0)]);
    println!(
        "path 3/1: ranks (2, 1), summed rank {}",
        sum_based.summed_rank(&path)
    );
    println!(
        "stage 1: length 2 ⇒ skip the {} single-label paths",
        domain.offset_of_length(2)
    );
    println!("stage 2: skip groups with smaller sums (sum 2: 1 path)");
    println!("stage 3: within sum 3: combination {{1,2}}, permutations (1,2) then (2,1)");
    println!("⇒ index {}", sum_based.index_of(&path));
    assert_eq!(sum_based.index_of(&path), 5);

    println!("\n== The future-work base set B = L² ==\n");
    let long = LabelPath::new(&[LabelId(3), LabelId(3), LabelId(2), LabelId(2), LabelId(5)]);
    let pieces: Vec<String> = greedy_split(&long)
        .iter()
        .map(|p| match p {
            Piece::Pair(a, b) => format!("{}/{}", a.0 + 1, b.0 + 1),
            Piece::Single(a) => format!("{}", a.0 + 1),
        })
        .collect();
    println!(
        "greedy split of 4/4/3/3/6 over B = L²: {}",
        pieces.join(" | ")
    );

    // Pair frequencies that are NOT products of the marginals — a
    // correlated toy where the L2 ordering re-sorts pairs by truth.
    let pair_freqs = [5u64, 40, 0, 90, 10, 30, 2, 60, 25];
    let l2 = SumBasedL2Ordering::from_frequencies(domain, &freqs, &pair_freqs);
    let row: Vec<String> = (0..domain.size()).map(|i| show(&l2.path_at(i))).collect();
    println!("sum-based-L2 ordering: {}", row.join(" "));
    println!(
        "(pairs now sort by their true 2-path frequencies, capturing the\n\
         correlations the paper's future-work section is after)"
    );
}
