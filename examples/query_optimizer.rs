//! The downstream payoff: path selectivity estimates driving a join-order
//! optimizer — the scenario the paper's introduction motivates.
//!
//! Builds a knowledge-graph-like dataset, plans the same path query with
//! three estimators (independence baseline, histogram, exact oracle), and
//! executes every plan to show the actual intermediate sizes each choice
//! causes.
//!
//! ```text
//! cargo run --release --example query_optimizer
//! ```

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::datasets::dbpedia_like_scaled;
use phe::pathenum::parallel::compute_parallel;
use phe::query::{
    execute, optimize, CardinalityEstimator, ExactOracle, HistogramEstimator, IndependenceBaseline,
};

fn main() {
    let graph = dbpedia_like_scaled(0.03, 7);
    println!(
        "knowledge graph: {} entities, {} facts, {} predicates",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    let k = 4;
    let catalog = compute_parallel(&graph, k, 0);
    let estimator = PathSelectivityEstimator::from_catalog(
        &graph,
        catalog.clone(),
        EstimatorConfig {
            k,
            beta: catalog.len() / 32,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 0,
            retain_catalog: false,
            retain_sparse: false,
        },
        std::time::Duration::ZERO,
    )
    .expect("estimator");

    // A 4-step chain query across predicates 0..3 (think
    // birthPlace/country/capital/mayor).
    let query: Vec<phe::graph::LabelId> = (0..4u16).map(phe::graph::LabelId).collect();
    println!(
        "query: {}\n",
        query
            .iter()
            .map(|l| format!("p{}", l.0))
            .collect::<Vec<_>>()
            .join("/")
    );

    let oracle = ExactOracle::new(&catalog);
    let histogram = HistogramEstimator::new(&estimator);
    let independence = IndependenceBaseline::from_graph(&graph);
    let estimators: [(&str, &dyn CardinalityEstimator); 3] = [
        ("independence assumption", &independence),
        ("sum-based histogram", &histogram),
        ("exact oracle", &oracle),
    ];

    for (name, est) in estimators {
        let plan = optimize(&query, est);
        let report = execute(&graph, &plan);
        println!("--- {name} ---");
        print!("{}", plan.explain());
        println!(
            "estimated cost {:.0}, ACTUAL intermediate pairs {}, answer {} pairs\n",
            plan.estimated_cost(),
            report.actual_cost(),
            report.result.pair_count()
        );
    }

    println!(
        "The oracle's plan is the floor; the closer an estimator's actual cost\n\
         lands to it, the better its selectivity estimates served the optimizer."
    );
}
