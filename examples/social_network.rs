//! Domain ordering on a realistic workload: friend-recommendation paths
//! over a Forest Fire social graph (the kind of analytics query the
//! paper's introduction motivates).
//!
//! Compares the accuracy of every ordering method at a fixed histogram
//! budget, then drills into the queries an optimizer would actually ask
//! about ("friend of friend", "friend's follower", …).
//!
//! ```text
//! cargo run --release --example social_network
//! ```

use phe::core::eval::evaluate_configuration;
use phe::core::ordering::OrderingKind;
use phe::core::{EstimatorConfig, HistogramKind, PathSelectivityEstimator};
use phe::datasets::{forest_fire, ForestFireParams, LabelDistribution};
use phe::pathenum::SelectivityCatalog;

fn main() {
    // A 2 000-person social network; labels skewed like real platforms:
    // follows ≫ likes > knows > blocks.
    let graph = forest_fire(
        2000,
        5,
        ForestFireParams {
            forward_p: 0.3,
            backward_r: 0.35,
            max_burn: 150,
        },
        LabelDistribution::Zipf { exponent: 1.0 },
        2024,
    );
    println!(
        "social graph: {} people, {} edges, labels: follows/likes/knows/blocks/mutes",
        graph.vertex_count(),
        graph.edge_count()
    );

    let k = 4;
    let catalog = SelectivityCatalog::compute(&graph, k);
    let beta = catalog.len() / 16;
    println!(
        "domain: {} label paths (k = {k}), histogram budget β = {beta}\n",
        catalog.len()
    );

    println!(
        "{:<14} {:>12} {:>14}",
        "ordering", "mean |err|", "median q-error"
    );
    for kind in OrderingKind::ALL {
        let ordering = kind.build(&graph, &catalog, k);
        let report = evaluate_configuration(
            &catalog,
            ordering.as_ref(),
            HistogramKind::VOptimalGreedy,
            beta,
        )
        .expect("non-empty domain");
        println!(
            "{:<14} {:>12.4} {:>14.3}",
            kind.name(),
            report.mean_abs_error_rate,
            report.median_q_error
        );
    }

    // The optimizer's-eye view: specific recommendation queries.
    let estimator = PathSelectivityEstimator::build(
        &graph,
        EstimatorConfig {
            k,
            beta,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 0,
            retain_catalog: true,
            retain_sparse: false,
        },
    )
    .expect("estimator");
    let names = ["0", "1", "2", "3", "4"]; // follows, likes, knows, blocks, mutes
    let queries = [
        (vec![0, 0], "follows/follows (friend-of-friend)"),
        (vec![0, 1], "follows/likes (what friends like)"),
        (vec![2, 0], "knows/follows"),
        (vec![3, 0], "blocks/follows (rare prefix)"),
    ];
    println!(
        "\n{:<38} {:>10} {:>8} {:>8}",
        "query", "estimate", "true", "err"
    );
    for (ids, desc) in &queries {
        let path: Vec<phe::graph::LabelId> = ids
            .iter()
            .map(|&i| graph.labels().get(names[i]).expect("label"))
            .collect();
        println!(
            "{desc:<38} {:>10.1} {:>8} {:>+8.3}",
            estimator.estimate(&path),
            estimator.exact(&path),
            estimator.error(&path)
        );
    }
    println!(
        "\nmemory: histogram retains {} bytes vs {} catalog entries × 8 bytes",
        estimator.histogram().size_bytes(),
        estimator.domain_size()
    );
}
