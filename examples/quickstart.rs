//! Quickstart: build a graph, build an estimator, ask it questions.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use phe::core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe::graph::GraphBuilder;
use phe::query::parse_path;

fn main() {
    // A small social graph: people know/follow/like each other.
    let mut b = GraphBuilder::new();
    let edges = [
        (0, "knows", 1),
        (0, "knows", 2),
        (1, "knows", 3),
        (2, "follows", 3),
        (3, "likes", 4),
        (1, "likes", 4),
        (4, "follows", 0),
        (2, "knows", 4),
        (4, "knows", 5),
        (5, "likes", 0),
    ];
    for (s, l, t) in edges {
        b.add_edge_named(s, l, t);
    }
    let graph = b.build();
    println!(
        "graph: {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    );

    // Build the estimator: sum-based domain ordering (the paper's novel
    // method) over a V-optimal histogram with a tiny budget.
    let estimator = PathSelectivityEstimator::build(
        &graph,
        EstimatorConfig {
            k: 3,
            beta: 8,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 1,
            retain_catalog: true,
            retain_sparse: false,
        },
    )
    .expect("estimator");
    println!(
        "domain: {} label paths of length ≤ {}, {} histogram buckets\n",
        estimator.domain_size(),
        estimator.config().k,
        estimator.config().beta,
    );

    // Estimate vs truth for some path queries.
    for expr in ["knows", "knows/likes", "knows/knows/likes", "likes/follows"] {
        let path = parse_path(&graph, expr).expect("known labels");
        let estimate = estimator.estimate(&path);
        let exact = estimator.exact(&path);
        let err = estimator.error(&path);
        println!("{expr:<20} estimate {estimate:>6.2}   true {exact:>3}   err {err:+.3}");
    }

    // The whole-domain accuracy report (one Figure 2 data point).
    let report = estimator.accuracy_report();
    println!(
        "\nwhole-domain accuracy: mean |err| = {:.4}, median q-error = {:.3} over {} paths",
        report.mean_abs_error_rate, report.median_q_error, report.count
    );
}
