//! Property tests for histogram construction and estimation invariants.

use phe_histogram::builder::{EquiDepth, EquiWidth, HistogramBuilder, VOptimal};
use phe_histogram::{error_rate, EndBiasedHistogram, Histogram, PointEstimator, PrefixSums};
use proptest::prelude::*;

fn arb_data() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..10_000, 1..300)
}

fn all_builders() -> Vec<Box<dyn HistogramBuilder>> {
    vec![
        Box::new(EquiWidth),
        Box::new(EquiDepth),
        Box::new(VOptimal::exact()),
        Box::new(VOptimal::greedy()),
        Box::new(VOptimal::maxdiff()),
    ]
}

fn check_partition(
    h: &Histogram,
    data: &[u64],
    beta: usize,
    name: &str,
) -> Result<(), TestCaseError> {
    prop_assert!(h.validate().is_ok(), "{name}: {:?}", h.validate());
    prop_assert_eq!(
        h.bucket_count(),
        beta.min(data.len()),
        "{} bucket count",
        name
    );
    // Bucket stats are consistent with the data.
    for b in h.buckets() {
        let slice = &data[b.lo..=b.hi];
        prop_assert_eq!(b.sum, slice.iter().sum::<u64>(), "{} sum", name);
        prop_assert_eq!(b.min, *slice.iter().min().unwrap(), "{} min", name);
        prop_assert_eq!(b.max, *slice.iter().max().unwrap(), "{} max", name);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn builders_produce_valid_partitions(data in arb_data(), beta in 1usize..40) {
        for b in all_builders() {
            let h = b.build(&data, beta).unwrap();
            check_partition(&h, &data, beta, b.name())?;
        }
    }

    #[test]
    fn estimates_bounded_by_bucket_min_max(data in arb_data(), beta in 1usize..20) {
        for b in all_builders() {
            let h = b.build(&data, beta).unwrap();
            for i in 0..data.len() {
                let e = h.estimate(i);
                let bucket = h.bucket_of(i);
                prop_assert!(
                    e >= bucket.min as f64 - 1e-9 && e <= bucket.max as f64 + 1e-9,
                    "{}: estimate {e} outside [{}, {}]",
                    b.name(), bucket.min, bucket.max
                );
            }
        }
    }

    #[test]
    fn exact_voptimal_sse_lower_bounds_all(data in prop::collection::vec(0u64..1000, 2..80), beta in 1usize..12) {
        let exact = VOptimal::exact().build(&data, beta).unwrap().sse(&data);
        for b in all_builders() {
            let sse = b.build(&data, beta).unwrap().sse(&data);
            prop_assert!(exact <= sse + 1e-6, "{}: exact {exact} > {sse}", b.name());
        }
    }

    #[test]
    fn more_buckets_never_hurt_exact(data in prop::collection::vec(0u64..1000, 2..60)) {
        let mut last = f64::INFINITY;
        for beta in [1usize, 2, 4, 8, 16] {
            let sse = VOptimal::exact().build(&data, beta).unwrap().sse(&data);
            prop_assert!(sse <= last + 1e-6, "sse grew from {last} to {sse} at beta {beta}");
            last = sse;
        }
    }

    #[test]
    fn full_range_estimate_equals_total(data in arb_data(), beta in 1usize..20) {
        for b in all_builders() {
            let h = b.build(&data, beta).unwrap();
            let total: u64 = data.iter().sum();
            let est = h.estimate_range(0, data.len() - 1);
            prop_assert!(
                (est - total as f64).abs() < 1e-6 * (total as f64).max(1.0) + 1e-6,
                "{}: range estimate {est} vs total {total}", b.name()
            );
        }
    }

    #[test]
    fn singleton_buckets_are_exact(data in prop::collection::vec(0u64..1000, 1..50)) {
        for b in all_builders() {
            let h = b.build(&data, data.len()).unwrap();
            for (i, &v) in data.iter().enumerate() {
                prop_assert_eq!(h.estimate(i), v as f64, "{} index {}", b.name(), i);
            }
            prop_assert!(h.sse(&data) < 1e-9);
        }
    }

    #[test]
    fn error_rate_always_bounded(e in 0.0f64..1e9, f in 0u64..1_000_000_000) {
        let r = error_rate(e, f);
        prop_assert!((-1.0..=1.0).contains(&r), "err({e},{f}) = {r}");
    }

    #[test]
    fn prefix_sums_match_direct(data in arb_data()) {
        let p = PrefixSums::new(&data);
        let n = data.len();
        // Spot-check a handful of ranges rather than all O(n²).
        for (lo, hi) in [(0, n - 1), (0, 0), (n / 2, n - 1), (n / 3, 2 * n / 3)] {
            if lo <= hi {
                let direct: u64 = data[lo..=hi].iter().sum();
                prop_assert_eq!(p.range_sum(lo, hi), direct);
            }
        }
    }

    #[test]
    fn end_biased_exact_on_heavy_hitters(data in prop::collection::vec(0u64..1000, 1..100), beta in 1usize..20) {
        let h = EndBiasedHistogram::build(&data, beta).unwrap();
        // The exact_count largest values are estimated exactly.
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.sort_by(|&a, &b| data[b].cmp(&data[a]).then(a.cmp(&b)));
        for &i in order.iter().take(h.exact_count()) {
            prop_assert_eq!(h.estimate(i), data[i] as f64);
        }
    }

    #[test]
    fn greedy_within_factor_of_exact_on_small(data in prop::collection::vec(0u64..100, 4..40), beta in 2usize..6) {
        // Greedy merging is a heuristic; sanity-bound how far off it can
        // drift on small instances (loose factor — this is a tripwire for
        // catastrophic regressions, not a quality guarantee).
        let exact = VOptimal::exact().build(&data, beta).unwrap().sse(&data);
        let greedy = VOptimal::greedy().build(&data, beta).unwrap().sse(&data);
        prop_assert!(greedy <= exact * 3.0 + 1e-6, "greedy {greedy} vs exact {exact}");
    }
}
