//! End-biased histograms: exact values for the heaviest domain points.
//!
//! An end-biased histogram (Ioannidis & Christodoulakis) stores the
//! `β − 1` highest-frequency domain values exactly and approximates every
//! other value by the average of the remainder. Unlike the bucketed
//! histograms it is *not* a contiguous range partition — it is included
//! here as an ablation point: domain ordering is irrelevant to it, so it
//! marks the accuracy attainable with `β` entries when bucket contiguity
//! is dropped.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::HistogramError;
use crate::PointEstimator;

/// End-biased histogram: `β − 1` exact singletons + one rest-average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndBiasedHistogram {
    exact: HashMap<usize, u64>,
    rest_mean: f64,
    domain_size: usize,
}

impl EndBiasedHistogram {
    /// Builds an end-biased histogram with `beta` total entries
    /// (`beta − 1` exact values + the rest-average).
    pub fn build(data: &[u64], beta: usize) -> Result<EndBiasedHistogram, HistogramError> {
        if data.is_empty() {
            return Err(HistogramError::EmptyData);
        }
        if beta == 0 {
            return Err(HistogramError::ZeroBuckets);
        }
        let singles = (beta - 1).min(data.len());
        // Indexes of the `singles` largest frequencies; ties toward lower
        // index for determinism.
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.sort_by(|&a, &b| data[b].cmp(&data[a]).then(a.cmp(&b)));
        let exact: HashMap<usize, u64> = order[..singles].iter().map(|&i| (i, data[i])).collect();
        let rest_count = data.len() - singles;
        let rest_sum: u64 = data
            .iter()
            .enumerate()
            .filter(|(i, _)| !exact.contains_key(i))
            .map(|(_, &v)| v)
            .sum();
        let rest_mean = if rest_count == 0 {
            0.0
        } else {
            rest_sum as f64 / rest_count as f64
        };
        Ok(EndBiasedHistogram {
            exact,
            rest_mean,
            domain_size: data.len(),
        })
    }

    /// Number of exactly stored values.
    pub fn exact_count(&self) -> usize {
        self.exact.len()
    }

    /// The average used for non-singleton values.
    pub fn rest_mean(&self) -> f64 {
        self.rest_mean
    }
}

impl PointEstimator for EndBiasedHistogram {
    fn estimate(&self, index: usize) -> f64 {
        assert!(index < self.domain_size, "index {index} outside domain");
        match self.exact.get(&index) {
            Some(&v) => v as f64,
            None => self.rest_mean,
        }
    }

    fn domain_size(&self) -> usize {
        self.domain_size
    }

    fn size_bytes(&self) -> usize {
        // Key + value per exact entry, plus the rest-average.
        self.exact.len() * (std::mem::size_of::<usize>() + std::mem::size_of::<u64>())
            + std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitters_are_exact() {
        let data = [1u64, 500, 2, 3, 900, 1];
        let h = EndBiasedHistogram::build(&data, 3).unwrap();
        assert_eq!(h.exact_count(), 2);
        assert_eq!(h.estimate(1), 500.0);
        assert_eq!(h.estimate(4), 900.0);
        // Rest: (1 + 2 + 3 + 1) / 4
        assert!((h.estimate(0) - 1.75).abs() < 1e-12);
        assert!((h.estimate(5) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn beta_one_is_global_average() {
        let data = [2u64, 4, 6];
        let h = EndBiasedHistogram::build(&data, 1).unwrap();
        assert_eq!(h.exact_count(), 0);
        assert!((h.estimate(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn beta_covers_everything() {
        let data = [2u64, 4, 6];
        let h = EndBiasedHistogram::build(&data, 10).unwrap();
        assert_eq!(h.exact_count(), 3);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(h.estimate(i), v as f64);
        }
        assert_eq!(h.rest_mean(), 0.0);
    }

    #[test]
    fn tie_break_prefers_lower_index() {
        let data = [5u64, 5, 5];
        let h = EndBiasedHistogram::build(&data, 2).unwrap();
        assert_eq!(h.estimate(0), 5.0);
        // 1 and 2 share the rest mean (which also equals 5 here).
        assert_eq!(h.estimate(1), 5.0);
    }

    #[test]
    fn errors() {
        assert!(EndBiasedHistogram::build(&[], 2).is_err());
        assert!(EndBiasedHistogram::build(&[1], 0).is_err());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let h = EndBiasedHistogram::build(&[1, 2], 2).unwrap();
        h.estimate(2);
    }
}
