//! End-biased histograms: exact values for the heaviest domain points.
//!
//! An end-biased histogram (Ioannidis & Christodoulakis) stores the
//! `β − 1` highest-frequency domain values exactly and approximates every
//! other value by the average of the remainder. Unlike the bucketed
//! histograms it is *not* a contiguous range partition — it is included
//! here as an ablation point: domain ordering is irrelevant to it, so it
//! marks the accuracy attainable with `β` entries when bucket contiguity
//! is dropped.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::HistogramError;
use crate::PointEstimator;

/// End-biased histogram: `β − 1` exact singletons + one rest-average.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EndBiasedHistogram {
    exact: HashMap<usize, u64>,
    rest_mean: f64,
    domain_size: usize,
}

impl EndBiasedHistogram {
    /// Builds an end-biased histogram with `beta` total entries
    /// (`beta − 1` exact values + the rest-average).
    pub fn build(data: &[u64], beta: usize) -> Result<EndBiasedHistogram, HistogramError> {
        if data.is_empty() {
            return Err(HistogramError::EmptyData);
        }
        if beta == 0 {
            return Err(HistogramError::ZeroBuckets);
        }
        let singles = (beta - 1).min(data.len());
        // Indexes of the `singles` largest frequencies; ties toward lower
        // index for determinism.
        let mut order: Vec<usize> = (0..data.len()).collect();
        order.sort_by(|&a, &b| data[b].cmp(&data[a]).then(a.cmp(&b)));
        let exact: HashMap<usize, u64> = order[..singles].iter().map(|&i| (i, data[i])).collect();
        let rest_count = data.len() - singles;
        let rest_sum: u64 = data
            .iter()
            .enumerate()
            .filter(|(i, _)| !exact.contains_key(i))
            .map(|(_, &v)| v)
            .sum();
        let rest_mean = if rest_count == 0 {
            0.0
        } else {
            rest_sum as f64 / rest_count as f64
        };
        Ok(EndBiasedHistogram {
            exact,
            rest_mean,
            domain_size: data.len(),
        })
    }

    /// Builds from sparse `(index, frequency)` runs with implicit zeros,
    /// matching [`EndBiasedHistogram::build`] on the dense sequence
    /// exactly: the dense tie-break (higher frequency first, then lower
    /// index) puts every implicit zero after every entry, ordered by
    /// index — so zero singletons, when the budget reaches them, are the
    /// smallest non-entry indexes. O(nnz log nnz + β).
    pub fn build_sparse(
        data: &crate::sparse::SparseFrequencies<'_>,
        beta: usize,
    ) -> Result<EndBiasedHistogram, HistogramError> {
        if data.domain_size() == 0 {
            return Err(HistogramError::EmptyData);
        }
        if beta == 0 {
            return Err(HistogramError::ZeroBuckets);
        }
        let n = data.domain_size();
        let singles = ((beta - 1) as u64).min(n);
        let mut order: Vec<(u64, u64)> = data.cursor().collect();
        order.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        let from_entries = (order.len() as u64).min(singles);
        let mut exact: HashMap<usize, u64> = order[..from_entries as usize]
            .iter()
            .map(|&(index, frequency)| (index as usize, frequency))
            .collect();
        // Remaining budget stores zeros at the smallest non-entry indexes.
        let zero_budget = (singles - from_entries) as usize;
        let occupied = data.cursor().map(|(index, _)| index);
        for position in crate::sparse::absent_indexes(occupied, n).take(zero_budget) {
            exact.insert(position as usize, 0);
        }
        debug_assert_eq!(exact.len() as u64, singles, "budget exceeds zero count");
        let rest_count = n - singles;
        let exact_sum: u64 = exact.values().sum();
        let rest_mean = if rest_count == 0 {
            0.0
        } else {
            (data.total() - exact_sum) as f64 / rest_count as f64
        };
        Ok(EndBiasedHistogram {
            exact,
            rest_mean,
            domain_size: n as usize,
        })
    }

    /// Number of exactly stored values.
    pub fn exact_count(&self) -> usize {
        self.exact.len()
    }

    /// The average used for non-singleton values.
    pub fn rest_mean(&self) -> f64 {
        self.rest_mean
    }
}

impl PointEstimator for EndBiasedHistogram {
    fn estimate(&self, index: usize) -> f64 {
        assert!(index < self.domain_size, "index {index} outside domain");
        match self.exact.get(&index) {
            Some(&v) => v as f64,
            None => self.rest_mean,
        }
    }

    fn domain_size(&self) -> usize {
        self.domain_size
    }

    fn size_bytes(&self) -> usize {
        // Key + value per exact entry, plus the rest-average.
        self.exact.len() * (std::mem::size_of::<usize>() + std::mem::size_of::<u64>())
            + std::mem::size_of::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heavy_hitters_are_exact() {
        let data = [1u64, 500, 2, 3, 900, 1];
        let h = EndBiasedHistogram::build(&data, 3).unwrap();
        assert_eq!(h.exact_count(), 2);
        assert_eq!(h.estimate(1), 500.0);
        assert_eq!(h.estimate(4), 900.0);
        // Rest: (1 + 2 + 3 + 1) / 4
        assert!((h.estimate(0) - 1.75).abs() < 1e-12);
        assert!((h.estimate(5) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn beta_one_is_global_average() {
        let data = [2u64, 4, 6];
        let h = EndBiasedHistogram::build(&data, 1).unwrap();
        assert_eq!(h.exact_count(), 0);
        assert!((h.estimate(0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn beta_covers_everything() {
        let data = [2u64, 4, 6];
        let h = EndBiasedHistogram::build(&data, 10).unwrap();
        assert_eq!(h.exact_count(), 3);
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(h.estimate(i), v as f64);
        }
        assert_eq!(h.rest_mean(), 0.0);
    }

    #[test]
    fn tie_break_prefers_lower_index() {
        let data = [5u64, 5, 5];
        let h = EndBiasedHistogram::build(&data, 2).unwrap();
        assert_eq!(h.estimate(0), 5.0);
        // 1 and 2 share the rest mean (which also equals 5 here).
        assert_eq!(h.estimate(1), 5.0);
    }

    #[test]
    fn errors() {
        assert!(EndBiasedHistogram::build(&[], 2).is_err());
        assert!(EndBiasedHistogram::build(&[1], 0).is_err());
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        let h = EndBiasedHistogram::build(&[1, 2], 2).unwrap();
        h.estimate(2);
    }

    #[test]
    fn sparse_build_matches_dense() {
        use crate::sparse::SparseFrequencies;
        let cases: &[&[u64]] = &[
            &[1, 500, 2, 3, 900, 1],
            &[0, 0, 7, 0, 0, 0, 7, 9],
            &[0, 0, 0],
            &[5],
        ];
        for dense in cases {
            let entries = SparseFrequencies::collect_from_dense(dense);
            let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
            for beta in [1usize, 2, 3, 10] {
                let d = EndBiasedHistogram::build(dense, beta).unwrap();
                let sp = EndBiasedHistogram::build_sparse(&s, beta).unwrap();
                assert_eq!(d.exact_count(), sp.exact_count(), "{dense:?} β={beta}");
                assert_eq!(d.rest_mean().to_bits(), sp.rest_mean().to_bits());
                for i in 0..dense.len() {
                    assert_eq!(d.estimate(i), sp.estimate(i), "{dense:?} β={beta} i={i}");
                }
            }
        }
    }

    #[test]
    fn sparse_build_on_huge_domain() {
        use crate::sparse::SparseFrequencies;
        let entries = [(3u64, 40u64), ((1 << 40) - 1, 7)];
        let s = SparseFrequencies::new(&entries, 1 << 40).unwrap();
        let h = EndBiasedHistogram::build_sparse(&s, 3).unwrap();
        assert_eq!(h.estimate(3), 40.0);
        assert_eq!(h.estimate((1 << 40) - 1), 7.0);
        assert_eq!(h.estimate(100), 0.0);
    }
}
