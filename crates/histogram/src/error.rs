//! Error type for histogram construction.

use std::fmt;

/// Errors produced while building a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HistogramError {
    /// The input frequency sequence was empty.
    EmptyData,
    /// A bucket budget of zero was requested.
    ZeroBuckets,
    /// The exact V-optimal dynamic program was asked for a domain too large
    /// to be practical; carries the domain size and the configured limit.
    ExactTooLarge {
        /// Requested domain size.
        domain: usize,
        /// The configured maximum.
        limit: usize,
    },
    /// A sparse build needed to materialize (or enumerate) the full dense
    /// domain and the domain exceeds the materialization limit.
    DomainTooLarge {
        /// The (implicit-zeros) domain size.
        domain: u64,
        /// The configured materialization limit.
        limit: u64,
    },
    /// The sparse `(index, frequency)` runs violated an invariant
    /// (unsorted, duplicate, or out-of-domain indexes).
    InvalidSparseRuns(String),
}

impl fmt::Display for HistogramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HistogramError::EmptyData => write!(f, "cannot build a histogram over empty data"),
            HistogramError::ZeroBuckets => write!(f, "bucket budget must be at least 1"),
            HistogramError::ExactTooLarge { domain, limit } => write!(
                f,
                "exact V-optimal DP over {domain} values exceeds the {limit}-value limit; \
                 use VOptimalMode::GreedyMerge"
            ),
            HistogramError::DomainTooLarge { domain, limit } => write!(
                f,
                "domain of {domain} values exceeds the {limit}-value dense materialization \
                 limit; use a sparse-native builder"
            ),
            HistogramError::InvalidSparseRuns(msg) => {
                write!(f, "invalid sparse frequency runs: {msg}")
            }
        }
    }
}

impl std::error::Error for HistogramError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(HistogramError::EmptyData.to_string().contains("empty"));
        assert!(HistogramError::ZeroBuckets
            .to_string()
            .contains("at least 1"));
        let e = HistogramError::ExactTooLarge {
            domain: 100000,
            limit: 4096,
        };
        assert!(e.to_string().contains("100000"));
        assert!(e.to_string().contains("GreedyMerge"));
    }
}
