//! Estimation accuracy metrics, including the paper's error rate.

use serde::{Deserialize, Serialize};

/// The paper's error metric (Formula 6):
///
/// ```text
/// err(ℓ) = 0                              if e(ℓ) = f(ℓ)
///        = (e(ℓ) − f(ℓ)) / max(e(ℓ), f(ℓ)) otherwise
/// ```
///
/// Signed and bounded in `[−1, 1]`: negative for underestimates, positive
/// for overestimates. `e = f = 0` yields 0 (the first branch), so
/// zero-selectivity paths estimated as zero are perfect, and a
/// zero-estimate of a non-zero truth saturates at −1.
pub fn error_rate(estimate: f64, truth: u64) -> f64 {
    let f = truth as f64;
    if estimate == f {
        0.0
    } else {
        (estimate - f) / estimate.max(f)
    }
}

/// Mean of `|err(ℓ)|` over a domain — the y-axis of the paper's Figure 2.
pub fn mean_abs_error_rate(estimates: &[f64], truths: &[u64]) -> f64 {
    assert_eq!(estimates.len(), truths.len());
    if estimates.is_empty() {
        return 0.0;
    }
    let total: f64 = estimates
        .iter()
        .zip(truths)
        .map(|(&e, &f)| error_rate(e, f).abs())
        .sum();
    total / estimates.len() as f64
}

/// The q-error of one estimate: `max(e/f, f/e)` with both sides clamped to
/// at least 1 (so q-error ≥ 1, and exact estimates score exactly 1).
/// Standard in the cardinality-estimation literature.
pub fn q_error(estimate: f64, truth: u64) -> f64 {
    let e = estimate.max(1.0);
    let f = (truth as f64).max(1.0);
    (e / f).max(f / e)
}

/// Aggregate accuracy over a whole domain.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Mean absolute error rate (Figure 2 metric).
    pub mean_abs_error_rate: f64,
    /// Mean signed error rate (bias; negative ⇒ systematic underestimation).
    pub mean_signed_error_rate: f64,
    /// Largest absolute error rate observed.
    pub max_abs_error_rate: f64,
    /// Root-mean-square error in absolute frequency units.
    pub rmse: f64,
    /// Median q-error.
    pub median_q_error: f64,
    /// 95th-percentile q-error.
    pub p95_q_error: f64,
    /// Number of evaluated paths.
    pub count: usize,
}

impl AccuracyReport {
    /// Evaluates estimates against ground truth.
    ///
    /// # Panics
    /// Panics if the slices differ in length or are empty.
    pub fn evaluate(estimates: &[f64], truths: &[u64]) -> AccuracyReport {
        assert_eq!(estimates.len(), truths.len());
        assert!(!estimates.is_empty(), "cannot evaluate zero estimates");
        let n = estimates.len();
        let mut abs_sum = 0.0;
        let mut signed_sum = 0.0;
        let mut max_abs: f64 = 0.0;
        let mut sq_sum = 0.0;
        let mut q_errors: Vec<f64> = Vec::with_capacity(n);
        for (&e, &f) in estimates.iter().zip(truths) {
            let err = error_rate(e, f);
            abs_sum += err.abs();
            signed_sum += err;
            max_abs = max_abs.max(err.abs());
            sq_sum += (e - f as f64).powi(2);
            q_errors.push(q_error(e, f));
        }
        q_errors.sort_by(f64::total_cmp);
        AccuracyReport {
            mean_abs_error_rate: abs_sum / n as f64,
            mean_signed_error_rate: signed_sum / n as f64,
            max_abs_error_rate: max_abs,
            rmse: (sq_sum / n as f64).sqrt(),
            median_q_error: percentile(&q_errors, 0.5),
            p95_q_error: percentile(&q_errors, 0.95),
            count: n,
        }
    }
}

/// Nearest-rank percentile of a sorted sample (`p` in `[0, 1]`).
fn percentile(sorted: &[f64], p: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rate_matches_formula6() {
        assert_eq!(error_rate(10.0, 10), 0.0);
        assert_eq!(error_rate(0.0, 0), 0.0);
        // Overestimate: (20 - 10) / 20 = 0.5.
        assert!((error_rate(20.0, 10) - 0.5).abs() < 1e-12);
        // Underestimate: (10 - 20) / 20 = -0.5.
        assert!((error_rate(10.0, 20) + 0.5).abs() < 1e-12);
        // Zero estimate of non-zero truth saturates at -1.
        assert_eq!(error_rate(0.0, 7), -1.0);
        // Non-zero estimate of zero truth saturates at +1.
        assert_eq!(error_rate(3.0, 0), 1.0);
    }

    #[test]
    fn error_rate_bounded() {
        for (e, f) in [(1e9, 1u64), (0.001, 1_000_000u64), (5.0, 5u64)] {
            let r = error_rate(e, f);
            assert!((-1.0..=1.0).contains(&r), "err({e},{f}) = {r}");
        }
    }

    #[test]
    fn mean_abs_error_rate_averages() {
        let est = [10.0, 20.0, 0.0];
        let truth = [10u64, 10, 5];
        // errors: 0, 0.5, 1.0 -> mean 0.5.
        assert!((mean_abs_error_rate(&est, &truth) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn q_error_basics() {
        assert_eq!(q_error(10.0, 10), 1.0);
        assert_eq!(q_error(20.0, 10), 2.0);
        assert_eq!(q_error(5.0, 10), 2.0);
        // Zeros clamp to 1.
        assert_eq!(q_error(0.0, 0), 1.0);
        assert_eq!(q_error(0.0, 8), 8.0);
    }

    #[test]
    fn report_perfect_estimates() {
        let truths = [4u64, 0, 9];
        let est: Vec<f64> = truths.iter().map(|&t| t as f64).collect();
        let r = AccuracyReport::evaluate(&est, &truths);
        assert_eq!(r.mean_abs_error_rate, 0.0);
        assert_eq!(r.rmse, 0.0);
        assert_eq!(r.median_q_error, 1.0);
        assert_eq!(r.p95_q_error, 1.0);
        assert_eq!(r.count, 3);
    }

    #[test]
    fn report_detects_bias() {
        let truths = [10u64, 10, 10];
        let est = [5.0, 5.0, 5.0];
        let r = AccuracyReport::evaluate(&est, &truths);
        assert!(
            r.mean_signed_error_rate < 0.0,
            "should report underestimation"
        );
        assert!((r.rmse - 5.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_nearest_rank() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.5), 2.0);
        assert_eq!(percentile(&s, 0.95), 4.0);
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
    }
}
