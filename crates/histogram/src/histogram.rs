//! The bucketed histogram and its estimation queries.

use serde::{Deserialize, Serialize};

use crate::bucket::Bucket;
use crate::PointEstimator;

/// A histogram: a partition of the domain `[0, N)` into contiguous buckets.
///
/// Invariants (checked by [`Histogram::validate`] and enforced by all
/// builders in this crate): buckets are sorted, adjacent, and cover the
/// domain exactly — `buckets[0].lo == 0`,
/// `buckets[i+1].lo == buckets[i].hi + 1`, and the last bucket ends at
/// `N − 1`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    buckets: Vec<Bucket>,
    domain_size: usize,
    /// Cached first-index array for O(log β) point lookups:
    /// `starts[i] == buckets[i].lo`.
    starts: Vec<usize>,
}

impl Histogram {
    /// Assembles a histogram from buckets produced by a builder.
    ///
    /// # Panics
    /// Panics if the buckets do not form a partition of `[0, domain_size)`.
    pub fn from_buckets(buckets: Vec<Bucket>, domain_size: usize) -> Histogram {
        let starts = buckets.iter().map(|b| b.lo).collect();
        let h = Histogram {
            buckets,
            domain_size,
            starts,
        };
        h.validate().expect("builder produced invalid buckets");
        h
    }

    /// Checks the partition invariants, returning a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.domain_size == 0 {
            return if self.buckets.is_empty() {
                Ok(())
            } else {
                Err("empty domain must have no buckets".into())
            };
        }
        if self.buckets.is_empty() {
            return Err("non-empty domain with no buckets".into());
        }
        if self.buckets[0].lo != 0 {
            return Err(format!("first bucket starts at {}", self.buckets[0].lo));
        }
        for w in self.buckets.windows(2) {
            if w[1].lo != w[0].hi + 1 {
                return Err(format!(
                    "gap/overlap between buckets ending {} and starting {}",
                    w[0].hi, w[1].lo
                ));
            }
        }
        let last = self.buckets.last().expect("non-empty");
        if last.hi != self.domain_size - 1 {
            return Err(format!(
                "last bucket ends at {} but domain size is {}",
                last.hi, self.domain_size
            ));
        }
        Ok(())
    }

    /// Number of buckets β.
    #[inline]
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The buckets, sorted by domain position.
    #[inline]
    pub fn buckets(&self) -> &[Bucket] {
        &self.buckets
    }

    /// The bucket containing domain index `i` (binary search, O(log β)).
    ///
    /// # Panics
    /// Panics if `i` is outside the domain.
    #[inline]
    pub fn bucket_of(&self, index: usize) -> &Bucket {
        assert!(index < self.domain_size, "index {index} outside domain");
        let pos = self.starts.partition_point(|&s| s <= index) - 1;
        &self.buckets[pos]
    }

    /// Estimated total frequency over the index range `[lo, hi]`,
    /// pro-rating partially covered buckets (continuous-values assumption).
    pub fn estimate_range(&self, lo: usize, hi: usize) -> f64 {
        assert!(lo <= hi && hi < self.domain_size, "bad range [{lo},{hi}]");
        let mut total = 0.0;
        let first = self.starts.partition_point(|&s| s <= lo) - 1;
        for b in &self.buckets[first..] {
            if b.lo > hi {
                break;
            }
            let olo = b.lo.max(lo);
            let ohi = b.hi.min(hi);
            let overlap = (ohi - olo + 1) as f64;
            total += b.mean() * overlap;
        }
        total
    }

    /// Sum of squared errors of the approximation against `data` — the
    /// quantity V-optimal construction minimizes.
    pub fn sse(&self, data: &[u64]) -> f64 {
        assert_eq!(data.len(), self.domain_size);
        let mut total = 0.0;
        for b in &self.buckets {
            let mean = b.mean();
            for &v in &data[b.lo..=b.hi] {
                total += (v as f64 - mean).powi(2);
            }
        }
        total
    }

    /// Total stored frequency mass.
    pub fn total_sum(&self) -> u64 {
        self.buckets.iter().map(|b| b.sum).sum()
    }
}

impl PointEstimator for Histogram {
    #[inline]
    fn estimate(&self, index: usize) -> f64 {
        self.bucket_of(index).mean()
    }

    fn domain_size(&self) -> usize {
        self.domain_size
    }

    fn size_bytes(&self) -> usize {
        self.buckets.len() * std::mem::size_of::<Bucket>()
            + self.starts.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EquiWidth, HistogramBuilder};

    fn sample() -> Histogram {
        // data: [1,1,1,1, 100,100,100, 5,5,5]
        let data = [1u64, 1, 1, 1, 100, 100, 100, 5, 5, 5];
        Histogram::from_buckets(
            vec![
                Bucket::from_range(&data, 0, 3),
                Bucket::from_range(&data, 4, 6),
                Bucket::from_range(&data, 7, 9),
            ],
            data.len(),
        )
    }

    #[test]
    fn point_estimates_are_bucket_means() {
        let h = sample();
        assert_eq!(h.estimate(0), 1.0);
        assert_eq!(h.estimate(3), 1.0);
        assert_eq!(h.estimate(4), 100.0);
        assert_eq!(h.estimate(9), 5.0);
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_panics() {
        sample().estimate(10);
    }

    #[test]
    fn range_estimate_pro_rates() {
        let h = sample();
        // [2..=5]: 2 values from bucket 0 (mean 1) + 2 from bucket 1 (mean 100).
        let e = h.estimate_range(2, 5);
        assert!((e - (2.0 + 200.0)).abs() < 1e-9);
        // Full domain equals the total mass.
        let full = h.estimate_range(0, 9);
        assert!((full - h.total_sum() as f64).abs() < 1e-9);
    }

    #[test]
    fn sse_zero_for_perfect_buckets() {
        let h = sample();
        let data = [1u64, 1, 1, 1, 100, 100, 100, 5, 5, 5];
        assert!(h.sse(&data) < 1e-9);
    }

    #[test]
    fn validate_detects_gap() {
        let data = [1u64, 2, 3, 4];
        let h = Histogram {
            buckets: vec![
                Bucket::from_range(&data, 0, 1),
                Bucket::from_range(&data, 3, 3),
            ],
            domain_size: 4,
            starts: vec![0, 3],
        };
        assert!(h.validate().is_err());
    }

    #[test]
    fn validate_detects_short_coverage() {
        let data = [1u64, 2, 3, 4];
        let h = Histogram {
            buckets: vec![Bucket::from_range(&data, 0, 2)],
            domain_size: 4,
            starts: vec![0],
        };
        assert!(h.validate().is_err());
    }

    #[test]
    fn serde_round_trip() {
        let h = sample();
        let json = serde_json_round_trip(&h);
        assert_eq!(json.bucket_count(), h.bucket_count());
        assert_eq!(json.estimate(4), h.estimate(4));
    }

    // Minimal serde check without pulling serde_json into this crate:
    // use the builder to rebuild from parts instead.
    fn serde_json_round_trip(h: &Histogram) -> Histogram {
        Histogram::from_buckets(h.buckets().to_vec(), h.domain_size)
    }

    #[test]
    fn size_bytes_scales_with_beta() {
        let data: Vec<u64> = (0..100).collect();
        let h4 = EquiWidth.build(&data, 4).unwrap();
        let h32 = EquiWidth.build(&data, 32).unwrap();
        assert!(h32.size_bytes() > h4.size_bytes());
    }
}
