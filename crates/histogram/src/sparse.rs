//! Sparse frequency sequences: `(index, frequency)` runs with implicit
//! zeros.
//!
//! A sparse-first build pipeline hands histogram builders the non-zero
//! frequencies only — sorted by domain index — so a domain dominated by
//! zero-selectivity paths costs O(nnz) instead of O(N). The builders in
//! this crate consume [`SparseFrequencies`] through
//! [`crate::builder::HistogramBuilder::build_sparse`]; the sparse-native
//! implementations produce **identical bucket boundaries** to their dense
//! counterparts (guaranteed whenever the squared-frequency prefix sums are
//! exactly representable in `f64`, i.e. `Σ f² < 2⁵³` — the same regime in
//! which the dense V-optimal cost model itself is exact).
//!
//! [`SparsePrefix`] is the sparse analogue of [`crate::prefix::PrefixSums`]:
//! it accumulates the *same* `f64` square-sum sequence the dense prefix
//! would (zeros add exactly `0.0`), so range sums, square sums, and SSE
//! values are bit-identical to the dense computation.

use crate::bucket::Bucket;
use crate::error::HistogramError;

/// The largest domain a sparse build may materialize (or enumerate
/// per-index) when a builder has no sparse-native path. 2²⁶ values ⇒ a
/// 512 MiB dense vector — beyond that, materializing defeats the point.
pub const DENSE_MATERIALIZE_LIMIT: u64 = 1 << 26;

/// A sparse frequency sequence over the domain `[0, domain_size)`:
/// strictly increasing indexes with non-zero frequencies; every index not
/// listed has frequency 0.
#[derive(Debug, Clone, Copy)]
pub struct SparseFrequencies<'a> {
    entries: &'a [(u64, u64)],
    domain_size: u64,
}

impl<'a> SparseFrequencies<'a> {
    /// Wraps validated runs.
    ///
    /// # Errors
    /// [`HistogramError::InvalidSparseRuns`] when indexes are unsorted,
    /// duplicated, or outside the domain, or a listed frequency is zero
    /// (zeros must stay implicit so `nnz` is meaningful).
    pub fn new(
        entries: &'a [(u64, u64)],
        domain_size: u64,
    ) -> Result<SparseFrequencies<'a>, HistogramError> {
        if let Some(w) = entries.windows(2).find(|w| w[0].0 >= w[1].0) {
            return Err(HistogramError::InvalidSparseRuns(format!(
                "indexes not strictly increasing at {} .. {}",
                w[0].0, w[1].0
            )));
        }
        if let Some(&(index, _)) = entries.last().filter(|&&(index, _)| index >= domain_size) {
            return Err(HistogramError::InvalidSparseRuns(format!(
                "index {index} outside domain of {domain_size}"
            )));
        }
        if let Some(&(index, _)) = entries.iter().find(|&&(_, frequency)| frequency == 0) {
            return Err(HistogramError::InvalidSparseRuns(format!(
                "explicit zero frequency at index {index}"
            )));
        }
        Ok(SparseFrequencies {
            entries,
            domain_size,
        })
    }

    /// The non-zero `(index, frequency)` entries, sorted by index.
    #[inline]
    pub fn entries(&self) -> &'a [(u64, u64)] {
        self.entries
    }

    /// The logical domain size (zeros included).
    #[inline]
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Total frequency mass.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, frequency)| frequency).sum()
    }

    /// Materializes the dense sequence.
    ///
    /// # Errors
    /// [`HistogramError::DomainTooLarge`] past [`DENSE_MATERIALIZE_LIMIT`].
    pub fn materialize(&self) -> Result<Vec<u64>, HistogramError> {
        if self.domain_size > DENSE_MATERIALIZE_LIMIT {
            return Err(HistogramError::DomainTooLarge {
                domain: self.domain_size,
                limit: DENSE_MATERIALIZE_LIMIT,
            });
        }
        let mut dense = vec![0u64; self.domain_size as usize];
        for &(index, frequency) in self.entries {
            dense[index as usize] = frequency;
        }
        Ok(dense)
    }

    /// Borrows a sparse view of a dense sequence (zeros dropped) — the
    /// test oracle direction.
    pub fn collect_from_dense(data: &[u64]) -> Vec<(u64, u64)> {
        data.iter()
            .enumerate()
            .filter(|(_, &frequency)| frequency > 0)
            .map(|(index, &frequency)| (index as u64, frequency))
            .collect()
    }

    /// The maximal equal-value runs of the dense sequence, as inclusive
    /// `(lo, hi)` ranges in index order. Gaps between entries are zero
    /// runs; adjacent entries with equal frequencies fuse. This is the
    /// starting segmentation for the sparse greedy V-optimal builder.
    pub fn equal_value_runs(&self) -> Vec<(u64, u64)> {
        let mut runs: Vec<(u64, u64, u64)> = Vec::with_capacity(2 * self.entries.len() + 1);
        let mut pos = 0u64;
        for &(index, frequency) in self.entries {
            if pos < index {
                runs.push((pos, index - 1, 0));
            }
            match runs.last_mut() {
                Some(last) if last.1 + 1 == index && last.2 == frequency => last.1 = index,
                _ => runs.push((index, index, frequency)),
            }
            pos = index + 1;
        }
        if pos < self.domain_size {
            runs.push((pos, self.domain_size - 1, 0));
        }
        runs.into_iter().map(|(lo, hi, _)| (lo, hi)).collect()
    }
}

/// Iterates the indexes of `[0, domain_size)` **absent** from `occupied`
/// (a sorted, strictly increasing index sequence), ascending.
///
/// This is the "walk the implicit zeros" primitive shared by the
/// sparse-native builders: end-biased zero singletons, max-diff zero-diff
/// boundary fill, and the ideal ordering's zero plateau all need the
/// smallest non-occupied indexes without materializing the domain.
pub fn absent_indexes<I>(occupied: I, domain_size: u64) -> impl Iterator<Item = u64>
where
    I: IntoIterator<Item = u64>,
{
    let mut next_occupied = occupied.into_iter().peekable();
    (0..domain_size).filter(move |&position| {
        if next_occupied.peek() == Some(&position) {
            next_occupied.next();
            false
        } else {
            true
        }
    })
}

/// Sparse prefix sums: exact `u64` range sums and the *same* `f64`
/// square-sum accumulation order as [`crate::prefix::PrefixSums`], so SSE
/// values match the dense computation bit for bit (zeros contribute an
/// exact `+0.0`).
#[derive(Debug)]
pub struct SparsePrefix {
    /// Entry indexes, for rank queries.
    indexes: Vec<u64>,
    /// `sum[j]` = Σ frequency of the first `j` entries.
    sum: Vec<u64>,
    /// `sq[j]` = Σ frequency² of the first `j` entries, accumulated in
    /// entry order exactly as the dense prefix would.
    sq: Vec<f64>,
}

impl SparsePrefix {
    /// Builds the prefix structure in one pass over the entries.
    pub fn new(data: &SparseFrequencies<'_>) -> SparsePrefix {
        let entries = data.entries();
        let mut indexes = Vec::with_capacity(entries.len());
        let mut sum = Vec::with_capacity(entries.len() + 1);
        let mut sq = Vec::with_capacity(entries.len() + 1);
        sum.push(0);
        sq.push(0.0);
        let mut s = 0u64;
        let mut q = 0.0f64;
        for &(index, frequency) in entries {
            indexes.push(index);
            s = s
                .checked_add(frequency)
                .expect("frequency sum overflows u64 — domain too heavy");
            q += (frequency as f64) * (frequency as f64);
            sum.push(s);
            sq.push(q);
        }
        SparsePrefix { indexes, sum, sq }
    }

    /// Number of entries with index strictly below `position`.
    #[inline]
    pub fn rank(&self, position: u64) -> usize {
        self.indexes.partition_point(|&index| index < position)
    }

    /// Sum of frequencies over the inclusive index range `[lo, hi]`.
    #[inline]
    pub fn range_sum(&self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.sum[self.rank(hi + 1)] - self.sum[self.rank(lo)]
    }

    /// Sum of squared frequencies over `[lo, hi]`, bit-identical to the
    /// dense prefix difference.
    #[inline]
    pub fn range_sq(&self, lo: u64, hi: u64) -> f64 {
        debug_assert!(lo <= hi);
        self.sq[self.rank(hi + 1)] - self.sq[self.rank(lo)]
    }

    /// Number of non-zero entries inside `[lo, hi]`.
    #[inline]
    pub fn nnz_in_range(&self, lo: u64, hi: u64) -> usize {
        self.rank(hi + 1) - self.rank(lo)
    }

    /// SSE of `[lo, hi]` around its mean — the same expression (and the
    /// same zero clamp) as [`crate::prefix::PrefixSums::range_sse`].
    #[inline]
    pub fn range_sse(&self, lo: u64, hi: u64) -> f64 {
        let n = (hi - lo + 1) as f64;
        let s = self.range_sum(lo, hi) as f64;
        let q = self.range_sq(lo, hi);
        (q - s * s / n).max(0.0)
    }

    /// [`SparsePrefix::range_sse`] with the two entry ranks supplied by
    /// the caller instead of binary-searched: `rank_lo = rank(lo)`,
    /// `rank_hi = rank(hi + 1)` (asserted in debug builds). Same
    /// subtractions on the same prefix elements ⇒ bit-identical values —
    /// this is the lookup-free variant for callers that track entry ranks
    /// incrementally, like the greedy V-optimal heap replay, where the
    /// per-call binary searches otherwise dominate.
    #[inline]
    pub fn range_sse_at(&self, lo: u64, hi: u64, rank_lo: usize, rank_hi: usize) -> f64 {
        debug_assert_eq!(rank_lo, self.rank(lo));
        debug_assert_eq!(rank_hi, self.rank(hi + 1));
        let n = (hi - lo + 1) as f64;
        let s = (self.sum[rank_hi] - self.sum[rank_lo]) as f64;
        let q = self.sq[rank_hi] - self.sq[rank_lo];
        (q - s * s / n).max(0.0)
    }

    /// Builds the [`Bucket`] covering `[lo, hi]`, with min/max accounting
    /// for implicit zeros.
    pub fn bucket(&self, entries: &[(u64, u64)], lo: u64, hi: u64) -> Bucket {
        let first = self.rank(lo);
        let last = self.rank(hi + 1);
        let inside = &entries[first..last];
        let count = hi - lo + 1;
        let sum = self.sum[last] - self.sum[first];
        let has_zero = (inside.len() as u64) < count;
        let min = if has_zero {
            0
        } else {
            inside
                .iter()
                .map(|&(_, frequency)| frequency)
                .min()
                .unwrap_or(0)
        };
        let max = inside
            .iter()
            .map(|&(_, frequency)| frequency)
            .max()
            .unwrap_or(0);
        Bucket {
            lo: lo as usize,
            hi: hi as usize,
            sum,
            min,
            max,
        }
    }
}

/// Builds the bucket vector for sorted inclusive end indexes, the sparse
/// analogue of [`crate::builder::buckets_from_ends`].
pub(crate) fn buckets_from_ends_sparse(
    data: &SparseFrequencies<'_>,
    prefix: &SparsePrefix,
    ends: &[u64],
) -> Vec<Bucket> {
    debug_assert_eq!(
        *ends.last().expect("at least one bucket"),
        data.domain_size() - 1
    );
    let mut buckets = Vec::with_capacity(ends.len());
    let mut lo = 0u64;
    for &hi in ends {
        buckets.push(prefix.bucket(data.entries(), lo, hi));
        lo = hi + 1;
    }
    buckets
}

/// Sparse analogue of [`crate::builder::check_inputs`]: normalizes the
/// bucket budget and refuses shapes a sparse build cannot honour without
/// densifying.
pub(crate) fn check_inputs_sparse(
    data: &SparseFrequencies<'_>,
    beta: usize,
) -> Result<usize, HistogramError> {
    if data.domain_size() == 0 {
        return Err(HistogramError::EmptyData);
    }
    if beta == 0 {
        return Err(HistogramError::ZeroBuckets);
    }
    let beta = (beta as u64).min(data.domain_size());
    // β buckets materialize β `Bucket` values regardless of representation:
    // a budget past the materialization limit is a dense-sized output and
    // gets the dense-sized refusal.
    if beta > DENSE_MATERIALIZE_LIMIT {
        return Err(HistogramError::DomainTooLarge {
            domain: data.domain_size(),
            limit: DENSE_MATERIALIZE_LIMIT,
        });
    }
    Ok(beta as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::PrefixSums;

    fn sparse_of(dense: &[u64]) -> Vec<(u64, u64)> {
        SparseFrequencies::collect_from_dense(dense)
    }

    #[test]
    fn validation_rejects_bad_runs() {
        assert!(SparseFrequencies::new(&[(3, 1), (2, 1)], 10).is_err());
        assert!(SparseFrequencies::new(&[(2, 1), (2, 1)], 10).is_err());
        assert!(SparseFrequencies::new(&[(12, 1)], 10).is_err());
        assert!(SparseFrequencies::new(&[(1, 0)], 10).is_err());
        assert!(SparseFrequencies::new(&[(1, 5), (9, 1)], 10).is_ok());
    }

    #[test]
    fn materialize_round_trips() {
        let dense = [0u64, 5, 0, 0, 7, 1, 0];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
        assert_eq!(s.materialize().unwrap(), dense);
        assert_eq!(s.total(), 13);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn materialize_refuses_huge_domains() {
        let entries = [(0u64, 1u64)];
        let s = SparseFrequencies::new(&entries, 1 << 40).unwrap();
        assert!(matches!(
            s.materialize(),
            Err(HistogramError::DomainTooLarge { .. })
        ));
    }

    #[test]
    fn prefix_matches_dense_bitwise() {
        let dense = [3u64, 0, 0, 4, 4, 0, 9, 2, 0, 0, 0, 7];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
        let sparse = SparsePrefix::new(&s);
        let reference = PrefixSums::new(&dense);
        for lo in 0..dense.len() {
            for hi in lo..dense.len() {
                assert_eq!(
                    sparse.range_sum(lo as u64, hi as u64),
                    reference.range_sum(lo, hi)
                );
                assert_eq!(
                    sparse.range_sq(lo as u64, hi as u64).to_bits(),
                    reference.range_sq(lo, hi).to_bits(),
                    "sq differs on [{lo},{hi}]"
                );
                assert_eq!(
                    sparse.range_sse(lo as u64, hi as u64).to_bits(),
                    reference.range_sse(lo, hi).to_bits(),
                    "sse differs on [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn buckets_account_for_implicit_zeros() {
        let dense = [0u64, 5, 0, 0, 7, 1];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, 6).unwrap();
        let prefix = SparsePrefix::new(&s);
        let b = prefix.bucket(s.entries(), 0, 2);
        assert_eq!((b.sum, b.min, b.max), (5, 0, 5));
        let b = prefix.bucket(s.entries(), 4, 5);
        assert_eq!((b.sum, b.min, b.max), (8, 1, 7));
        let b = prefix.bucket(s.entries(), 2, 3);
        assert_eq!((b.sum, b.min, b.max), (0, 0, 0));
    }

    #[test]
    fn absent_indexes_walks_the_gaps() {
        let occupied = [1u64, 2, 5];
        let absent: Vec<u64> = absent_indexes(occupied.iter().copied(), 8).collect();
        assert_eq!(absent, vec![0, 3, 4, 6, 7]);
        assert_eq!(absent_indexes(std::iter::empty(), 3).count(), 3);
        assert_eq!(absent_indexes([0u64, 1].into_iter(), 2).count(), 0);
    }

    #[test]
    fn equal_value_runs_partition_the_domain() {
        let dense = [0u64, 0, 5, 5, 1, 0, 0, 2, 2, 2];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
        let runs = s.equal_value_runs();
        assert_eq!(runs, vec![(0, 1), (2, 3), (4, 4), (5, 6), (7, 9)]);
        // All-zero and empty-entry domains are one run.
        let s = SparseFrequencies::new(&[], 4).unwrap();
        assert_eq!(s.equal_value_runs(), vec![(0, 3)]);
    }
}
