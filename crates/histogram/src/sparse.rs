//! Sparse frequency sequences: `(index, frequency)` runs with implicit
//! zeros.
//!
//! A sparse-first build pipeline hands histogram builders the non-zero
//! frequencies only — sorted by domain index — so a domain dominated by
//! zero-selectivity paths costs O(nnz) instead of O(N). The builders in
//! this crate consume [`SparseFrequencies`] through
//! [`crate::builder::HistogramBuilder::build_sparse`]; the sparse-native
//! implementations produce **identical bucket boundaries** to their dense
//! counterparts (guaranteed whenever the squared-frequency prefix sums are
//! exactly representable in `f64`, i.e. `Σ f² < 2⁵³` — the same regime in
//! which the dense V-optimal cost model itself is exact).
//!
//! ## Streaming access
//!
//! [`SparseFrequencies`] does not hold a pair vector: it wraps either a
//! borrowed slice (tests, dense views) or any [`RunSource`] — a streaming
//! provider of sorted entries, e.g. a block-compressed run whose decoder
//! hands out entries without ever materializing `nnz × 16` bytes. Every
//! builder reads through [`SparseFrequencies::cursor`] in sequential
//! passes; random access happens only on the O(nnz) prefix arrays of
//! [`SparsePrefix`], which the builders need anyway.
//!
//! [`SparsePrefix`] is the sparse analogue of [`crate::prefix::PrefixSums`]:
//! it accumulates the *same* `f64` square-sum sequence the dense prefix
//! would (zeros add exactly `0.0`), so range sums, square sums, and SSE
//! values are bit-identical to the dense computation.

use crate::bucket::Bucket;
use crate::error::HistogramError;

/// The largest domain a sparse build may materialize (or enumerate
/// per-index) when a builder has no sparse-native path. 2²⁶ values ⇒ a
/// 512 MiB dense vector — beyond that, materializing defeats the point.
pub const DENSE_MATERIALIZE_LIMIT: u64 = 1 << 26;

/// A streaming provider of sorted, strictly increasing, non-zero
/// `(index, frequency)` entries — the contract between compressed run
/// storage (which lives upstream of this crate) and the histogram
/// builders. A fresh [`RunSource::cursor`] starts a new pass; builders
/// take as many passes as their algorithm needs (each is O(nnz)).
pub trait RunSource {
    /// Number of entries a cursor will yield.
    fn nnz(&self) -> usize;

    /// A fresh pass over the entries in index order.
    fn cursor(&self) -> Box<dyn Iterator<Item = (u64, u64)> + '_>;
}

/// The borrowed input behind a [`SparseFrequencies`].
#[derive(Clone, Copy)]
enum Source<'a> {
    Slice(&'a [(u64, u64)]),
    Stream(&'a dyn RunSource),
}

/// One sequential pass over a [`SparseFrequencies`]'s entries. Slice
/// inputs iterate allocation-free; streamed inputs carry their source's
/// boxed decoder (one allocation per pass, not per entry).
pub enum EntryCursor<'a> {
    /// Borrowed-slice pass.
    Slice(std::iter::Copied<std::slice::Iter<'a, (u64, u64)>>),
    /// Streamed pass from a [`RunSource`].
    Stream(Box<dyn Iterator<Item = (u64, u64)> + 'a>),
}

impl Iterator for EntryCursor<'_> {
    type Item = (u64, u64);

    #[inline]
    fn next(&mut self) -> Option<(u64, u64)> {
        match self {
            EntryCursor::Slice(iter) => iter.next(),
            EntryCursor::Stream(iter) => iter.next(),
        }
    }
}

/// A sparse frequency sequence over the domain `[0, domain_size)`:
/// strictly increasing indexes with non-zero frequencies; every index not
/// listed has frequency 0. Entries are read through
/// [`SparseFrequencies::cursor`] — there is no pair vector to borrow.
#[derive(Clone, Copy)]
pub struct SparseFrequencies<'a> {
    source: Source<'a>,
    domain_size: u64,
    nnz: usize,
    total: u64,
}

impl std::fmt::Debug for SparseFrequencies<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SparseFrequencies")
            .field("domain_size", &self.domain_size)
            .field("nnz", &self.nnz)
            .field("total", &self.total)
            .finish()
    }
}

impl<'a> SparseFrequencies<'a> {
    /// Wraps validated runs borrowed as a plain slice.
    ///
    /// # Errors
    /// [`HistogramError::InvalidSparseRuns`] when indexes are unsorted,
    /// duplicated, or outside the domain, or a listed frequency is zero
    /// (zeros must stay implicit so `nnz` is meaningful).
    pub fn new(
        entries: &'a [(u64, u64)],
        domain_size: u64,
    ) -> Result<SparseFrequencies<'a>, HistogramError> {
        Self::validate(Source::Slice(entries), domain_size)
    }

    /// Wraps a validated streaming source (e.g. a block-compressed run).
    /// Validation costs one full pass — the same O(nnz) the slice
    /// constructor pays.
    ///
    /// # Errors
    /// As for [`SparseFrequencies::new`].
    pub fn from_source(
        source: &'a dyn RunSource,
        domain_size: u64,
    ) -> Result<SparseFrequencies<'a>, HistogramError> {
        Self::validate(Source::Stream(source), domain_size)
    }

    fn validate(
        source: Source<'a>,
        domain_size: u64,
    ) -> Result<SparseFrequencies<'a>, HistogramError> {
        let mut result = SparseFrequencies {
            source,
            domain_size,
            nnz: 0,
            total: 0,
        };
        let mut previous: Option<u64> = None;
        let mut nnz = 0usize;
        let mut total = 0u64;
        for (index, frequency) in result.cursor() {
            if previous.is_some_and(|p| p >= index) {
                return Err(HistogramError::InvalidSparseRuns(format!(
                    "indexes not strictly increasing at {} .. {}",
                    previous.unwrap_or(0),
                    index
                )));
            }
            if index >= domain_size {
                return Err(HistogramError::InvalidSparseRuns(format!(
                    "index {index} outside domain of {domain_size}"
                )));
            }
            if frequency == 0 {
                return Err(HistogramError::InvalidSparseRuns(format!(
                    "explicit zero frequency at index {index}"
                )));
            }
            previous = Some(index);
            nnz += 1;
            total = total.wrapping_add(frequency);
        }
        result.nnz = nnz;
        result.total = total;
        Ok(result)
    }

    /// A fresh pass over the non-zero `(index, frequency)` entries,
    /// sorted by index.
    pub fn cursor(&self) -> EntryCursor<'a> {
        match self.source {
            Source::Slice(entries) => EntryCursor::Slice(entries.iter().copied()),
            Source::Stream(source) => EntryCursor::Stream(source.cursor()),
        }
    }

    /// The logical domain size (zeros included).
    #[inline]
    pub fn domain_size(&self) -> u64 {
        self.domain_size
    }

    /// Number of non-zero entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.nnz
    }

    /// Total frequency mass.
    #[inline]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Materializes the dense sequence.
    ///
    /// # Errors
    /// [`HistogramError::DomainTooLarge`] past [`DENSE_MATERIALIZE_LIMIT`].
    pub fn materialize(&self) -> Result<Vec<u64>, HistogramError> {
        if self.domain_size > DENSE_MATERIALIZE_LIMIT {
            return Err(HistogramError::DomainTooLarge {
                domain: self.domain_size,
                limit: DENSE_MATERIALIZE_LIMIT,
            });
        }
        let mut dense = vec![0u64; self.domain_size as usize];
        for (index, frequency) in self.cursor() {
            dense[index as usize] = frequency;
        }
        Ok(dense)
    }

    /// Borrows a sparse view of a dense sequence (zeros dropped) — the
    /// test oracle direction.
    pub fn collect_from_dense(data: &[u64]) -> Vec<(u64, u64)> {
        data.iter()
            .enumerate()
            .filter(|(_, &frequency)| frequency > 0)
            .map(|(index, &frequency)| (index as u64, frequency))
            .collect()
    }

    /// The maximal equal-value runs of the dense sequence, as inclusive
    /// `(lo, hi)` ranges in index order. Gaps between entries are zero
    /// runs; adjacent entries with equal frequencies fuse. This is the
    /// starting segmentation for the sparse greedy V-optimal builder.
    pub fn equal_value_runs(&self) -> Vec<(u64, u64)> {
        let mut runs: Vec<(u64, u64, u64)> = Vec::with_capacity(2 * self.nnz + 1);
        let mut pos = 0u64;
        for (index, frequency) in self.cursor() {
            if pos < index {
                runs.push((pos, index - 1, 0));
            }
            match runs.last_mut() {
                Some(last) if last.1 + 1 == index && last.2 == frequency => last.1 = index,
                _ => runs.push((index, index, frequency)),
            }
            pos = index + 1;
        }
        if pos < self.domain_size {
            runs.push((pos, self.domain_size - 1, 0));
        }
        runs.into_iter().map(|(lo, hi, _)| (lo, hi)).collect()
    }
}

/// Iterates the indexes of `[0, domain_size)` **absent** from `occupied`
/// (a sorted, strictly increasing index sequence), ascending.
///
/// This is the "walk the implicit zeros" primitive shared by the
/// sparse-native builders: end-biased zero singletons, max-diff zero-diff
/// boundary fill, and the ideal ordering's zero plateau all need the
/// smallest non-occupied indexes without materializing the domain.
pub fn absent_indexes<I>(occupied: I, domain_size: u64) -> impl Iterator<Item = u64>
where
    I: IntoIterator<Item = u64>,
{
    let mut next_occupied = occupied.into_iter().peekable();
    (0..domain_size).filter(move |&position| {
        if next_occupied.peek() == Some(&position) {
            next_occupied.next();
            false
        } else {
            true
        }
    })
}

/// Sparse prefix sums: exact `u64` range sums and the *same* `f64`
/// square-sum accumulation order as [`crate::prefix::PrefixSums`], so SSE
/// values match the dense computation bit for bit (zeros contribute an
/// exact `+0.0`).
///
/// This is the one place a builder gets random access: the prefix arrays
/// are O(nnz) and addressed by *entry rank*, so per-entry frequencies are
/// recovered as adjacent-sum differences — no entry slice needed.
#[derive(Debug)]
pub struct SparsePrefix {
    /// Entry indexes, for rank queries.
    indexes: Vec<u64>,
    /// `sum[j]` = Σ frequency of the first `j` entries.
    sum: Vec<u64>,
    /// `sq[j]` = Σ frequency² of the first `j` entries, accumulated in
    /// entry order exactly as the dense prefix would.
    sq: Vec<f64>,
}

impl SparsePrefix {
    /// Builds the prefix structure in one pass over the entries.
    pub fn new(data: &SparseFrequencies<'_>) -> SparsePrefix {
        let mut indexes = Vec::with_capacity(data.nnz());
        let mut sum = Vec::with_capacity(data.nnz() + 1);
        let mut sq = Vec::with_capacity(data.nnz() + 1);
        sum.push(0);
        sq.push(0.0);
        let mut s = 0u64;
        let mut q = 0.0f64;
        for (index, frequency) in data.cursor() {
            indexes.push(index);
            s = s
                .checked_add(frequency)
                .expect("frequency sum overflows u64 — domain too heavy");
            q += (frequency as f64) * (frequency as f64);
            sum.push(s);
            sq.push(q);
        }
        SparsePrefix { indexes, sum, sq }
    }

    /// Number of entries with index strictly below `position`.
    #[inline]
    pub fn rank(&self, position: u64) -> usize {
        self.indexes.partition_point(|&index| index < position)
    }

    /// The frequency of the entry at `rank` (adjacent prefix difference —
    /// exact, the prefix sums are plain `u64`).
    #[inline]
    pub fn frequency_at_rank(&self, rank: usize) -> u64 {
        self.sum[rank + 1] - self.sum[rank]
    }

    /// Sum of frequencies over the inclusive index range `[lo, hi]`.
    #[inline]
    pub fn range_sum(&self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        self.sum[self.rank(hi + 1)] - self.sum[self.rank(lo)]
    }

    /// Sum of squared frequencies over `[lo, hi]`, bit-identical to the
    /// dense prefix difference.
    #[inline]
    pub fn range_sq(&self, lo: u64, hi: u64) -> f64 {
        debug_assert!(lo <= hi);
        self.sq[self.rank(hi + 1)] - self.sq[self.rank(lo)]
    }

    /// Number of non-zero entries inside `[lo, hi]`.
    #[inline]
    pub fn nnz_in_range(&self, lo: u64, hi: u64) -> usize {
        self.rank(hi + 1) - self.rank(lo)
    }

    /// SSE of `[lo, hi]` around its mean — the same expression (and the
    /// same zero clamp) as [`crate::prefix::PrefixSums::range_sse`].
    #[inline]
    pub fn range_sse(&self, lo: u64, hi: u64) -> f64 {
        let n = (hi - lo + 1) as f64;
        let s = self.range_sum(lo, hi) as f64;
        let q = self.range_sq(lo, hi);
        (q - s * s / n).max(0.0)
    }

    /// [`SparsePrefix::range_sse`] with the two entry ranks supplied by
    /// the caller instead of binary-searched: `rank_lo = rank(lo)`,
    /// `rank_hi = rank(hi + 1)` (asserted in debug builds). Same
    /// subtractions on the same prefix elements ⇒ bit-identical values —
    /// this is the lookup-free variant for callers that track entry ranks
    /// incrementally, like the greedy V-optimal heap replay, where the
    /// per-call binary searches otherwise dominate.
    #[inline]
    pub fn range_sse_at(&self, lo: u64, hi: u64, rank_lo: usize, rank_hi: usize) -> f64 {
        debug_assert_eq!(rank_lo, self.rank(lo));
        debug_assert_eq!(rank_hi, self.rank(hi + 1));
        let n = (hi - lo + 1) as f64;
        let s = (self.sum[rank_hi] - self.sum[rank_lo]) as f64;
        let q = self.sq[rank_hi] - self.sq[rank_lo];
        (q - s * s / n).max(0.0)
    }

    /// Builds the [`Bucket`] covering `[lo, hi]`, with min/max accounting
    /// for implicit zeros. Per-entry frequencies come from the prefix
    /// array itself ([`SparsePrefix::frequency_at_rank`]), so no entry
    /// slice is involved.
    pub fn bucket(&self, lo: u64, hi: u64) -> Bucket {
        let first = self.rank(lo);
        let last = self.rank(hi + 1);
        let count = hi - lo + 1;
        let sum = self.sum[last] - self.sum[first];
        let has_zero = ((last - first) as u64) < count;
        let mut min = u64::MAX;
        let mut max = 0u64;
        for rank in first..last {
            let frequency = self.frequency_at_rank(rank);
            min = min.min(frequency);
            max = max.max(frequency);
        }
        if has_zero || first == last {
            min = 0;
        }
        Bucket {
            lo: lo as usize,
            hi: hi as usize,
            sum,
            min,
            max,
        }
    }
}

/// Builds the bucket vector for sorted inclusive end indexes, the sparse
/// analogue of [`crate::builder::buckets_from_ends`].
pub(crate) fn buckets_from_ends_sparse(
    data: &SparseFrequencies<'_>,
    prefix: &SparsePrefix,
    ends: &[u64],
) -> Vec<Bucket> {
    debug_assert_eq!(
        *ends.last().expect("at least one bucket"),
        data.domain_size() - 1
    );
    let mut buckets = Vec::with_capacity(ends.len());
    let mut lo = 0u64;
    for &hi in ends {
        buckets.push(prefix.bucket(lo, hi));
        lo = hi + 1;
    }
    buckets
}

/// Sparse analogue of [`crate::builder::check_inputs`]: normalizes the
/// bucket budget and refuses shapes a sparse build cannot honour without
/// densifying.
pub(crate) fn check_inputs_sparse(
    data: &SparseFrequencies<'_>,
    beta: usize,
) -> Result<usize, HistogramError> {
    if data.domain_size() == 0 {
        return Err(HistogramError::EmptyData);
    }
    if beta == 0 {
        return Err(HistogramError::ZeroBuckets);
    }
    let beta = (beta as u64).min(data.domain_size());
    // β buckets materialize β `Bucket` values regardless of representation:
    // a budget past the materialization limit is a dense-sized output and
    // gets the dense-sized refusal.
    if beta > DENSE_MATERIALIZE_LIMIT {
        return Err(HistogramError::DomainTooLarge {
            domain: data.domain_size(),
            limit: DENSE_MATERIALIZE_LIMIT,
        });
    }
    Ok(beta as usize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prefix::PrefixSums;

    fn sparse_of(dense: &[u64]) -> Vec<(u64, u64)> {
        SparseFrequencies::collect_from_dense(dense)
    }

    /// A minimal streamed source over a plain vector, standing in for the
    /// block-compressed decoder that lives upstream of this crate.
    struct VecSource(Vec<(u64, u64)>);

    impl RunSource for VecSource {
        fn nnz(&self) -> usize {
            self.0.len()
        }

        fn cursor(&self) -> Box<dyn Iterator<Item = (u64, u64)> + '_> {
            Box::new(self.0.iter().copied())
        }
    }

    #[test]
    fn validation_rejects_bad_runs() {
        assert!(SparseFrequencies::new(&[(3, 1), (2, 1)], 10).is_err());
        assert!(SparseFrequencies::new(&[(2, 1), (2, 1)], 10).is_err());
        assert!(SparseFrequencies::new(&[(12, 1)], 10).is_err());
        assert!(SparseFrequencies::new(&[(1, 0)], 10).is_err());
        assert!(SparseFrequencies::new(&[(1, 5), (9, 1)], 10).is_ok());
    }

    #[test]
    fn streamed_source_matches_slice() {
        let entries = vec![(1u64, 5u64), (4, 2), (9, 1)];
        let source = VecSource(entries.clone());
        let streamed = SparseFrequencies::from_source(&source, 10).unwrap();
        let sliced = SparseFrequencies::new(&entries, 10).unwrap();
        assert_eq!(streamed.nnz(), sliced.nnz());
        assert_eq!(streamed.total(), sliced.total());
        assert_eq!(
            streamed.cursor().collect::<Vec<_>>(),
            sliced.cursor().collect::<Vec<_>>()
        );
        assert_eq!(
            streamed.materialize().unwrap(),
            sliced.materialize().unwrap()
        );
        assert_eq!(streamed.equal_value_runs(), sliced.equal_value_runs());
        // Streamed sources are validated just like slices.
        let bad = VecSource(vec![(4, 2), (1, 5)]);
        assert!(SparseFrequencies::from_source(&bad, 10).is_err());
        let zero = VecSource(vec![(4, 0)]);
        assert!(SparseFrequencies::from_source(&zero, 10).is_err());
    }

    #[test]
    fn materialize_round_trips() {
        let dense = [0u64, 5, 0, 0, 7, 1, 0];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
        assert_eq!(s.materialize().unwrap(), dense);
        assert_eq!(s.total(), 13);
        assert_eq!(s.nnz(), 3);
    }

    #[test]
    fn materialize_refuses_huge_domains() {
        let entries = [(0u64, 1u64)];
        let s = SparseFrequencies::new(&entries, 1 << 40).unwrap();
        assert!(matches!(
            s.materialize(),
            Err(HistogramError::DomainTooLarge { .. })
        ));
    }

    #[test]
    fn prefix_matches_dense_bitwise() {
        let dense = [3u64, 0, 0, 4, 4, 0, 9, 2, 0, 0, 0, 7];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
        let sparse = SparsePrefix::new(&s);
        let reference = PrefixSums::new(&dense);
        for lo in 0..dense.len() {
            for hi in lo..dense.len() {
                assert_eq!(
                    sparse.range_sum(lo as u64, hi as u64),
                    reference.range_sum(lo, hi)
                );
                assert_eq!(
                    sparse.range_sq(lo as u64, hi as u64).to_bits(),
                    reference.range_sq(lo, hi).to_bits(),
                    "sq differs on [{lo},{hi}]"
                );
                assert_eq!(
                    sparse.range_sse(lo as u64, hi as u64).to_bits(),
                    reference.range_sse(lo, hi).to_bits(),
                    "sse differs on [{lo},{hi}]"
                );
            }
        }
    }

    #[test]
    fn buckets_account_for_implicit_zeros() {
        let dense = [0u64, 5, 0, 0, 7, 1];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, 6).unwrap();
        let prefix = SparsePrefix::new(&s);
        let b = prefix.bucket(0, 2);
        assert_eq!((b.sum, b.min, b.max), (5, 0, 5));
        let b = prefix.bucket(4, 5);
        assert_eq!((b.sum, b.min, b.max), (8, 1, 7));
        let b = prefix.bucket(2, 3);
        assert_eq!((b.sum, b.min, b.max), (0, 0, 0));
    }

    #[test]
    fn absent_indexes_walks_the_gaps() {
        let occupied = [1u64, 2, 5];
        let absent: Vec<u64> = absent_indexes(occupied.iter().copied(), 8).collect();
        assert_eq!(absent, vec![0, 3, 4, 6, 7]);
        assert_eq!(absent_indexes(std::iter::empty(), 3).count(), 3);
        assert_eq!(absent_indexes([0u64, 1].into_iter(), 2).count(), 0);
    }

    #[test]
    fn equal_value_runs_partition_the_domain() {
        let dense = [0u64, 0, 5, 5, 1, 0, 0, 2, 2, 2];
        let entries = sparse_of(&dense);
        let s = SparseFrequencies::new(&entries, dense.len() as u64).unwrap();
        let runs = s.equal_value_runs();
        assert_eq!(runs, vec![(0, 1), (2, 3), (4, 4), (5, 6), (7, 9)]);
        // All-zero and empty-entry domains are one run.
        let s = SparseFrequencies::new(&[], 4).unwrap();
        assert_eq!(s.equal_value_runs(), vec![(0, 3)]);
    }
}
