//! V-optimal histogram construction: minimize the total within-bucket
//! sum of squared errors (SSE), i.e. frequency variance — the histogram
//! family used throughout the paper's evaluation.
//!
//! Three modes trade optimality for construction cost:
//!
//! * [`VOptimalMode::Exact`] — the classic `O(N²β)` dynamic program
//!   (Jagadish et al., VLDB'98). Guaranteed optimal; only practical for
//!   domains up to a few thousand values, which is why it is gated by a
//!   configurable size limit.
//! * [`VOptimalMode::GreedyMerge`] — bottom-up agglomerative merging:
//!   start from singleton buckets and repeatedly merge the adjacent pair
//!   with the smallest SSE increase, `O(N log N)`. Not optimal, but close
//!   in practice (the `ablation_voptimal` binary quantifies the gap), and
//!   fast enough for the paper-scale domain of 55 986 paths.
//! * [`VOptimalMode::MaxDiff`] — place the `β − 1` boundaries at the
//!   largest adjacent differences. Cheapest, crudest.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::builder::{buckets_from_ends, check_inputs, HistogramBuilder};
use crate::error::HistogramError;
use crate::histogram::Histogram;
use crate::prefix::PrefixSums;
use crate::sparse::{
    buckets_from_ends_sparse, check_inputs_sparse, SparseFrequencies, SparsePrefix,
};

/// Construction mode for [`VOptimal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VOptimalMode {
    /// Exact dynamic programming; errors out above `limit` domain values.
    Exact {
        /// Largest domain size the DP will accept.
        limit: usize,
    },
    /// Bottom-up greedy merging (default).
    #[default]
    GreedyMerge,
    /// Max-diff boundary placement.
    MaxDiff,
}

/// V-optimal histogram builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct VOptimal {
    /// Which construction algorithm to run.
    pub mode: VOptimalMode,
}

impl VOptimal {
    /// Exact DP with the default 8192-value limit.
    pub fn exact() -> VOptimal {
        VOptimal {
            mode: VOptimalMode::Exact { limit: 8192 },
        }
    }

    /// Greedy bottom-up merging (paper-scale default).
    pub fn greedy() -> VOptimal {
        VOptimal {
            mode: VOptimalMode::GreedyMerge,
        }
    }

    /// Max-diff boundary heuristic.
    pub fn maxdiff() -> VOptimal {
        VOptimal {
            mode: VOptimalMode::MaxDiff,
        }
    }
}

impl HistogramBuilder for VOptimal {
    fn name(&self) -> &'static str {
        match self.mode {
            VOptimalMode::Exact { .. } => "v-optimal-exact",
            VOptimalMode::GreedyMerge => "v-optimal-greedy",
            VOptimalMode::MaxDiff => "v-optimal-maxdiff",
        }
    }

    fn build(&self, data: &[u64], beta: usize) -> Result<Histogram, HistogramError> {
        let beta = check_inputs(data, beta)?;
        let ends = match self.mode {
            VOptimalMode::Exact { limit } => {
                if data.len() > limit {
                    return Err(HistogramError::ExactTooLarge {
                        domain: data.len(),
                        limit,
                    });
                }
                exact_dp_ends(data, beta)
            }
            VOptimalMode::GreedyMerge => greedy_merge_ends(data, beta),
            VOptimalMode::MaxDiff => maxdiff_ends(data, beta),
        };
        Ok(Histogram::from_buckets(
            buckets_from_ends(data, &ends),
            data.len(),
        ))
    }

    /// Sparse-native construction for the greedy and max-diff modes
    /// (identical boundaries to the dense build — see the exactness
    /// argument on `greedy_merge_ends_sparse`); the exact DP keeps its
    /// hard size limit and materializes within it.
    fn build_sparse(
        &self,
        data: &SparseFrequencies<'_>,
        beta: usize,
    ) -> Result<Histogram, HistogramError> {
        let beta = check_inputs_sparse(data, beta)?;
        let n = data.domain_size();
        let ends = match self.mode {
            VOptimalMode::Exact { limit } => {
                if n > limit as u64 {
                    return Err(HistogramError::ExactTooLarge {
                        domain: n as usize,
                        limit,
                    });
                }
                // Within the DP limit the domain is tiny; densify.
                return self.build(&data.materialize()?, beta);
            }
            VOptimalMode::GreedyMerge => greedy_merge_ends_sparse(data, beta),
            VOptimalMode::MaxDiff => maxdiff_ends_sparse(data, beta),
        };
        let prefix = SparsePrefix::new(data);
        Ok(Histogram::from_buckets(
            buckets_from_ends_sparse(data, &prefix, &ends),
            n as usize,
        ))
    }
}

/// `f64` ordered by `total_cmp`, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Exact `O(N²β)` dynamic program. Returns inclusive bucket end indexes.
#[allow(clippy::needless_range_loop)] // DP recurrences read clearer with indices
fn exact_dp_ends(data: &[u64], beta: usize) -> Vec<usize> {
    let n = data.len();
    let prefix = PrefixSums::new(data);
    // dp[i] = min SSE of partitioning data[0..i] into the current number of
    // buckets; cut[j][i] = best position of the previous boundary.
    let mut prev = vec![0.0f64; n + 1];
    for i in 1..=n {
        prev[i] = prefix.range_sse(0, i - 1);
    }
    let mut cuts: Vec<Vec<u32>> = Vec::with_capacity(beta.saturating_sub(1));
    let mut cur = vec![0.0f64; n + 1];
    for j in 2..=beta {
        let mut cut_row = vec![0u32; n + 1];
        // With j buckets we need at least j values.
        for i in j..=n {
            let mut best = f64::INFINITY;
            let mut best_x = j - 1;
            // Last bucket covers x..i-1 (0-based), x ranges over [j-1, i-1].
            for x in (j - 1)..i {
                let cost = prev[x] + prefix.range_sse(x, i - 1);
                if cost < best {
                    best = cost;
                    best_x = x;
                }
            }
            cur[i] = best;
            cut_row[i] = best_x as u32;
        }
        cuts.push(cut_row);
        std::mem::swap(&mut prev, &mut cur);
    }
    // Backtrack boundaries.
    let mut ends = vec![0usize; beta];
    ends[beta - 1] = n - 1;
    let mut i = n;
    for j in (2..=beta).rev() {
        let x = cuts[j - 2][i] as usize;
        ends[j - 2] = x - 1;
        i = x;
    }
    ends
}

/// Greedy bottom-up merging. Returns inclusive bucket end indexes.
///
/// One implementation serves both representations: the dense entry point
/// is a sparse view of its input, so dense and sparse builds share every
/// merge decision *by construction* (there are no two copies of the heap
/// machinery to drift apart).
fn greedy_merge_ends(data: &[u64], beta: usize) -> Vec<usize> {
    let entries = SparseFrequencies::collect_from_dense(data);
    let sparse =
        SparseFrequencies::new(&entries, data.len() as u64).expect("dense view upholds invariants");
    greedy_merge_ends_sparse(&sparse, beta)
        .into_iter()
        .map(|end| end as usize)
        .collect()
}

/// Sparse greedy bottom-up merging — the one shared implementation
/// (dense inputs go through [`greedy_merge_ends`]'s sparse view), so zero
/// indexes are never touched.
///
/// The textbook greedy starts from `N` singleton buckets and repeatedly
/// pops the cheapest adjacent merge. The key structural fact: a merge costs
/// exactly `0.0` precisely when the two segments carry the same constant
/// value (zero runs always do; the SSE terms are exact integers there),
/// positive costs sort strictly after `0.0` under `total_cmp`, and ties at
/// `0.0` pop in ascending leader order. So the dense heap performs the
/// first `N − β` merges *inside maximal equal-value runs, left to right,
/// folding each run into its leader one element at a time* — computable in
/// O(runs) without a heap. Only if the budget outlives all equal-value
/// merges does a real heap phase start, and by then the segmentation is
/// the equal-value runs (≤ 2·nnz + 1 of them), over which we replay the
/// identical heap algorithm with [`SparsePrefix`] supplying bit-identical
/// SSE values.
///
/// The phase split equals the all-singletons heap whenever the
/// squared-frequency prefix sums are exact in `f64` (`Σ f² < 2⁵³`); past
/// that it is simply the algorithm's (deterministic) definition — dense
/// and sparse inputs run this same code either way.
fn greedy_merge_ends_sparse(data: &SparseFrequencies<'_>, beta: usize) -> Vec<u64> {
    let n = data.domain_size();
    if beta as u64 >= n {
        return (0..n).collect();
    }
    let runs = data.equal_value_runs();
    let needed = n - beta as u64;
    let zero_cost_merges = n - runs.len() as u64;

    if needed <= zero_cost_merges {
        // Phase 1 only: collapse runs left to right until β segments
        // remain. A partially collapsed run is its leader (grown by
        // `budget` elements) followed by untouched singletons.
        let mut ends = Vec::with_capacity(beta);
        let mut budget = needed;
        for &(lo, hi) in &runs {
            let len = hi - lo + 1;
            if budget >= len - 1 {
                budget -= len - 1;
                ends.push(hi);
            } else {
                ends.push(lo + budget);
                for i in lo + budget + 1..=hi {
                    ends.push(i);
                }
                budget = 0;
            }
        }
        debug_assert_eq!(ends.len(), beta);
        return ends;
    }

    // Phase 2: all equal-value runs have collapsed; replay the dense heap
    // over the run segmentation. Leaders keep their domain index as the
    // heap tie-break key, exactly as in the dense arena. Every segment
    // carries its entry-rank span `[rank_lo, rank_hi)` so SSE reads are
    // plain prefix-array subtractions — no binary search in the loop.
    let prefix = SparsePrefix::new(data);
    #[derive(Clone)]
    struct Seg {
        lo: u64,
        hi: u64,
        /// Entry ranks spanning `[lo, hi]`: `rank(lo) .. rank(hi + 1)`.
        rank_lo: u32,
        rank_hi: u32,
        sse: f64,
        version: u32,
        alive: bool,
    }
    let mut segs: Vec<Seg> = Vec::with_capacity(runs.len());
    let mut rank = 0usize;
    let mut entry_walk = data.cursor().peekable();
    for &(lo, hi) in &runs {
        let rank_lo = rank;
        while entry_walk.next_if(|&(index, _)| index <= hi).is_some() {
            rank += 1;
        }
        segs.push(Seg {
            lo,
            hi,
            rank_lo: rank_lo as u32,
            rank_hi: rank as u32,
            // The dense arena recomputes SSE only on merge; a run that
            // was never merged (singleton) still holds its initial 0.0.
            sse: if lo == hi {
                0.0
            } else {
                prefix.range_sse_at(lo, hi, rank_lo, rank)
            },
            version: 0,
            alive: true,
        });
    }
    let r = segs.len();
    const NONE: usize = usize::MAX;
    let mut next: Vec<usize> = (0..r)
        .map(|i| if i + 1 < r { i + 1 } else { NONE })
        .collect();
    let mut prev_l: Vec<usize> = (0..r).map(|i| if i > 0 { i - 1 } else { NONE }).collect();

    // Heap keys carry the *arena index* of the left segment. The dense
    // algorithm tie-breaks equal costs by leader domain index; segments
    // are created in ascending `lo` order, so arena order and `lo` order
    // coincide and the pop sequence (hence every merge decision) is
    // unchanged — while the pop path loses its hash-map lookup, which
    // dominated the replay on large inputs. The initial entries are
    // heapified in one O(r) pass instead of r pushes.
    let merge_cost = |segs: &[Seg], l: usize, r: usize, prefix: &SparsePrefix| {
        prefix.range_sse_at(
            segs[l].lo,
            segs[r].hi,
            segs[l].rank_lo as usize,
            segs[r].rank_hi as usize,
        ) - segs[l].sse
            - segs[r].sse
    };
    let mut heap: BinaryHeap<Reverse<(TotalF64, u64, u32, u32)>> = (0..r - 1)
        .map(|l| {
            let cost = merge_cost(&segs, l, l + 1, &prefix);
            Reverse((TotalF64(cost), l as u64, 0, 0))
        })
        .collect();

    let mut alive = r;
    while alive > beta {
        let Reverse((_, leader, vl, vr)) = heap.pop().expect("heap exhausted before reaching beta");
        let l = leader as usize;
        if !segs[l].alive || segs[l].version != vl {
            continue;
        }
        let right = next[l];
        if right == NONE || !segs[right].alive || segs[right].version != vr {
            continue;
        }
        segs[l].hi = segs[right].hi;
        segs[l].rank_hi = segs[right].rank_hi;
        segs[l].sse = prefix.range_sse_at(
            segs[l].lo,
            segs[l].hi,
            segs[l].rank_lo as usize,
            segs[l].rank_hi as usize,
        );
        segs[l].version += 1;
        segs[right].alive = false;
        let rn = next[right];
        next[l] = rn;
        if rn != NONE {
            prev_l[rn] = l;
        }
        alive -= 1;
        if rn != NONE {
            let cost = merge_cost(&segs, l, rn, &prefix);
            heap.push(Reverse((
                TotalF64(cost),
                l as u64,
                segs[l].version,
                segs[rn].version,
            )));
        }
        let lp = prev_l[l];
        if lp != NONE {
            let cost = merge_cost(&segs, lp, l, &prefix);
            heap.push(Reverse((
                TotalF64(cost),
                lp as u64,
                segs[lp].version,
                segs[l].version,
            )));
        }
    }

    let mut ends = Vec::with_capacity(beta);
    let mut i = 0usize;
    debug_assert!(segs[0].alive);
    loop {
        ends.push(segs[i].hi);
        i = next[i];
        if i == NONE {
            break;
        }
    }
    debug_assert_eq!(ends.len(), beta);
    ends
}

/// Sparse max-diff boundaries, identical to [`maxdiff_ends`]: non-zero
/// adjacent differences exist only next to entries (O(nnz) candidates);
/// if the budget outlives them, the dense tie-break fills in zero-diff
/// boundaries at the smallest positions, which we enumerate directly.
fn maxdiff_ends_sparse(data: &SparseFrequencies<'_>, beta: usize) -> Vec<u64> {
    let n = data.domain_size();
    if beta as u64 >= n {
        return (0..n).collect();
    }
    // Candidate boundary positions: only p with v[p] ≠ v[p+1], which
    // requires p or p+1 to be an entry index — one windowed cursor pass
    // (previous entry + lookahead) covers every such pair:
    //   * p = index − 1 when the previous entry is not adjacent (the left
    //     neighbour is an implicit zero);
    //   * p = index against the right neighbour (the next entry when
    //     adjacent, zero otherwise).
    // Adjacent entry pairs appear once (the left entry's p = index rule);
    // positions emerge strictly increasing, so no sort/dedup is needed.
    let mut diffs: Vec<(u64, u64)> = Vec::with_capacity(2 * data.nnz());
    let mut walk = data.cursor().peekable();
    let mut previous: Option<u64> = None;
    while let Some((index, value)) = walk.next() {
        if index > 0 && previous != Some(index - 1) && value > 0 {
            diffs.push((value, index - 1));
        }
        if index + 1 < n {
            let right = match walk.peek() {
                Some(&(next, next_value)) if next == index + 1 => next_value,
                _ => 0,
            };
            let d = value.abs_diff(right);
            if d > 0 {
                diffs.push((d, index));
            }
        }
        previous = Some(index);
    }
    diffs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let want = beta - 1;
    let mut ends: Vec<u64> = diffs.iter().take(want).map(|&(_, p)| p).collect();
    if ends.len() < want {
        // The dense sort puts all zero-diff pairs after, ordered by
        // position: take the smallest positions (valid boundaries are
        // `0..n-1`) not already used by a non-zero diff (all of which
        // were taken, since want ≥ |diffs|).
        let mut taken: Vec<u64> = ends.clone();
        taken.sort_unstable();
        let missing = want - ends.len();
        ends.extend(crate::sparse::absent_indexes(taken, n - 1).take(missing));
        debug_assert_eq!(ends.len(), want, "ran out of boundary positions");
    }
    ends.push(n - 1);
    ends.sort_unstable();
    ends.dedup();
    debug_assert_eq!(ends.len(), beta);
    ends
}

/// Max-diff boundaries. Returns inclusive bucket end indexes.
fn maxdiff_ends(data: &[u64], beta: usize) -> Vec<usize> {
    let n = data.len();
    if beta >= n {
        return (0..n).collect();
    }
    // (difference, position) for each adjacent pair; boundary after `pos`.
    let mut diffs: Vec<(u64, usize)> = data
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[0].abs_diff(w[1]), i))
        .collect();
    // Largest differences first; ties broken toward earlier positions for
    // determinism.
    diffs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut ends: Vec<usize> = diffs[..beta - 1].iter().map(|&(_, i)| i).collect();
    ends.push(n - 1);
    ends.sort_unstable();
    ends.dedup();
    debug_assert_eq!(ends.len(), beta);
    ends
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EquiWidth, HistogramBuilder};
    use crate::PointEstimator;

    #[test]
    fn exact_finds_obvious_clusters() {
        let data = [1u64, 1, 1, 50, 50, 50, 9, 9, 9];
        let h = VOptimal::exact().build(&data, 3).unwrap();
        assert_eq!(h.bucket_count(), 3);
        assert!(h.sse(&data) < 1e-9, "clusters are exactly representable");
        assert_eq!(h.estimate(0), 1.0);
        assert_eq!(h.estimate(4), 50.0);
        assert_eq!(h.estimate(8), 9.0);
    }

    #[test]
    fn greedy_finds_obvious_clusters() {
        let data = [1u64, 1, 1, 50, 50, 50, 9, 9, 9];
        let h = VOptimal::greedy().build(&data, 3).unwrap();
        assert!(h.sse(&data) < 1e-9);
    }

    #[test]
    fn maxdiff_finds_obvious_clusters() {
        let data = [1u64, 1, 1, 50, 50, 50, 9, 9, 9];
        let h = VOptimal::maxdiff().build(&data, 3).unwrap();
        assert!(h.sse(&data) < 1e-9);
    }

    #[test]
    fn exact_is_no_worse_than_others() {
        // Pseudo-random data; exact must lower-bound every other builder.
        let mut x = 123456789u64;
        let data: Vec<u64> = (0..80)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 1000
            })
            .collect();
        for beta in [2usize, 5, 10, 20] {
            let exact = VOptimal::exact().build(&data, beta).unwrap().sse(&data);
            for other in [
                &VOptimal::greedy() as &dyn HistogramBuilder,
                &VOptimal::maxdiff(),
                &EquiWidth,
            ] {
                let sse = other.build(&data, beta).unwrap().sse(&data);
                assert!(
                    exact <= sse + 1e-6,
                    "exact {exact} > {} {sse} at beta {beta}",
                    other.name()
                );
            }
        }
    }

    #[test]
    fn exact_limit_enforced() {
        let data = vec![0u64; 100];
        let b = VOptimal {
            mode: VOptimalMode::Exact { limit: 50 },
        };
        assert!(matches!(
            b.build(&data, 4),
            Err(HistogramError::ExactTooLarge {
                domain: 100,
                limit: 50
            })
        ));
    }

    #[test]
    fn all_modes_reach_exact_beta() {
        let data: Vec<u64> = (0..40).map(|i| (i * 7 % 13) as u64).collect();
        for beta in [1usize, 2, 7, 39, 40, 100] {
            for b in [
                &VOptimal::exact() as &dyn HistogramBuilder,
                &VOptimal::greedy(),
                &VOptimal::maxdiff(),
            ] {
                let h = b.build(&data, beta).unwrap();
                assert_eq!(h.bucket_count(), beta.min(40), "{} beta={beta}", b.name());
                h.validate().unwrap();
            }
        }
    }

    #[test]
    fn greedy_matches_exact_on_small_inputs() {
        // Greedy is not optimal in general, but on tiny inputs with clear
        // structure it should match; this guards against regressions that
        // break the merge bookkeeping entirely.
        let data = [10u64, 10, 0, 0, 10, 10];
        let e = VOptimal::exact().build(&data, 3).unwrap().sse(&data);
        let g = VOptimal::greedy().build(&data, 3).unwrap().sse(&data);
        assert!((e - g).abs() < 1e-9, "exact {e}, greedy {g}");
    }

    #[test]
    fn single_value_domain() {
        let data = [42u64];
        for b in [
            &VOptimal::exact() as &dyn HistogramBuilder,
            &VOptimal::greedy(),
            &VOptimal::maxdiff(),
        ] {
            let h = b.build(&data, 3).unwrap();
            assert_eq!(h.bucket_count(), 1);
            assert_eq!(h.estimate(0), 42.0);
        }
    }

    #[test]
    fn default_mode_is_greedy() {
        assert_eq!(VOptimal::default().mode, VOptimalMode::GreedyMerge);
    }

    fn sparse_view(dense: &[u64]) -> Vec<(u64, u64)> {
        SparseFrequencies::collect_from_dense(dense)
    }

    /// Pseudo-random sparse-ish sequence: mostly zeros, some runs.
    fn noisy(len: usize, seed: u64, zero_bias: u64) -> Vec<u64> {
        let mut x = seed;
        (0..len)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let v = (x >> 33) % 100;
                if v < zero_bias {
                    0
                } else {
                    v
                }
            })
            .collect()
    }

    #[test]
    fn sparse_builds_match_dense_boundaries() {
        for (seed, zero_bias) in [(1u64, 70), (2, 95), (3, 0), (4, 99), (5, 50)] {
            for len in [1usize, 7, 40, 200] {
                let dense = noisy(len, seed, zero_bias);
                let entries = sparse_view(&dense);
                let s = SparseFrequencies::new(&entries, len as u64).unwrap();
                for beta in [1usize, 2, 5, 16, len, len + 9] {
                    for b in [
                        &VOptimal::greedy() as &dyn HistogramBuilder,
                        &VOptimal::maxdiff(),
                        &VOptimal::exact(),
                        &crate::builder::EquiWidth,
                        &crate::builder::EquiDepth,
                    ] {
                        let from_dense = b.build(&dense, beta).unwrap();
                        let from_sparse = b.build_sparse(&s, beta).unwrap();
                        assert_eq!(
                            from_dense.buckets(),
                            from_sparse.buckets(),
                            "{} diverged: seed {seed}, bias {zero_bias}, len {len}, β {beta}",
                            b.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn sparse_greedy_skips_huge_zero_runs() {
        // A domain far past the materialization limit: entries cluster at
        // the ends, the middle is one giant implicit zero run.
        let n: u64 = 1 << 32;
        let entries: Vec<(u64, u64)> = vec![(0, 10), (1, 12), (2, 11), (n - 2, 90), (n - 1, 95)];
        let s = SparseFrequencies::new(&entries, n).unwrap();
        let h = VOptimal::greedy().build_sparse(&s, 3).unwrap();
        assert_eq!(h.bucket_count(), 3);
        h.validate().unwrap();
        assert_eq!(h.total_sum(), 218);
        // The dense path must refuse this size rather than allocate.
        assert!(matches!(
            VOptimal::exact().build_sparse(&s, 3),
            Err(HistogramError::ExactTooLarge { .. })
        ));
    }
}
