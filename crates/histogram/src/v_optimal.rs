//! V-optimal histogram construction: minimize the total within-bucket
//! sum of squared errors (SSE), i.e. frequency variance — the histogram
//! family used throughout the paper's evaluation.
//!
//! Three modes trade optimality for construction cost:
//!
//! * [`VOptimalMode::Exact`] — the classic `O(N²β)` dynamic program
//!   (Jagadish et al., VLDB'98). Guaranteed optimal; only practical for
//!   domains up to a few thousand values, which is why it is gated by a
//!   configurable size limit.
//! * [`VOptimalMode::GreedyMerge`] — bottom-up agglomerative merging:
//!   start from singleton buckets and repeatedly merge the adjacent pair
//!   with the smallest SSE increase, `O(N log N)`. Not optimal, but close
//!   in practice (the `ablation_voptimal` binary quantifies the gap), and
//!   fast enough for the paper-scale domain of 55 986 paths.
//! * [`VOptimalMode::MaxDiff`] — place the `β − 1` boundaries at the
//!   largest adjacent differences. Cheapest, crudest.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::builder::{buckets_from_ends, check_inputs, HistogramBuilder};
use crate::error::HistogramError;
use crate::histogram::Histogram;
use crate::prefix::PrefixSums;

/// Construction mode for [`VOptimal`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VOptimalMode {
    /// Exact dynamic programming; errors out above `limit` domain values.
    Exact {
        /// Largest domain size the DP will accept.
        limit: usize,
    },
    /// Bottom-up greedy merging (default).
    #[default]
    GreedyMerge,
    /// Max-diff boundary placement.
    MaxDiff,
}

/// V-optimal histogram builder.
#[derive(Debug, Clone, Copy, Default)]
pub struct VOptimal {
    /// Which construction algorithm to run.
    pub mode: VOptimalMode,
}

impl VOptimal {
    /// Exact DP with the default 8192-value limit.
    pub fn exact() -> VOptimal {
        VOptimal {
            mode: VOptimalMode::Exact { limit: 8192 },
        }
    }

    /// Greedy bottom-up merging (paper-scale default).
    pub fn greedy() -> VOptimal {
        VOptimal {
            mode: VOptimalMode::GreedyMerge,
        }
    }

    /// Max-diff boundary heuristic.
    pub fn maxdiff() -> VOptimal {
        VOptimal {
            mode: VOptimalMode::MaxDiff,
        }
    }
}

impl HistogramBuilder for VOptimal {
    fn name(&self) -> &'static str {
        match self.mode {
            VOptimalMode::Exact { .. } => "v-optimal-exact",
            VOptimalMode::GreedyMerge => "v-optimal-greedy",
            VOptimalMode::MaxDiff => "v-optimal-maxdiff",
        }
    }

    fn build(&self, data: &[u64], beta: usize) -> Result<Histogram, HistogramError> {
        let beta = check_inputs(data, beta)?;
        let ends = match self.mode {
            VOptimalMode::Exact { limit } => {
                if data.len() > limit {
                    return Err(HistogramError::ExactTooLarge {
                        domain: data.len(),
                        limit,
                    });
                }
                exact_dp_ends(data, beta)
            }
            VOptimalMode::GreedyMerge => greedy_merge_ends(data, beta),
            VOptimalMode::MaxDiff => maxdiff_ends(data, beta),
        };
        Ok(Histogram::from_buckets(
            buckets_from_ends(data, &ends),
            data.len(),
        ))
    }
}

/// `f64` ordered by `total_cmp`, for use in heaps.
#[derive(Debug, Clone, Copy, PartialEq)]
struct TotalF64(f64);

impl Eq for TotalF64 {}

impl PartialOrd for TotalF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for TotalF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Exact `O(N²β)` dynamic program. Returns inclusive bucket end indexes.
#[allow(clippy::needless_range_loop)] // DP recurrences read clearer with indices
fn exact_dp_ends(data: &[u64], beta: usize) -> Vec<usize> {
    let n = data.len();
    let prefix = PrefixSums::new(data);
    // dp[i] = min SSE of partitioning data[0..i] into the current number of
    // buckets; cut[j][i] = best position of the previous boundary.
    let mut prev = vec![0.0f64; n + 1];
    for i in 1..=n {
        prev[i] = prefix.range_sse(0, i - 1);
    }
    let mut cuts: Vec<Vec<u32>> = Vec::with_capacity(beta.saturating_sub(1));
    let mut cur = vec![0.0f64; n + 1];
    for j in 2..=beta {
        let mut cut_row = vec![0u32; n + 1];
        // With j buckets we need at least j values.
        for i in j..=n {
            let mut best = f64::INFINITY;
            let mut best_x = j - 1;
            // Last bucket covers x..i-1 (0-based), x ranges over [j-1, i-1].
            for x in (j - 1)..i {
                let cost = prev[x] + prefix.range_sse(x, i - 1);
                if cost < best {
                    best = cost;
                    best_x = x;
                }
            }
            cur[i] = best;
            cut_row[i] = best_x as u32;
        }
        cuts.push(cut_row);
        std::mem::swap(&mut prev, &mut cur);
    }
    // Backtrack boundaries.
    let mut ends = vec![0usize; beta];
    ends[beta - 1] = n - 1;
    let mut i = n;
    for j in (2..=beta).rev() {
        let x = cuts[j - 2][i] as usize;
        ends[j - 2] = x - 1;
        i = x;
    }
    ends
}

/// Greedy bottom-up merging. Returns inclusive bucket end indexes.
fn greedy_merge_ends(data: &[u64], beta: usize) -> Vec<usize> {
    let n = data.len();
    if beta >= n {
        return (0..n).collect();
    }
    let prefix = PrefixSums::new(data);

    // Segment arena: segment i initially covers [i, i].
    #[derive(Clone)]
    struct Seg {
        lo: usize,
        hi: usize,
        sse: f64,
        version: u32,
        alive: bool,
    }
    let mut segs: Vec<Seg> = (0..n)
        .map(|i| Seg {
            lo: i,
            hi: i,
            sse: 0.0,
            version: 0,
            alive: true,
        })
        .collect();
    // Doubly linked list over alive segments (usize::MAX = none).
    const NONE: usize = usize::MAX;
    let mut next: Vec<usize> = (0..n)
        .map(|i| if i + 1 < n { i + 1 } else { NONE })
        .collect();
    let mut prev_l: Vec<usize> = (0..n).map(|i| if i > 0 { i - 1 } else { NONE }).collect();

    // Min-heap of merge candidates: (cost, left segment, left/right versions).
    let mut heap: BinaryHeap<Reverse<(TotalF64, usize, u32, u32)>> = BinaryHeap::new();
    let merge_cost = |segs: &[Seg], l: usize, r: usize, prefix: &PrefixSums| {
        prefix.range_sse(segs[l].lo, segs[r].hi) - segs[l].sse - segs[r].sse
    };
    for l in 0..n - 1 {
        let cost = merge_cost(&segs, l, l + 1, &prefix);
        heap.push(Reverse((TotalF64(cost), l, 0, 0)));
    }

    let mut alive = n;
    while alive > beta {
        let Reverse((_, l, vl, vr)) = heap.pop().expect("heap exhausted before reaching beta");
        if !segs[l].alive || segs[l].version != vl {
            continue;
        }
        let r = next[l];
        if r == NONE || !segs[r].alive || segs[r].version != vr {
            continue;
        }
        // Merge r into l.
        segs[l].hi = segs[r].hi;
        segs[l].sse = prefix.range_sse(segs[l].lo, segs[l].hi);
        segs[l].version += 1;
        segs[r].alive = false;
        let rn = next[r];
        next[l] = rn;
        if rn != NONE {
            prev_l[rn] = l;
        }
        alive -= 1;
        // New candidates with both neighbors.
        if rn != NONE {
            let cost = merge_cost(&segs, l, rn, &prefix);
            heap.push(Reverse((
                TotalF64(cost),
                l,
                segs[l].version,
                segs[rn].version,
            )));
        }
        let lp = prev_l[l];
        if lp != NONE {
            let cost = merge_cost(&segs, lp, l, &prefix);
            heap.push(Reverse((
                TotalF64(cost),
                lp,
                segs[lp].version,
                segs[l].version,
            )));
        }
    }

    let mut ends = Vec::with_capacity(beta);
    let mut i = 0usize;
    // Find the first alive segment (segment 0 always stays alive: merges
    // fold the right segment into the left).
    debug_assert!(segs[0].alive);
    loop {
        ends.push(segs[i].hi);
        i = next[i];
        if i == NONE {
            break;
        }
    }
    debug_assert_eq!(ends.len(), beta);
    ends
}

/// Max-diff boundaries. Returns inclusive bucket end indexes.
fn maxdiff_ends(data: &[u64], beta: usize) -> Vec<usize> {
    let n = data.len();
    if beta >= n {
        return (0..n).collect();
    }
    // (difference, position) for each adjacent pair; boundary after `pos`.
    let mut diffs: Vec<(u64, usize)> = data
        .windows(2)
        .enumerate()
        .map(|(i, w)| (w[0].abs_diff(w[1]), i))
        .collect();
    // Largest differences first; ties broken toward earlier positions for
    // determinism.
    diffs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
    let mut ends: Vec<usize> = diffs[..beta - 1].iter().map(|&(_, i)| i).collect();
    ends.push(n - 1);
    ends.sort_unstable();
    ends.dedup();
    debug_assert_eq!(ends.len(), beta);
    ends
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{EquiWidth, HistogramBuilder};
    use crate::PointEstimator;

    #[test]
    fn exact_finds_obvious_clusters() {
        let data = [1u64, 1, 1, 50, 50, 50, 9, 9, 9];
        let h = VOptimal::exact().build(&data, 3).unwrap();
        assert_eq!(h.bucket_count(), 3);
        assert!(h.sse(&data) < 1e-9, "clusters are exactly representable");
        assert_eq!(h.estimate(0), 1.0);
        assert_eq!(h.estimate(4), 50.0);
        assert_eq!(h.estimate(8), 9.0);
    }

    #[test]
    fn greedy_finds_obvious_clusters() {
        let data = [1u64, 1, 1, 50, 50, 50, 9, 9, 9];
        let h = VOptimal::greedy().build(&data, 3).unwrap();
        assert!(h.sse(&data) < 1e-9);
    }

    #[test]
    fn maxdiff_finds_obvious_clusters() {
        let data = [1u64, 1, 1, 50, 50, 50, 9, 9, 9];
        let h = VOptimal::maxdiff().build(&data, 3).unwrap();
        assert!(h.sse(&data) < 1e-9);
    }

    #[test]
    fn exact_is_no_worse_than_others() {
        // Pseudo-random data; exact must lower-bound every other builder.
        let mut x = 123456789u64;
        let data: Vec<u64> = (0..80)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 33) % 1000
            })
            .collect();
        for beta in [2usize, 5, 10, 20] {
            let exact = VOptimal::exact().build(&data, beta).unwrap().sse(&data);
            for other in [
                &VOptimal::greedy() as &dyn HistogramBuilder,
                &VOptimal::maxdiff(),
                &EquiWidth,
            ] {
                let sse = other.build(&data, beta).unwrap().sse(&data);
                assert!(
                    exact <= sse + 1e-6,
                    "exact {exact} > {} {sse} at beta {beta}",
                    other.name()
                );
            }
        }
    }

    #[test]
    fn exact_limit_enforced() {
        let data = vec![0u64; 100];
        let b = VOptimal {
            mode: VOptimalMode::Exact { limit: 50 },
        };
        assert!(matches!(
            b.build(&data, 4),
            Err(HistogramError::ExactTooLarge {
                domain: 100,
                limit: 50
            })
        ));
    }

    #[test]
    fn all_modes_reach_exact_beta() {
        let data: Vec<u64> = (0..40).map(|i| (i * 7 % 13) as u64).collect();
        for beta in [1usize, 2, 7, 39, 40, 100] {
            for b in [
                &VOptimal::exact() as &dyn HistogramBuilder,
                &VOptimal::greedy(),
                &VOptimal::maxdiff(),
            ] {
                let h = b.build(&data, beta).unwrap();
                assert_eq!(h.bucket_count(), beta.min(40), "{} beta={beta}", b.name());
                h.validate().unwrap();
            }
        }
    }

    #[test]
    fn greedy_matches_exact_on_small_inputs() {
        // Greedy is not optimal in general, but on tiny inputs with clear
        // structure it should match; this guards against regressions that
        // break the merge bookkeeping entirely.
        let data = [10u64, 10, 0, 0, 10, 10];
        let e = VOptimal::exact().build(&data, 3).unwrap().sse(&data);
        let g = VOptimal::greedy().build(&data, 3).unwrap().sse(&data);
        assert!((e - g).abs() < 1e-9, "exact {e}, greedy {g}");
    }

    #[test]
    fn single_value_domain() {
        let data = [42u64];
        for b in [
            &VOptimal::exact() as &dyn HistogramBuilder,
            &VOptimal::greedy(),
            &VOptimal::maxdiff(),
        ] {
            let h = b.build(&data, 3).unwrap();
            assert_eq!(h.bucket_count(), 1);
            assert_eq!(h.estimate(0), 42.0);
        }
    }

    #[test]
    fn default_mode_is_greedy() {
        assert_eq!(VOptimal::default().mode, VOptimalMode::GreedyMerge);
    }
}
