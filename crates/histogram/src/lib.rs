#![warn(missing_docs)]

//! # phe-histogram — histograms over ordered frequency sequences
//!
//! A histogram approximates a data distribution `F[0..N)` by partitioning
//! the (ordered) domain into `β` buckets and storing per-bucket summaries.
//! In this workspace `F[i]` is the selectivity of the `i`-th label path in
//! some domain ordering; the whole point of the paper is that the choice of
//! that ordering decides how well *any* bucketing can do.
//!
//! This crate is deliberately domain-agnostic: it sees only `&[u64]` — or,
//! for domains too large to materialize, a [`sparse::SparseFrequencies`]
//! view of the non-zero `(index, frequency)` runs with implicit zeros.
//! Every builder accepts both ([`builder::HistogramBuilder::build_sparse`]),
//! and the sparse-native implementations (equi-width, equi-depth, greedy
//! and max-diff V-optimal, end-biased) produce identical bucket boundaries
//! to their dense counterparts while paying O(1) per zero run.
//!
//! Provided partitioners (see [`builder::HistogramBuilder`]):
//!
//! * [`builder::EquiWidth`] — equal index ranges;
//! * [`builder::EquiDepth`] — equal cumulative frequency;
//! * [`builder::VOptimal`] — variance-minimizing, in three modes:
//!   exact `O(N²β)` dynamic programming, greedy bottom-up merging
//!   (`O(N log N)`), and the max-diff boundary heuristic;
//! * [`end_biased::EndBiasedHistogram`] — exact singletons for the
//!   highest-frequency values plus one average for the rest (not a bucketed
//!   range partition; kept for the ablation study).
//!
//! ```
//! use phe_histogram::builder::{EquiWidth, HistogramBuilder};
//! use phe_histogram::PointEstimator;
//!
//! let data = [10u64, 12, 11, 900, 950, 920];
//! let h = EquiWidth.build(&data, 2).unwrap();
//! assert_eq!(h.bucket_count(), 2);
//! assert!((h.estimate(0) - 11.0).abs() < 1e-9);
//! assert!((h.estimate(4) - 923.33).abs() < 0.01);
//! ```

pub mod bucket;
pub mod builder;
pub mod end_biased;
pub mod error;
pub mod histogram;
pub mod metrics;
pub mod prefix;
pub mod sparse;
pub mod v_optimal;

pub use bucket::Bucket;
pub use builder::{EquiDepth, EquiWidth, HistogramBuilder, VOptimal, VOptimalMode};
pub use end_biased::EndBiasedHistogram;
pub use error::HistogramError;
pub use histogram::Histogram;
pub use metrics::{error_rate, mean_abs_error_rate, q_error, AccuracyReport};
pub use prefix::PrefixSums;
pub use sparse::{EntryCursor, RunSource, SparseFrequencies, SparsePrefix};

/// Anything that can answer a point-frequency estimate for a domain index.
///
/// Implemented by the bucketed [`Histogram`] and by
/// [`EndBiasedHistogram`]; the estimator in `phe-core` is generic over it.
pub trait PointEstimator {
    /// Estimated frequency of domain index `i`.
    fn estimate(&self, index: usize) -> f64;

    /// Domain size the estimator was built over.
    fn domain_size(&self) -> usize;

    /// Approximate in-memory footprint, for space-budget comparisons.
    fn size_bytes(&self) -> usize;
}
