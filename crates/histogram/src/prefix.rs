//! Prefix sums over a frequency sequence, for O(1) range statistics.

/// Prefix sums of `F` and `F²`, supporting O(1) range sum and range SSE.
///
/// Sums of values use exact `u64` arithmetic (path selectivities sum far
/// below 2⁶⁴). Sums of squares use `f64`: squares up to ~2⁵³ are exact and
/// the relative rounding error beyond that (~10⁻¹⁶) is far below the
/// differences that matter when comparing bucketings.
#[derive(Debug, Clone)]
pub struct PrefixSums {
    /// `sum[i]` = Σ F[0..i]; length N+1.
    sum: Vec<u64>,
    /// `sq[i]` = Σ F[0..i]², as f64; length N+1.
    sq: Vec<f64>,
}

impl PrefixSums {
    /// Builds prefix sums in one pass.
    pub fn new(data: &[u64]) -> PrefixSums {
        let mut sum = Vec::with_capacity(data.len() + 1);
        let mut sq = Vec::with_capacity(data.len() + 1);
        sum.push(0);
        sq.push(0.0);
        let mut s = 0u64;
        let mut q = 0.0f64;
        for &v in data {
            s = s
                .checked_add(v)
                .expect("frequency sum overflows u64 — domain too heavy");
            q += (v as f64) * (v as f64);
            sum.push(s);
            sq.push(q);
        }
        PrefixSums { sum, sq }
    }

    /// Number of underlying values.
    #[inline]
    pub fn len(&self) -> usize {
        self.sum.len() - 1
    }

    /// Whether the underlying sequence was empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sum of `F[lo..=hi]`.
    #[inline]
    pub fn range_sum(&self, lo: usize, hi: usize) -> u64 {
        debug_assert!(lo <= hi && hi < self.len());
        self.sum[hi + 1] - self.sum[lo]
    }

    /// Sum of squares of `F[lo..=hi]`.
    #[inline]
    pub fn range_sq(&self, lo: usize, hi: usize) -> f64 {
        debug_assert!(lo <= hi && hi < self.len());
        self.sq[hi + 1] - self.sq[lo]
    }

    /// Mean of `F[lo..=hi]`.
    #[inline]
    pub fn range_mean(&self, lo: usize, hi: usize) -> f64 {
        self.range_sum(lo, hi) as f64 / (hi - lo + 1) as f64
    }

    /// Sum of squared errors of `F[lo..=hi]` around its mean:
    /// `Σ (F[i] − mean)² = Σ F² − (Σ F)² / n`.
    ///
    /// Clamped at zero to absorb floating-point cancellation on constant
    /// runs.
    #[inline]
    pub fn range_sse(&self, lo: usize, hi: usize) -> f64 {
        let n = (hi - lo + 1) as f64;
        let s = self.range_sum(lo, hi) as f64;
        let q = self.range_sq(lo, hi);
        (q - s * s / n).max(0.0)
    }

    /// Total sum of the sequence.
    #[inline]
    pub fn total(&self) -> u64 {
        *self.sum.last().expect("prefix sums always non-empty")
    }

    /// Index of the first prefix whose cumulative sum exceeds `target` —
    /// used by equi-depth splitting. Returns `len()` if the total is ≤
    /// `target`.
    pub fn first_prefix_exceeding(&self, target: u64) -> usize {
        // partition_point over the cumulative array (skip the leading 0).
        self.sum[1..].partition_point(|&s| s <= target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_means() {
        let p = PrefixSums::new(&[1, 2, 3, 4, 5]);
        assert_eq!(p.len(), 5);
        assert_eq!(p.range_sum(0, 4), 15);
        assert_eq!(p.range_sum(1, 3), 9);
        assert_eq!(p.range_sum(2, 2), 3);
        assert!((p.range_mean(1, 3) - 3.0).abs() < 1e-12);
        assert_eq!(p.total(), 15);
    }

    #[test]
    fn sse_of_constant_run_is_zero() {
        let p = PrefixSums::new(&[7, 7, 7, 7]);
        assert_eq!(p.range_sse(0, 3), 0.0);
        assert_eq!(p.range_sse(1, 2), 0.0);
    }

    #[test]
    fn sse_matches_direct_computation() {
        let data = [3u64, 1, 4, 1, 5, 9, 2, 6];
        let p = PrefixSums::new(&data);
        for lo in 0..data.len() {
            for hi in lo..data.len() {
                let vals: Vec<f64> = data[lo..=hi].iter().map(|&v| v as f64).collect();
                let mean = vals.iter().sum::<f64>() / vals.len() as f64;
                let direct: f64 = vals.iter().map(|v| (v - mean).powi(2)).sum();
                let fast = p.range_sse(lo, hi);
                assert!(
                    (fast - direct).abs() < 1e-9,
                    "sse mismatch on [{lo},{hi}]: {fast} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn prefix_exceeding() {
        let p = PrefixSums::new(&[10, 0, 5, 5]); // cumulative: 10,10,15,20
        assert_eq!(p.first_prefix_exceeding(0), 0);
        assert_eq!(p.first_prefix_exceeding(9), 0);
        assert_eq!(p.first_prefix_exceeding(10), 2);
        assert_eq!(p.first_prefix_exceeding(14), 2);
        assert_eq!(p.first_prefix_exceeding(15), 3);
        assert_eq!(p.first_prefix_exceeding(20), 4);
        assert_eq!(p.first_prefix_exceeding(100), 4);
    }

    #[test]
    fn single_element() {
        let p = PrefixSums::new(&[42]);
        assert_eq!(p.range_sum(0, 0), 42);
        assert_eq!(p.range_sse(0, 0), 0.0);
    }
}
