//! Histogram construction strategies.

use crate::bucket::Bucket;
use crate::error::HistogramError;
use crate::histogram::Histogram;
use crate::prefix::PrefixSums;
use crate::sparse::{
    buckets_from_ends_sparse, check_inputs_sparse, SparseFrequencies, SparsePrefix,
};

pub use crate::v_optimal::{VOptimal, VOptimalMode};

/// A histogram construction strategy: partitions `data` into at most
/// `beta` contiguous buckets.
///
/// All implementations in this crate produce exactly `min(beta, N)`
/// buckets and uphold the partition invariants of
/// [`Histogram::validate`].
pub trait HistogramBuilder {
    /// Short stable name, used in benchmark output and reports.
    fn name(&self) -> &'static str;

    /// Builds the histogram.
    fn build(&self, data: &[u64], beta: usize) -> Result<Histogram, HistogramError>;

    /// Builds the histogram from sparse `(index, frequency)` runs with
    /// implicit zeros, producing **the same bucket boundaries** as
    /// [`HistogramBuilder::build`] on the materialized sequence.
    ///
    /// The default implementation materializes the dense sequence (guarded
    /// by [`crate::sparse::DENSE_MATERIALIZE_LIMIT`]); builders with a
    /// sparse-native algorithm override it so zero runs cost O(1).
    fn build_sparse(
        &self,
        data: &SparseFrequencies<'_>,
        beta: usize,
    ) -> Result<Histogram, HistogramError> {
        self.build(&data.materialize()?, beta)
    }
}

/// Checks the common preconditions and normalizes the bucket budget.
pub(crate) fn check_inputs(data: &[u64], beta: usize) -> Result<usize, HistogramError> {
    if data.is_empty() {
        return Err(HistogramError::EmptyData);
    }
    if beta == 0 {
        return Err(HistogramError::ZeroBuckets);
    }
    Ok(beta.min(data.len()))
}

/// Builds buckets from sorted boundary end-indexes (inclusive); the last
/// boundary must be `data.len() - 1`.
pub(crate) fn buckets_from_ends(data: &[u64], ends: &[usize]) -> Vec<Bucket> {
    debug_assert_eq!(*ends.last().expect("at least one bucket"), data.len() - 1);
    let mut buckets = Vec::with_capacity(ends.len());
    let mut lo = 0usize;
    for &hi in ends {
        buckets.push(Bucket::from_range(data, lo, hi));
        lo = hi + 1;
    }
    buckets
}

/// Equal-index-range partitioning — the histogram of the paper's Figure 1.
///
/// Bucket `i` covers `⌈N·i/β⌉ .. ⌈N·(i+1)/β⌉ − 1`, so widths differ by at
/// most one and no bucket is empty.
#[derive(Debug, Clone, Copy, Default)]
pub struct EquiWidth;

impl HistogramBuilder for EquiWidth {
    fn name(&self) -> &'static str {
        "equi-width"
    }

    fn build(&self, data: &[u64], beta: usize) -> Result<Histogram, HistogramError> {
        let beta = check_inputs(data, beta)?;
        let n = data.len();
        let ends: Vec<usize> = (1..=beta).map(|i| n * i / beta - 1).collect();
        Ok(Histogram::from_buckets(buckets_from_ends(data, &ends), n))
    }

    /// Sparse-native: bucket boundaries depend only on `(N, β)`, so only
    /// the per-bucket statistics touch the entries — O(β + nnz) total.
    fn build_sparse(
        &self,
        data: &SparseFrequencies<'_>,
        beta: usize,
    ) -> Result<Histogram, HistogramError> {
        let beta = check_inputs_sparse(data, beta)?;
        let n = data.domain_size();
        // u128 intermediate: `n · i` can overflow u64 on huge domains.
        let ends: Vec<u64> = (1..=beta as u64)
            .map(|i| (n as u128 * i as u128 / beta as u128 - 1) as u64)
            .collect();
        let prefix = SparsePrefix::new(data);
        Ok(Histogram::from_buckets(
            buckets_from_ends_sparse(data, &prefix, &ends),
            n as usize,
        ))
    }
}

/// Equal-cumulative-frequency partitioning (quantile buckets).
///
/// Closes bucket `b` at the first index where the running sum reaches
/// `(b+1)/β` of the total mass, while reserving enough trailing indexes to
/// keep every remaining bucket non-empty. Degrades to [`EquiWidth`] when
/// the total mass is zero.
#[derive(Debug, Clone, Copy, Default)]
pub struct EquiDepth;

impl HistogramBuilder for EquiDepth {
    fn name(&self) -> &'static str {
        "equi-depth"
    }

    fn build(&self, data: &[u64], beta: usize) -> Result<Histogram, HistogramError> {
        let beta = check_inputs(data, beta)?;
        let n = data.len();
        let prefix = PrefixSums::new(data);
        let total = prefix.total();
        if total == 0 {
            return EquiWidth.build(data, beta);
        }
        let mut ends = Vec::with_capacity(beta);
        let mut acc = 0u64;
        for (i, &v) in data.iter().enumerate() {
            acc += v;
            let closed = ends.len();
            if closed == beta - 1 {
                // Everything left belongs to the final bucket.
                break;
            }
            let remaining_values = n - i - 1;
            let remaining_buckets = beta - closed - 1; // after closing here
            let threshold = (closed as u64 + 1) * total / beta as u64;
            let must_close = remaining_values == remaining_buckets;
            let wants_close = acc >= threshold && remaining_values >= remaining_buckets;
            if must_close || wants_close {
                ends.push(i);
            }
        }
        ends.push(n - 1);
        debug_assert_eq!(ends.len(), beta);
        Ok(Histogram::from_buckets(buckets_from_ends(data, &ends), n))
    }

    /// Sparse-native: the dense scan only changes state at non-zero
    /// entries (the running sum is constant across a zero run), so the
    /// per-index close decisions inside a constant-sum region are solved
    /// arithmetically. Each bucket close is O(1) ⇒ O(β + nnz) total.
    fn build_sparse(
        &self,
        data: &SparseFrequencies<'_>,
        beta: usize,
    ) -> Result<Histogram, HistogramError> {
        let beta = check_inputs_sparse(data, beta)?;
        let n = data.domain_size();
        let total = data.total();
        if total == 0 {
            return EquiWidth.build_sparse(data, beta);
        }
        let mut ends: Vec<u64> = Vec::with_capacity(beta);
        let mut acc = 0u64;
        let mut pos = 0u64;
        'scan: {
            for (index, frequency) in data.cursor() {
                // Zero run [pos, index-1]: the accumulator is unchanged.
                if pos < index && !equi_depth_region(pos, index - 1, acc, total, beta, n, &mut ends)
                {
                    break 'scan;
                }
                acc += frequency;
                if !equi_depth_region(index, index, acc, total, beta, n, &mut ends) {
                    break 'scan;
                }
                pos = index + 1;
            }
            if pos < n {
                equi_depth_region(pos, n - 1, acc, total, beta, n, &mut ends);
            }
        }
        ends.push(n - 1);
        debug_assert_eq!(ends.len(), beta);
        let prefix = SparsePrefix::new(data);
        Ok(Histogram::from_buckets(
            buckets_from_ends_sparse(data, &prefix, &ends),
            n as usize,
        ))
    }
}

/// Replays the dense equi-depth close decisions over a constant-`acc`
/// index region `[a, b]`. Returns `false` once `β − 1` buckets are closed
/// (the dense loop's `break`). Each iteration closes a bucket or exits, so
/// the cost is bounded by the closes performed, not the region width.
fn equi_depth_region(
    a: u64,
    b: u64,
    acc: u64,
    total: u64,
    beta: usize,
    n: u64,
    ends: &mut Vec<u64>,
) -> bool {
    let beta = beta as u64;
    let mut i = a;
    while i <= b {
        let closed = ends.len() as u64;
        if closed == beta - 1 {
            return false;
        }
        let remaining_buckets = beta - closed - 1;
        let threshold = (closed + 1) * total / beta;
        if acc >= threshold {
            // `wants_close`; the feasibility guard (`remaining_values >=
            // remaining_buckets`) is an invariant of the scan, asserted
            // rather than branched on.
            debug_assert!(n - i > remaining_buckets);
            ends.push(i);
            i += 1;
            continue;
        }
        // Below the threshold the only possible close left in this region
        // is `must_close` at the index where remaining values equal
        // remaining buckets.
        let must_close_at = n - 1 - remaining_buckets;
        if must_close_at < i || must_close_at > b {
            return true;
        }
        ends.push(must_close_at);
        i = must_close_at + 1;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PointEstimator;

    #[test]
    fn equi_width_even_split() {
        let data: Vec<u64> = (0..12).collect();
        let h = EquiWidth.build(&data, 3).unwrap();
        assert_eq!(h.bucket_count(), 3);
        let widths: Vec<usize> = h.buckets().iter().map(|b| b.count()).collect();
        assert_eq!(widths, vec![4, 4, 4]);
    }

    #[test]
    fn equi_width_uneven_split_balanced() {
        let data: Vec<u64> = (0..10).collect();
        let h = EquiWidth.build(&data, 4).unwrap();
        let widths: Vec<usize> = h.buckets().iter().map(|b| b.count()).collect();
        assert_eq!(widths.iter().sum::<usize>(), 10);
        assert!(widths.iter().all(|&w| w == 2 || w == 3), "{widths:?}");
    }

    #[test]
    fn beta_larger_than_domain_gives_singletons() {
        let data = [5u64, 6, 7];
        for builder in [&EquiWidth as &dyn HistogramBuilder, &EquiDepth] {
            let h = builder.build(&data, 10).unwrap();
            assert_eq!(h.bucket_count(), 3, "{}", builder.name());
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(h.estimate(i), v as f64);
            }
        }
    }

    #[test]
    fn empty_data_rejected() {
        assert_eq!(
            EquiWidth.build(&[], 3).unwrap_err(),
            HistogramError::EmptyData
        );
    }

    #[test]
    fn zero_buckets_rejected() {
        assert_eq!(
            EquiDepth.build(&[1, 2], 0).unwrap_err(),
            HistogramError::ZeroBuckets
        );
    }

    #[test]
    fn equi_depth_balances_mass() {
        // One heavy value, many light: the bucket reaching the heavy value
        // closes right at it (cumulative threshold crossed), and the light
        // tail is spread over the remaining buckets.
        let data = [1u64, 1, 1, 1, 100, 1, 1, 1];
        let h = EquiDepth.build(&data, 3).unwrap();
        assert_eq!(h.bucket_count(), 3);
        let b = h.bucket_of(4);
        assert_eq!(b.hi, 4, "bucket must close at the heavy value: {b:?}");
        // Mass per bucket is far more balanced than equi-width would give:
        // every bucket carries at least one third of a fair share.
        for b in h.buckets() {
            assert!(b.sum >= 1, "empty-mass bucket {b:?}");
        }
    }

    #[test]
    fn equi_depth_zero_mass_degrades_to_width() {
        let data = [0u64; 9];
        let h = EquiDepth.build(&data, 3).unwrap();
        assert_eq!(h.bucket_count(), 3);
        let widths: Vec<usize> = h.buckets().iter().map(|b| b.count()).collect();
        assert_eq!(widths, vec![3, 3, 3]);
    }

    #[test]
    fn equi_depth_exact_bucket_count_under_skew() {
        // All mass at the front — feasibility guard must still make 4 buckets.
        let data = [100u64, 0, 0, 0, 0, 0, 0, 0];
        let h = EquiDepth.build(&data, 4).unwrap();
        assert_eq!(h.bucket_count(), 4);
        h.validate().unwrap();
    }

    #[test]
    fn single_bucket_covers_all() {
        let data = [3u64, 1, 4];
        for builder in [&EquiWidth as &dyn HistogramBuilder, &EquiDepth] {
            let h = builder.build(&data, 1).unwrap();
            assert_eq!(h.bucket_count(), 1);
            assert!((h.estimate(1) - 8.0 / 3.0).abs() < 1e-12);
        }
    }
}
