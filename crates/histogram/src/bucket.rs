//! A single histogram bucket.

use serde::{Deserialize, Serialize};

/// A contiguous domain range `[lo, hi]` with stored statistics.
///
/// The estimate for any index in the range is the bucket mean
/// (`sum / count`) — the *continuous values assumption* standard in
/// histogram literature and used by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bucket {
    /// First domain index covered (inclusive).
    pub lo: usize,
    /// Last domain index covered (inclusive).
    pub hi: usize,
    /// Sum of frequencies in the range.
    pub sum: u64,
    /// Smallest frequency in the range.
    pub min: u64,
    /// Largest frequency in the range.
    pub max: u64,
}

impl Bucket {
    /// Builds a bucket over `data[lo..=hi]`, scanning for min/max.
    pub fn from_range(data: &[u64], lo: usize, hi: usize) -> Bucket {
        debug_assert!(lo <= hi && hi < data.len());
        let slice = &data[lo..=hi];
        let sum = slice.iter().sum();
        let min = *slice.iter().min().expect("non-empty range");
        let max = *slice.iter().max().expect("non-empty range");
        Bucket {
            lo,
            hi,
            sum,
            min,
            max,
        }
    }

    /// Number of domain values covered.
    #[inline]
    pub fn count(&self) -> usize {
        self.hi - self.lo + 1
    }

    /// The bucket mean — the point estimate for any index inside.
    #[inline]
    pub fn mean(&self) -> f64 {
        self.sum as f64 / self.count() as f64
    }

    /// Whether `index` falls inside this bucket.
    #[inline]
    pub fn contains(&self, index: usize) -> bool {
        self.lo <= index && index <= self.hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_range_stats() {
        let data = [5u64, 1, 9, 3];
        let b = Bucket::from_range(&data, 1, 3);
        assert_eq!(b.count(), 3);
        assert_eq!(b.sum, 13);
        assert_eq!(b.min, 1);
        assert_eq!(b.max, 9);
        assert!((b.mean() - 13.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn singleton_bucket() {
        let data = [7u64];
        let b = Bucket::from_range(&data, 0, 0);
        assert_eq!(b.count(), 1);
        assert_eq!(b.mean(), 7.0);
        assert!(b.contains(0));
        assert!(!b.contains(1));
    }

    #[test]
    fn contains_bounds() {
        let data = [0u64; 10];
        let b = Bucket::from_range(&data, 2, 5);
        assert!(!b.contains(1));
        assert!(b.contains(2));
        assert!(b.contains(5));
        assert!(!b.contains(6));
    }
}
