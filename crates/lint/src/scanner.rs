//! A comment/string/char-literal-aware Rust source scanner.
//!
//! The passes in this crate reason about *code* tokens (`unsafe`,
//! `.unwrap()`, `Ordering::Relaxed`, string literals) and about
//! *comment* text (`// SAFETY:`, `// ORDERING:`, `// LINT-ALLOW(...)`).
//! A plain `grep` confuses the two the moment `unsafe` shows up inside a
//! doc example or a raw string, so the scanner lexes each file into
//! [`Region`]s first and every pass works off two projections of the
//! source:
//!
//! * [`ScannedFile::masked`] — code bytes kept verbatim, every comment /
//!   string / char-literal byte blanked to a space (newlines preserved,
//!   so offsets and line numbers stay byte-for-byte aligned with the
//!   original).
//! * [`ScannedFile::comments`] — the inverse: only comment bytes kept
//!   (including doc comments), everything else blanked.
//!
//! The lexer handles the Rust token shapes that trip naive scanners:
//! nested block comments, escaped quotes, raw strings with any `#` arity
//! (`r"…"`, `r#"…"#`, `br##"…"##`), byte strings and byte chars,
//! raw identifiers (`r#try` is *not* a raw string), and the
//! char-literal-versus-lifetime ambiguity (`'a'` vs `<'a,'b>`).

use std::path::PathBuf;

/// What a byte range of the source is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A `//` comment (including `///` and `//!` doc comments), without
    /// the trailing newline.
    LineComment,
    /// A `/* … */` comment (nesting tracked), including delimiters.
    BlockComment,
    /// A `"…"` or `b"…"` string literal, including delimiters.
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`, …), including
    /// delimiters.
    RawStr,
    /// A char or byte-char literal (`'x'`, `b'\n'`), including quotes.
    Char,
}

/// One non-code byte range of a scanned file (`start..end`, exclusive).
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Classification of the range.
    pub kind: RegionKind,
    /// Byte offset of the first byte (the opening delimiter).
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

/// A lexed source file plus the derived projections the passes consume.
#[derive(Debug)]
pub struct ScannedFile {
    /// Workspace-relative path (as handed to [`ScannedFile::new`]).
    pub path: PathBuf,
    /// The raw source text.
    pub source: String,
    /// Source with every non-code byte blanked (newlines kept).
    pub masked: String,
    /// Source with every non-comment byte blanked (newlines kept).
    pub comments: String,
    /// All non-code regions, in source order.
    pub regions: Vec<Region>,
    /// Byte offset of the start of each line (line 0 starts at 0).
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)]`-gated items.
    test_spans: Vec<(usize, usize)>,
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Lexes `src` into its non-code regions. Runs in one pass, never
/// panics on malformed input: an unterminated literal or comment simply
/// extends to end of file, which is the useful behaviour for a linter.
fn lex_regions(src: &str) -> Vec<Region> {
    let b = src.as_bytes();
    let n = b.len();
    let mut regions = Vec::new();
    let mut i = 0;
    while i < n {
        match b[i] {
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i;
                while i < n && b[i] != b'\n' {
                    i += 1;
                }
                regions.push(Region {
                    kind: RegionKind::LineComment,
                    start,
                    end: i,
                });
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                let start = i;
                let mut depth = 1usize;
                i += 2;
                while i < n && depth > 0 {
                    if i + 1 < n && b[i] == b'/' && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if i + 1 < n && b[i] == b'*' && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                regions.push(Region {
                    kind: RegionKind::BlockComment,
                    start,
                    end: i,
                });
            }
            b'"' => {
                let start = i;
                i = scan_plain_string(b, i);
                regions.push(Region {
                    kind: RegionKind::Str,
                    start,
                    end: i,
                });
            }
            b'r' | b'b' if !prev_is_ident(b, i) => {
                if let Some((kind, end)) = scan_prefixed_literal(b, i) {
                    regions.push(Region {
                        kind,
                        start: i,
                        end,
                    });
                    i = end;
                } else {
                    i += 1;
                }
            }
            b'\'' if !prev_is_ident_or_quote(b, i) => {
                if let Some(end) = scan_char_literal(b, i) {
                    regions.push(Region {
                        kind: RegionKind::Char,
                        start: i,
                        end,
                    });
                    i = end;
                } else {
                    // A lifetime (`'a`) or loop label: skip the quote and
                    // the identifier so `'a'`-lookalikes inside generics
                    // (`<'a,'b>`) are not re-examined mid-token.
                    i += 1;
                    while i < n && is_ident(b[i]) {
                        i += 1;
                    }
                }
            }
            _ => i += 1,
        }
    }
    regions
}

/// True when the byte before `i` continues an identifier — which makes a
/// following `r`/`b` a plain identifier character, not a literal prefix.
fn prev_is_ident(b: &[u8], i: usize) -> bool {
    i > 0 && is_ident(b[i - 1])
}

/// True when `'` at `i` closes something rather than opening a literal
/// (`b'x'` is handled by the prefix path; `x'` never starts a char).
fn prev_is_ident_or_quote(b: &[u8], i: usize) -> bool {
    i > 0 && (is_ident(b[i - 1]) || b[i - 1] == b'\'')
}

/// Consumes a `"…"` literal starting at `i` (the opening quote);
/// returns the offset one past the closing quote.
fn scan_plain_string(b: &[u8], i: usize) -> usize {
    let n = b.len();
    let mut j = i + 1;
    while j < n {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return j + 1,
            _ => j += 1,
        }
    }
    n
}

/// Tries to consume an `r`/`b`-prefixed literal at `i`: raw strings of
/// any `#` arity, byte strings, byte chars, and the `br` combinations.
/// Returns `None` for raw identifiers (`r#match`) and plain identifiers.
fn scan_prefixed_literal(b: &[u8], i: usize) -> Option<(RegionKind, usize)> {
    let n = b.len();
    let mut j = i;
    let mut raw = false;
    if b[j] == b'b' {
        j += 1;
        if j < n && b[j] == b'\'' {
            // Byte char b'…'.
            return scan_char_literal(b, j).map(|end| (RegionKind::Char, end));
        }
    }
    if j < n && b[j] == b'r' {
        raw = true;
        j += 1;
    }
    if raw {
        let mut hashes = 0usize;
        while j < n && b[j] == b'#' {
            hashes += 1;
            j += 1;
        }
        if j < n && b[j] == b'"' {
            // Raw string: ends at `"` followed by `hashes` `#`s.
            j += 1;
            while j < n {
                if b[j] == b'"'
                    && b[j + 1..].len() >= hashes
                    && b[j + 1..j + 1 + hashes].iter().all(|&c| c == b'#')
                {
                    return Some((RegionKind::RawStr, j + 1 + hashes));
                }
                j += 1;
            }
            return Some((RegionKind::RawStr, n));
        }
        // `r#ident` (raw identifier) or a bare `r`: not a literal.
        return None;
    }
    if j < n && b[j] == b'"' {
        // Byte string b"…".
        return Some((RegionKind::Str, scan_plain_string(b, j)));
    }
    None
}

/// Tries to consume a char literal whose opening quote is at `i`.
/// Returns `None` when the quote starts a lifetime or loop label.
fn scan_char_literal(b: &[u8], i: usize) -> Option<usize> {
    let n = b.len();
    let j = i + 1;
    if j >= n {
        return None;
    }
    if b[j] == b'\\' {
        // Escaped char: `'\n'`, `'\''`, `'\u{1F600}'`, …
        let mut k = j + 1;
        if k < n && b[k] == b'u' {
            k += 1;
            if k < n && b[k] == b'{' {
                while k < n && b[k] != b'}' {
                    k += 1;
                }
                k += 1;
            }
        } else {
            k += 1; // the escaped character itself
        }
        while k < n && b[k] != b'\'' && b[k] != b'\n' {
            k += 1;
        }
        return if k < n && b[k] == b'\'' {
            Some(k + 1)
        } else {
            None
        };
    }
    if is_ident(b[j]) || !b[j].is_ascii() {
        // `'a'` is a char, `'a,` is a lifetime: a char literal's single
        // (possibly multi-byte) character is followed directly by `'`.
        let mut k = j;
        while k < n && (is_ident(b[k]) || !b[k].is_ascii()) {
            k += 1;
        }
        return if k < n && b[k] == b'\'' && k > j && (k - j == 1 || !b[j].is_ascii()) {
            Some(k + 1)
        } else {
            None
        };
    }
    if b[j] == b'\'' || b[j] == b'\n' {
        return None;
    }
    // Punctuation char like `'('`.
    if j + 1 < n && b[j + 1] == b'\'' {
        return Some(j + 2);
    }
    None
}

/// Blanks `range` in `out`, preserving newlines so that byte offsets
/// keep mapping to the same `(line, column)`.
fn blank(out: &mut [u8], start: usize, end: usize) {
    let end = end.min(out.len());
    for byte in &mut out[start..end] {
        if *byte != b'\n' {
            *byte = b' ';
        }
    }
}

impl ScannedFile {
    /// Lexes `source`, building both projections and locating
    /// `#[cfg(test)]` spans.
    pub fn new(path: PathBuf, source: String) -> ScannedFile {
        let regions = lex_regions(&source);
        let mut masked = source.clone().into_bytes();
        let mut comments = source.clone().into_bytes();
        let mut is_comment = vec![false; source.len()];
        for r in &regions {
            blank(&mut masked, r.start, r.end);
            if matches!(r.kind, RegionKind::LineComment | RegionKind::BlockComment) {
                for flag in &mut is_comment[r.start..r.end.min(source.len())] {
                    *flag = true;
                }
            }
        }
        for (i, byte) in comments.iter_mut().enumerate() {
            if !is_comment[i] && *byte != b'\n' {
                *byte = b' ';
            }
        }
        let masked = String::from_utf8_lossy(&masked).into_owned();
        let comments = String::from_utf8_lossy(&comments).into_owned();
        let mut line_starts = vec![0usize];
        for (i, byte) in source.bytes().enumerate() {
            if byte == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let test_spans = find_test_spans(&masked);
        ScannedFile {
            path,
            source,
            masked,
            comments,
            regions,
            line_starts,
            test_spans,
        }
    }

    /// 1-based line number of a byte offset.
    pub fn line_of(&self, offset: usize) -> usize {
        match self.line_starts.binary_search(&offset) {
            Ok(i) => i + 1,
            Err(i) => i,
        }
    }

    /// 1-based column (byte-based) of a byte offset.
    pub fn column_of(&self, offset: usize) -> usize {
        let line = self.line_of(offset);
        offset - self.line_starts[line - 1] + 1
    }

    /// Number of lines in the file.
    pub fn line_count(&self) -> usize {
        self.line_starts.len()
    }

    /// The byte range of a 1-based line (without the newline).
    fn line_range(&self, line: usize) -> (usize, usize) {
        let start = self.line_starts[line - 1];
        let end = self
            .line_starts
            .get(line)
            .map_or(self.source.len(), |&next| next.saturating_sub(1));
        (start, end.max(start))
    }

    /// The masked (code-only) text of a 1-based line.
    pub fn code_line(&self, line: usize) -> &str {
        let (start, end) = self.line_range(line);
        &self.masked[start..end]
    }

    /// The comment-only text of a 1-based line.
    pub fn comment_line(&self, line: usize) -> &str {
        let (start, end) = self.line_range(line);
        &self.comments[start..end]
    }

    /// Whether `offset` falls inside a `#[cfg(test)]`-gated item.
    pub fn in_test_span(&self, offset: usize) -> bool {
        self.test_spans
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// The contents of every string literal (plain, byte, or raw) with
    /// the byte offset of its opening delimiter. Raw-string hashes and
    /// `r`/`b` prefixes are stripped; escape sequences are left as
    /// written (a literal with escapes never matches a metric name).
    pub fn string_literals(&self) -> Vec<(usize, &str)> {
        let mut out = Vec::new();
        for r in &self.regions {
            let text = &self.source[r.start..r.end];
            let content = match r.kind {
                RegionKind::Str => text
                    .trim_start_matches('b')
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"')),
                RegionKind::RawStr => {
                    let inner = text.trim_start_matches('b').trim_start_matches('r');
                    let hashes = inner.len() - inner.trim_start_matches('#').len();
                    inner[hashes..]
                        .strip_prefix('"')
                        .and_then(|t| t.strip_suffix(&format!("\"{}", "#".repeat(hashes))))
                }
                _ => None,
            };
            if let Some(content) = content {
                out.push((r.start, content));
            }
        }
        out
    }

    /// Collects the comment text "attached above" a 1-based line: the
    /// contiguous run of comment-only, attribute-only, and blank lines
    /// immediately preceding it, stopping at the first line with other
    /// code. Attribute lines contribute their trailing comments, so a
    /// justification may sit above `#[target_feature(...)]`.
    pub fn comment_block_above(&self, line: usize) -> String {
        let mut collected = String::new();
        let mut l = line;
        while l > 1 {
            l -= 1;
            let code = self.code_line(l).trim();
            let comment = self.comment_line(l).trim();
            let attribute_only = code.starts_with('#') || code == "]";
            if code.is_empty() || attribute_only {
                if !comment.is_empty() {
                    collected.push_str(comment);
                    collected.push('\n');
                }
                continue;
            }
            break;
        }
        collected
    }

    /// The trailing comment on the 1-based line itself.
    pub fn trailing_comment(&self, line: usize) -> &str {
        self.comment_line(line).trim()
    }
}

/// Finds the byte spans of `#[cfg(test)]`-gated items by brace-matching
/// on the masked source (comments and strings already blanked, so every
/// brace seen is a real one).
fn find_test_spans(masked: &str) -> Vec<(usize, usize)> {
    let b = masked.as_bytes();
    let mut spans = Vec::new();
    let needle = b"#[cfg(test)]";
    let mut from = 0usize;
    while let Some(pos) = find_from(b, needle, from) {
        from = pos + needle.len();
        // Scan forward past further attributes/whitespace to the item;
        // an item that ends in `;` before any `{` has no body to span.
        let mut i = from;
        let mut open = None;
        while i < b.len() {
            match b[i] {
                b'{' => {
                    open = Some(i);
                    break;
                }
                b';' => break,
                _ => i += 1,
            }
        }
        let Some(open) = open else { continue };
        let mut depth = 0usize;
        let mut j = open;
        while j < b.len() {
            match b[j] {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        spans.push((pos, j + 1));
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        if depth != 0 {
            spans.push((pos, b.len()));
        }
    }
    spans
}

fn find_from(haystack: &[u8], needle: &[u8], from: usize) -> Option<usize> {
    if from >= haystack.len() {
        return None;
    }
    haystack[from..]
        .windows(needle.len())
        .position(|w| w == needle)
        .map(|p| p + from)
}

/// All word-boundary occurrences of `word` in the masked (code-only)
/// projection: neither neighbour byte continues an identifier.
pub fn code_word_occurrences(file: &ScannedFile, word: &str) -> Vec<usize> {
    let b = file.masked.as_bytes();
    let w = word.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(b, w, from) {
        from = pos + 1;
        let before_ok = pos == 0 || !is_ident(b[pos - 1]);
        let after = pos + w.len();
        let after_ok = after >= b.len() || !is_ident(b[after]);
        if before_ok && after_ok {
            out.push(pos);
        }
    }
    out
}

/// All occurrences of the exact byte sequence `pattern` in the masked
/// projection (no boundary check — used for `.unwrap()`-style patterns
/// that carry their own delimiters).
pub fn code_occurrences(file: &ScannedFile, pattern: &str) -> Vec<usize> {
    let b = file.masked.as_bytes();
    let mut out = Vec::new();
    let mut from = 0usize;
    while let Some(pos) = find_from(b, pattern.as_bytes(), from) {
        from = pos + 1;
        out.push(pos);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(src: &str) -> ScannedFile {
        ScannedFile::new(PathBuf::from("test.rs"), src.to_owned())
    }

    #[test]
    fn line_comments_are_blanked() {
        let f = scan("let x = 1; // unsafe unwrap\nlet y = 2;\n");
        assert!(!f.masked.contains("unsafe"));
        assert!(f.comments.contains("// unsafe unwrap"));
        assert_eq!(code_word_occurrences(&f, "unsafe"), Vec::<usize>::new());
    }

    #[test]
    fn nested_block_comments() {
        let f = scan("a /* outer /* inner */ still comment */ b\n");
        assert!(f.masked.contains('a'));
        assert!(f.masked.contains('b'));
        assert!(!f.masked.contains("inner"));
        assert!(!f.masked.contains("still"));
    }

    #[test]
    fn strings_and_escapes() {
        let f = scan(r#"let s = "unsafe \" still string"; call();"#);
        assert!(!f.masked.contains("unsafe"));
        assert!(f.masked.contains("call()"));
        let lits = f.string_literals();
        assert_eq!(lits.len(), 1);
        assert_eq!(lits[0].1, "unsafe \\\" still string");
    }

    #[test]
    fn raw_strings_any_hash_arity() {
        let f = scan("let a = r\"unsafe\"; let b = r#\"has \"quote\" inside\"#; let c = r##\"x\"# y\"##; f();");
        assert!(!f.masked.contains("unsafe"));
        assert!(!f.masked.contains("quote"));
        assert!(f.masked.contains("f();"));
        let lits = f.string_literals();
        assert_eq!(lits.len(), 3);
        assert_eq!(lits[0].1, "unsafe");
        assert_eq!(lits[1].1, "has \"quote\" inside");
        assert_eq!(lits[2].1, "x\"# y");
    }

    #[test]
    fn raw_identifiers_are_code() {
        let f = scan("let r#match = 1; let x = r#match;\n");
        assert!(f.masked.contains("r#match"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let f = scan(r##"let a = b"unsafe"; let b = b'u'; let c = br#"raw unsafe"#; g();"##);
        assert!(!f.masked.contains("unsafe"));
        assert!(f.masked.contains("g();"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = scan("fn f<'a, 'b>(x: &'a str) -> char { 'x' }\nstruct S<'s>(&'s str);\nlet q = '\\'';\nlet u = '\\u{1F600}';\nlet p = '(';\n");
        // Lifetimes survive as code; char contents are blanked.
        assert!(f.masked.contains("'a"));
        assert!(f.masked.contains("'s"));
        assert!(!f.masked.contains("'x'"));
        assert!(!f.masked.contains("1F600"));
        assert!(!f.masked.contains("'('"));
    }

    #[test]
    fn unsafe_in_macros_and_strings_not_matched() {
        let f = scan(concat!(
            "macro_rules! m { () => { \"unsafe\" }; }\n",
            "let msg = format!(\"not {} here\", \"unsafe\");\n",
            "unsafe { do_it() }\n",
        ));
        assert_eq!(code_word_occurrences(&f, "unsafe").len(), 1);
        assert_eq!(f.line_of(code_word_occurrences(&f, "unsafe")[0]), 3);
    }

    #[test]
    fn word_boundaries_respected() {
        let f = scan("let unsafe_code = 1; let not_unsafe = 2; unsafe {}\n");
        assert_eq!(code_word_occurrences(&f, "unsafe").len(), 1);
    }

    #[test]
    fn cfg_test_spans_cover_mod_body() {
        let src = concat!(
            "fn live() { x.unwrap(); }\n",
            "#[cfg(test)]\n",
            "mod tests {\n",
            "    #[test]\n",
            "    fn t() { y.unwrap(); }\n",
            "}\n",
            "fn after() { z.unwrap(); }\n"
        );
        let f = scan(src);
        let hits = code_occurrences(&f, ".unwrap()");
        assert_eq!(hits.len(), 3);
        assert!(!f.in_test_span(hits[0]));
        assert!(f.in_test_span(hits[1]));
        assert!(!f.in_test_span(hits[2]));
    }

    #[test]
    fn cfg_test_on_bodyless_item_spans_nothing() {
        let f = scan("#[cfg(test)]\nuse std::fmt;\nfn f() { a.unwrap(); }\n");
        let hits = code_occurrences(&f, ".unwrap()");
        assert_eq!(hits.len(), 1);
        assert!(!f.in_test_span(hits[0]));
    }

    #[test]
    fn comment_block_above_skips_attributes_and_blanks() {
        let src = concat!(
            "// SAFETY: justified here\n",
            "\n",
            "#[target_feature(enable = \"avx2\")]\n",
            "unsafe fn go() {}\n"
        );
        let f = scan(src);
        assert!(f.comment_block_above(4).contains("SAFETY:"));
    }

    #[test]
    fn comment_block_above_stops_at_code() {
        let src = concat!(
            "// SAFETY: belongs to the first impl\n",
            "unsafe impl Send for A {}\n",
            "unsafe impl Sync for A {}\n"
        );
        let f = scan(src);
        assert!(f.comment_block_above(2).contains("SAFETY:"));
        assert!(!f.comment_block_above(3).contains("SAFETY:"));
    }

    #[test]
    fn doc_comment_safety_section_is_visible() {
        let src = concat!(
            "/// Does a thing.\n",
            "///\n",
            "/// # Safety\n",
            "/// Caller promises the moon.\n",
            "pub unsafe fn moon() {}\n"
        );
        let f = scan(src);
        assert!(f.comment_block_above(5).contains("# Safety"));
    }

    #[test]
    fn masked_preserves_offsets_and_newlines() {
        let src = "let a = \"x\\ny\"; // c\nlet b = 'q';\n";
        let f = scan(src);
        assert_eq!(f.masked.len(), src.len());
        assert_eq!(f.comments.len(), src.len());
        for (i, byte) in src.bytes().enumerate() {
            if byte == b'\n' {
                assert_eq!(f.masked.as_bytes()[i], b'\n');
                assert_eq!(f.comments.as_bytes()[i], b'\n');
            }
        }
    }

    #[test]
    fn line_and_column_of() {
        let f = scan("abc\ndef\n");
        assert_eq!(f.line_of(0), 1);
        assert_eq!(f.line_of(4), 2);
        assert_eq!(f.column_of(5), 2);
        assert_eq!(f.line_count(), 3);
    }
}
