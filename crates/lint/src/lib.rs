//! `phe-lint`: the workspace invariant checker.
//!
//! The serving tier leans on hand-rolled `unsafe` (the `poll(2)` FFI in
//! `phe-service`'s reactor, mmap borrows in `phe-pathenum`, the AVX2
//! decode kernel), on a CAS publish protocol, and on a metric surface
//! scraped by three different consumers. The correctness arguments for
//! all of those used to live in prose; this crate turns them into a CI
//! gate:
//!
//! * [`scanner`] lexes Rust sources into code/comment/string regions so
//!   the passes never false-positive on `unsafe` inside a doc example
//!   or a raw string;
//! * [`passes`] implements the four checks (unsafe-audit,
//!   panic-freedom, atomic-ordering, metric-catalog) over the scanned
//!   workspace;
//! * [`config`] hand-parses `lint.toml` (pass scopes + allowlist);
//! * [`report`] renders findings as text or machine-readable JSON with
//!   per-pass exit-code bits.
//!
//! Run it as `cargo run -p phe-lint -- check [--json]`; see the
//! "Static analysis" section of `docs/ARCHITECTURE.md` for the pass
//! catalog and annotation grammar.

#![warn(missing_docs)]

pub mod config;
pub mod passes;
pub mod report;
pub mod scanner;
pub mod walk;

use std::path::{Path, PathBuf};

use passes::{LintContext, Pass};
use report::{PassSummary, Report};

/// Loads `lint.toml` (if present), scans the workspace under `root`,
/// and runs `selected` passes (all registered passes when empty).
///
/// # Errors
/// Config parse errors, unknown pass names, and IO failures.
pub fn run_check(root: &Path, selected: &[String]) -> Result<Report, String> {
    let config_path = root.join("lint.toml");
    let config = if config_path.is_file() {
        let text =
            std::fs::read_to_string(&config_path).map_err(|e| format!("reading lint.toml: {e}"))?;
        config::Config::parse(&text).map_err(|e| format!("lint.toml: {e}"))?
    } else {
        config::Config::default()
    };
    let allows = config
        .allow_entries()
        .map_err(|e| format!("lint.toml: {e}"))?;

    let excludes: Vec<String> = config
        .get_list("workspace", "exclude")
        .map(<[String]>::to_vec)
        .unwrap_or_default();
    let files = walk::rust_files(root, &excludes).map_err(|e| format!("walking {root:?}: {e}"))?;
    let mut scanned = Vec::with_capacity(files.len());
    for rel in files {
        let source = std::fs::read_to_string(root.join(&rel))
            .map_err(|e| format!("reading {}: {e}", walk::rel_string(&rel)))?;
        scanned.push(scanner::ScannedFile::new(rel, source));
    }
    let ctx = LintContext {
        root: root.to_path_buf(),
        files: scanned,
        config,
        allows,
    };

    let registry = passes::registry();
    let passes: Vec<&dyn Pass> = if selected.is_empty() {
        registry.iter().map(AsRef::as_ref).collect()
    } else {
        selected
            .iter()
            .map(|name| {
                registry
                    .iter()
                    .find(|p| p.name() == name)
                    .map(AsRef::as_ref)
                    .ok_or_else(|| format!("unknown pass `{name}` (see `phe-lint passes`)"))
            })
            .collect::<Result<_, _>>()?
    };

    let mut summaries = Vec::new();
    let mut findings = Vec::new();
    for pass in passes {
        let mut found = pass.run(&ctx);
        summaries.push(PassSummary {
            name: pass.name().to_owned(),
            bit: pass.bit(),
            findings: found.len(),
        });
        findings.append(&mut found);
    }
    Ok(Report::new(summaries, findings))
}

/// Finds the workspace root: `start` or the nearest ancestor whose
/// `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(current) = dir {
        let manifest = current.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = std::fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(current);
                }
            }
        }
        dir = current.parent().map(Path::to_path_buf);
    }
    None
}
