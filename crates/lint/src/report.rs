//! Findings and the text / JSON renderers.
//!
//! JSON is hand-rolled (the tool is dependency-free); the schema is
//! stable and covered by the golden-file tests in `tests/golden.rs`:
//!
//! ```json
//! {
//!   "version": 1,
//!   "passes": [{"name": "unsafe-audit", "bit": 1, "findings": 0, "ok": true}],
//!   "findings": [{"pass": "…", "file": "…", "line": 1, "column": 1, "message": "…"}],
//!   "total_findings": 0,
//!   "exit_code": 0
//! }
//! ```

/// One rule violation at a source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Name of the pass that produced it.
    pub pass: String,
    /// Workspace-relative file path (always `/`-separated).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// 1-based byte column.
    pub column: usize,
    /// Human-readable description of the violation.
    pub message: String,
}

/// Per-pass summary row for the report header.
#[derive(Debug, Clone)]
pub struct PassSummary {
    /// Pass name.
    pub name: String,
    /// The pass's exit-code bit.
    pub bit: u8,
    /// Findings it produced.
    pub findings: usize,
}

/// A finished run: summaries plus findings sorted by
/// `(file, line, column, pass)` so output is deterministic.
#[derive(Debug)]
pub struct Report {
    /// One row per executed pass.
    pub passes: Vec<PassSummary>,
    /// All findings, sorted.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Builds a report, sorting the findings.
    pub fn new(passes: Vec<PassSummary>, mut findings: Vec<Finding>) -> Report {
        findings.sort_by(|a, b| {
            (&a.file, a.line, a.column, &a.pass).cmp(&(&b.file, b.line, b.column, &b.pass))
        });
        Report { passes, findings }
    }

    /// The process exit code: the OR of every failing pass's bit
    /// (0 when clean).
    pub fn exit_code(&self) -> u8 {
        self.passes
            .iter()
            .filter(|p| p.findings > 0)
            .fold(0, |acc, p| acc | p.bit)
    }

    /// Human-readable rendering: `file:line:column: [pass] message`.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for f in &self.findings {
            out.push_str(&format!(
                "{}:{}:{}: [{}] {}\n",
                f.file, f.line, f.column, f.pass, f.message
            ));
        }
        for p in &self.passes {
            out.push_str(&format!(
                "pass {:<16} {:>4} finding{}  (exit bit {})\n",
                p.name,
                p.findings,
                if p.findings == 1 { "" } else { "s" },
                p.bit
            ));
        }
        out.push_str(&format!(
            "{} finding{}; exit code {}\n",
            self.findings.len(),
            if self.findings.len() == 1 { "" } else { "s" },
            self.exit_code()
        ));
        out
    }

    /// Machine-readable rendering (see module docs for the schema).
    pub fn render_json(&self) -> String {
        let mut out = String::from("{\n  \"version\": 1,\n  \"passes\": [");
        for (i, p) in self.passes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": {}, \"bit\": {}, \"findings\": {}, \"ok\": {}}}",
                json_string(&p.name),
                p.bit,
                p.findings,
                p.findings == 0
            ));
        }
        out.push_str("\n  ],\n  \"findings\": [");
        for (i, f) in self.findings.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"pass\": {}, \"file\": {}, \"line\": {}, \"column\": {}, \"message\": {}}}",
                json_string(&f.pass),
                json_string(&f.file),
                f.line,
                f.column,
                json_string(&f.message)
            ));
        }
        out.push_str(&format!(
            "\n  ],\n  \"total_findings\": {},\n  \"exit_code\": {}\n}}\n",
            self.findings.len(),
            self.exit_code()
        ));
        out
    }
}

/// Escapes `s` as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: usize, pass: &str) -> Finding {
        Finding {
            pass: pass.to_owned(),
            file: file.to_owned(),
            line,
            column: 1,
            message: "m".to_owned(),
        }
    }

    #[test]
    fn exit_code_ors_failing_bits() {
        let report = Report::new(
            vec![
                PassSummary {
                    name: "a".into(),
                    bit: 1,
                    findings: 2,
                },
                PassSummary {
                    name: "b".into(),
                    bit: 2,
                    findings: 0,
                },
                PassSummary {
                    name: "c".into(),
                    bit: 4,
                    findings: 1,
                },
            ],
            vec![],
        );
        assert_eq!(report.exit_code(), 5);
    }

    #[test]
    fn findings_sorted_deterministically() {
        let report = Report::new(
            vec![],
            vec![
                finding("b.rs", 1, "p"),
                finding("a.rs", 9, "p"),
                finding("a.rs", 2, "p"),
            ],
        );
        let order: Vec<_> = report
            .findings
            .iter()
            .map(|f| (f.file.as_str(), f.line))
            .collect();
        assert_eq!(order, vec![("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
