//! `lint.toml`: a hand-parsed TOML subset configuring the passes.
//!
//! The workspace has no crates.io access, so the parser covers exactly
//! the shapes the config uses — `[section]` / `[section.sub]` headers,
//! `key = "string"`, `key = ["a", "b"]` (single- or multi-line), and
//! `#` comments. Anything else is a hard error: a config the parser
//! cannot read must not silently relax a gate.
//!
//! ```toml
//! [workspace]
//! exclude = ["crates/compat", "target"]
//!
//! [pass.panic-freedom]
//! paths = ["crates/service/src", "crates/obs/src"]
//!
//! [pass.metric-catalog]
//! catalog = "crates/obs/src/names.rs"
//! doc = "docs/ARCHITECTURE.md"
//!
//! [allow]
//! entries = [
//!     # "<pass-name> <path>[:<line>]"
//!     "panic-freedom crates/example/src/lib.rs:42",
//! ]
//! ```

use std::collections::HashMap;

/// A parsed value: the subset the config grammar needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// `"…"`.
    Str(String),
    /// `["…", …]`.
    List(Vec<String>),
}

/// Parsed config: `section -> key -> value`.
#[derive(Debug, Default)]
pub struct Config {
    sections: HashMap<String, HashMap<String, Value>>,
}

/// One externally-allowed finding location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Pass the exemption applies to.
    pub pass: String,
    /// Workspace-relative path.
    pub path: String,
    /// Specific line, or `None` for the whole file.
    pub line: Option<usize>,
}

impl Config {
    /// Parses the TOML subset; returns a line-numbered error on any
    /// construct outside the grammar.
    pub fn parse(text: &str) -> Result<Config, String> {
        let mut config = Config::default();
        let mut section = String::new();
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_owned();
            if line.is_empty() {
                continue;
            }
            if let Some(header) = line.strip_prefix('[') {
                let Some(name) = header.strip_suffix(']') else {
                    return Err(format!("line {}: unterminated section header", idx + 1));
                };
                section = name.trim().to_owned();
                config.sections.entry(section.clone()).or_default();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected `key = value`", idx + 1));
            };
            let key = key.trim().trim_matches('"').to_owned();
            let mut value = value.trim().to_owned();
            // Multi-line arrays: keep consuming until the bracket closes.
            if value.starts_with('[') {
                while !value.trim_end().ends_with(']') {
                    let Some((_, next)) = lines.next() else {
                        return Err(format!("line {}: unterminated array", idx + 1));
                    };
                    value.push(' ');
                    value.push_str(strip_comment(next).trim());
                }
            }
            let parsed = parse_value(value.trim()).map_err(|e| format!("line {}: {e}", idx + 1))?;
            config
                .sections
                .entry(section.clone())
                .or_default()
                .insert(key, parsed);
        }
        Ok(config)
    }

    /// String value at `[section] key`, if present.
    pub fn get_str(&self, section: &str, key: &str) -> Option<&str> {
        match self.sections.get(section)?.get(key)? {
            Value::Str(s) => Some(s),
            Value::List(_) => None,
        }
    }

    /// List value at `[section] key`, if present.
    pub fn get_list(&self, section: &str, key: &str) -> Option<&[String]> {
        match self.sections.get(section)?.get(key)? {
            Value::List(items) => Some(items),
            Value::Str(_) => None,
        }
    }

    /// The `[allow] entries` list parsed into structured exemptions.
    pub fn allow_entries(&self) -> Result<Vec<AllowEntry>, String> {
        let Some(entries) = self.get_list("allow", "entries") else {
            return Ok(Vec::new());
        };
        entries
            .iter()
            .map(|entry| {
                let Some((pass, location)) = entry.split_once(' ') else {
                    return Err(format!(
                        "allow entry `{entry}`: expected `<pass> <path>[:line]`"
                    ));
                };
                let location = location.trim();
                let (path, line) = match location.rsplit_once(':') {
                    Some((path, line_text)) => match line_text.parse::<usize>() {
                        Ok(line) => (path, Some(line)),
                        Err(_) => (location, None),
                    },
                    None => (location, None),
                };
                Ok(AllowEntry {
                    pass: pass.to_owned(),
                    path: path.to_owned(),
                    line,
                })
            })
            .collect()
    }
}

fn strip_comment(line: &str) -> &str {
    // `#` only starts a comment outside a string literal.
    let mut in_string = false;
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_string => i += 1,
            b'"' => in_string = !in_string,
            b'#' if !in_string => return &line[..i],
            _ => {}
        }
        i += 1;
    }
    line
}

fn parse_value(text: &str) -> Result<Value, String> {
    if let Some(inner) = text.strip_prefix('[') {
        let Some(inner) = inner.strip_suffix(']') else {
            return Err("unterminated array".to_owned());
        };
        let mut items = Vec::new();
        for piece in split_top_level(inner) {
            let piece = piece.trim();
            if piece.is_empty() {
                continue;
            }
            match parse_value(piece)? {
                Value::Str(s) => items.push(s),
                Value::List(_) => return Err("nested arrays are not supported".to_owned()),
            }
        }
        return Ok(Value::List(items));
    }
    if let Some(inner) = text.strip_prefix('"') {
        let Some(inner) = inner.strip_suffix('"') else {
            return Err(format!("unterminated string `{text}`"));
        };
        return Ok(Value::Str(
            inner.replace("\\\"", "\"").replace("\\\\", "\\"),
        ));
    }
    Err(format!(
        "unsupported value `{text}` (strings and string arrays only)"
    ))
}

/// Splits an array body on commas outside string literals.
fn split_top_level(text: &str) -> Vec<String> {
    let mut items = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut chars = text.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\\' if in_string => {
                current.push(c);
                if let Some(next) = chars.next() {
                    current.push(next);
                }
            }
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            ',' if !in_string => {
                items.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        items.push(current);
    }
    items
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_strings_and_arrays() {
        let config = Config::parse(concat!(
            "# top comment\n",
            "[workspace]\n",
            "exclude = [\"crates/compat\", \"target\"] # trailing\n",
            "\n",
            "[pass.metric-catalog]\n",
            "catalog = \"crates/obs/src/names.rs\"\n",
        ))
        .unwrap();
        assert_eq!(
            config.get_list("workspace", "exclude").unwrap(),
            &["crates/compat".to_owned(), "target".to_owned()][..]
        );
        assert_eq!(
            config.get_str("pass.metric-catalog", "catalog"),
            Some("crates/obs/src/names.rs")
        );
    }

    #[test]
    fn multiline_arrays_and_allow_entries() {
        let config = Config::parse(concat!(
            "[allow]\n",
            "entries = [\n",
            "    # reasons welcome\n",
            "    \"panic-freedom crates/x/src/lib.rs:42\",\n",
            "    \"unsafe-audit crates/y/src/lib.rs\",\n",
            "]\n",
        ))
        .unwrap();
        let entries = config.allow_entries().unwrap();
        assert_eq!(
            entries,
            vec![
                AllowEntry {
                    pass: "panic-freedom".into(),
                    path: "crates/x/src/lib.rs".into(),
                    line: Some(42),
                },
                AllowEntry {
                    pass: "unsafe-audit".into(),
                    path: "crates/y/src/lib.rs".into(),
                    line: None,
                },
            ]
        );
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let config = Config::parse("[a]\nkey = \"value # not comment\"\n").unwrap();
        assert_eq!(config.get_str("a", "key"), Some("value # not comment"));
    }

    #[test]
    fn rejects_unsupported_values() {
        assert!(Config::parse("[a]\nkey = 42\n").is_err());
        assert!(Config::parse("[a\nkey = \"v\"\n").is_err());
        assert!(Config::parse("[a]\nkey value\n").is_err());
    }
}
