//! The pass registry and the four shipped passes.
//!
//! | pass | exit bit | invariant |
//! |---|---|---|
//! | `unsafe-audit` | 1 | every `unsafe` site carries a `// SAFETY:` justification (or a `# Safety` doc section) |
//! | `panic-freedom` | 2 | no panicking calls/macros in the configured serving hot paths |
//! | `atomic-ordering` | 4 | every `Ordering::Relaxed` carries an `// ORDERING:` soundness note |
//! | `metric-catalog` | 8 | metric names: code ↔ `phe-obs` catalog ↔ ARCHITECTURE.md table agree |
//!
//! Annotation grammar (all checked against the comment attached to the
//! finding line — trailing on the same line, or the contiguous
//! comment/attribute block directly above):
//!
//! * `// SAFETY: <why the preconditions hold>` — justifies an `unsafe`
//!   site; `# Safety` rustdoc sections on `unsafe fn`s also count.
//! * `// ORDERING: <why relaxed is sound>` — justifies
//!   `Ordering::Relaxed`.
//! * `// LINT-ALLOW(<key>): <reason>` — per-site escape hatch; the key
//!   is the pass's short key (`unsafe`, `panic`, `ordering`, `metric`)
//!   and the reason is mandatory.
//!
//! Test code is exempt from `panic-freedom` and `atomic-ordering`
//! (files under `tests/`/`benches/` and `#[cfg(test)]`-gated items);
//! `unsafe-audit` applies everywhere — unsafe in a test still needs a
//! justification.

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

use crate::config::{AllowEntry, Config};
use crate::report::Finding;
use crate::scanner::{code_occurrences, code_word_occurrences, ScannedFile};
use crate::walk::{is_test_path, under_any};

/// Everything a pass needs: the scanned workspace plus configuration.
pub struct LintContext {
    /// Workspace root (absolute).
    pub root: PathBuf,
    /// Every in-scope `.rs` file, scanned.
    pub files: Vec<ScannedFile>,
    /// Parsed `lint.toml`.
    pub config: Config,
    /// Parsed `[allow] entries`.
    pub allows: Vec<AllowEntry>,
}

impl LintContext {
    fn allowed(&self, pass: &str, file: &str, line: usize) -> bool {
        self.allows.iter().any(|entry| {
            entry.pass == pass && entry.path == file && entry.line.is_none_or(|l| l == line)
        })
    }
}

/// A named invariant check over the scanned workspace.
pub trait Pass {
    /// Stable pass name (used in reports, `--pass`, and allow entries).
    fn name(&self) -> &'static str;
    /// The bit this pass contributes to the exit code when it fails.
    fn bit(&self) -> u8;
    /// One-line description for `phe-lint passes`.
    fn description(&self) -> &'static str;
    /// Runs the check, returning all violations.
    fn run(&self, ctx: &LintContext) -> Vec<Finding>;
}

/// All shipped passes, in exit-bit order.
pub fn registry() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(UnsafeAudit),
        Box::new(PanicFreedom),
        Box::new(AtomicOrdering),
        Box::new(MetricCatalog),
    ]
}

/// True when the comment attached to `line` (trailing or the block
/// above) contains any of `tags`.
fn has_tag(file: &ScannedFile, line: usize, tags: &[&str]) -> bool {
    let trailing = file.trailing_comment(line);
    if tags.iter().any(|tag| trailing.contains(tag)) {
        return true;
    }
    let block = file.comment_block_above(line);
    tags.iter().any(|tag| block.contains(tag))
}

/// True when the attached comment carries `LINT-ALLOW(<key>): <reason>`
/// with a non-empty reason.
fn has_allow(file: &ScannedFile, line: usize, key: &str) -> bool {
    let needle = format!("LINT-ALLOW({key}):");
    let check = |text: &str| {
        text.match_indices(&needle).any(|(pos, _)| {
            text[pos + needle.len()..]
                .lines()
                .next()
                .is_some_and(|rest| !rest.trim().is_empty())
        })
    };
    check(file.trailing_comment(line)) || check(&file.comment_block_above(line))
}

fn finding(pass: &str, file: &ScannedFile, offset: usize, message: String) -> Finding {
    Finding {
        pass: pass.to_owned(),
        file: crate::walk::rel_string(&file.path),
        line: file.line_of(offset),
        column: file.column_of(offset),
        message,
    }
}

// ------------------------------------------------------------ unsafe-audit

/// Every `unsafe` keyword in code must be justified.
struct UnsafeAudit;

impl Pass for UnsafeAudit {
    fn name(&self) -> &'static str {
        "unsafe-audit"
    }
    fn bit(&self) -> u8 {
        1
    }
    fn description(&self) -> &'static str {
        "every `unsafe` block/fn/impl carries a `// SAFETY:` justification"
    }

    fn run(&self, ctx: &LintContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ctx.files {
            let rel = crate::walk::rel_string(&file.path);
            for pos in code_word_occurrences(file, "unsafe") {
                let line = file.line_of(pos);
                if has_tag(file, line, &["SAFETY:", "# Safety"])
                    || has_allow(file, line, "unsafe")
                    || ctx.allowed(self.name(), &rel, line)
                {
                    continue;
                }
                findings.push(finding(
                    self.name(),
                    file,
                    pos,
                    "`unsafe` without a `// SAFETY:` justification in the preceding \
                     comment (or a `# Safety` doc section)"
                        .to_owned(),
                ));
            }
        }
        findings
    }
}

// ----------------------------------------------------------- panic-freedom

/// Panicking constructs banned from the configured hot paths.
struct PanicFreedom;

/// Method-call patterns that panic (delimiters included so
/// `unwrap_or_else` and friends never match).
const PANIC_METHODS: &[&str] = &[
    ".unwrap()",
    ".unwrap_err()",
    ".unwrap_unchecked()",
    ".expect(",
    ".expect_err(",
];

/// Macros that panic (matched as `name` directly followed by `!`).
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

impl Pass for PanicFreedom {
    fn name(&self) -> &'static str {
        "panic-freedom"
    }
    fn bit(&self) -> u8 {
        2
    }
    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/todo!/unimplemented!/unreachable! in serving hot paths"
    }

    fn run(&self, ctx: &LintContext) -> Vec<Finding> {
        let scope: Vec<String> = ctx
            .config
            .get_list("pass.panic-freedom", "paths")
            .map(<[String]>::to_vec)
            .unwrap_or_default();
        let mut findings = Vec::new();
        for file in &ctx.files {
            let rel = crate::walk::rel_string(&file.path);
            if is_test_path(&rel) || (!scope.is_empty() && !under_any(&rel, &scope)) {
                continue;
            }
            let mut hits: Vec<(usize, &str)> = Vec::new();
            for pattern in PANIC_METHODS {
                for pos in code_occurrences(file, pattern) {
                    hits.push((pos, pattern.trim_end_matches('(')));
                }
            }
            for name in PANIC_MACROS {
                for pos in code_word_occurrences(file, name) {
                    if file.masked.as_bytes().get(pos + name.len()) == Some(&b'!') {
                        hits.push((pos, name));
                    }
                }
            }
            for (pos, token) in hits {
                if file.in_test_span(pos) {
                    continue;
                }
                let line = file.line_of(pos);
                if has_allow(file, line, "panic") || ctx.allowed(self.name(), &rel, line) {
                    continue;
                }
                findings.push(finding(
                    self.name(),
                    file,
                    pos,
                    format!(
                        "`{token}` in a serving hot path — return a structured error \
                         (or `// LINT-ALLOW(panic): <reason>`)"
                    ),
                ));
            }
        }
        findings
    }
}

// --------------------------------------------------------- atomic-ordering

/// `Ordering::Relaxed` must explain why relaxed is sound.
struct AtomicOrdering;

impl Pass for AtomicOrdering {
    fn name(&self) -> &'static str {
        "atomic-ordering"
    }
    fn bit(&self) -> u8 {
        4
    }
    fn description(&self) -> &'static str {
        "every `Ordering::Relaxed` carries an `// ORDERING:` soundness note"
    }

    fn run(&self, ctx: &LintContext) -> Vec<Finding> {
        let mut findings = Vec::new();
        for file in &ctx.files {
            let rel = crate::walk::rel_string(&file.path);
            if is_test_path(&rel) {
                continue;
            }
            for pos in code_occurrences(file, "Ordering::Relaxed") {
                let after = pos + "Ordering::Relaxed".len();
                if file
                    .masked
                    .as_bytes()
                    .get(after)
                    .is_some_and(|&b| b.is_ascii_alphanumeric() || b == b'_')
                {
                    continue;
                }
                if file.in_test_span(pos) {
                    continue;
                }
                let line = file.line_of(pos);
                if has_tag(file, line, &["ORDERING:"])
                    || has_allow(file, line, "ordering")
                    || ctx.allowed(self.name(), &rel, line)
                {
                    continue;
                }
                findings.push(finding(
                    self.name(),
                    file,
                    pos,
                    "`Ordering::Relaxed` without an `// ORDERING:` comment stating why \
                     relaxed is sound here"
                        .to_owned(),
                ));
            }
        }
        findings
    }
}

// ---------------------------------------------------------- metric-catalog

/// Metric family names must agree across code, the `phe-obs` catalog
/// module, and the ARCHITECTURE.md metric table.
struct MetricCatalog;

/// Marker delimiting the documentation metric table.
const DOC_START: &str = "<!-- phe-lint:metric-table:start -->";
/// Closing marker.
const DOC_END: &str = "<!-- phe-lint:metric-table:end -->";

impl MetricCatalog {
    /// Parses `pub const IDENT: &str = "name";` lines out of the
    /// catalog file. Returns `(ident, value, 1-based line)` rows.
    fn parse_catalog(file: &ScannedFile) -> Vec<(String, String, usize)> {
        let mut out = Vec::new();
        for (idx, line) in file.source.lines().enumerate() {
            let trimmed = line.trim_start();
            let Some(rest) = trimmed.strip_prefix("pub const ") else {
                continue;
            };
            let Some((ident, rest)) = rest.split_once(':') else {
                continue;
            };
            let Some((_, value)) = rest.split_once('=') else {
                continue;
            };
            let value = value.trim();
            let Some(value) = value.strip_prefix('"').and_then(|v| v.split('"').next()) else {
                continue;
            };
            out.push((ident.trim().to_owned(), value.to_owned(), idx + 1));
        }
        out
    }

    /// Extracts metric family names from the marked region of the doc
    /// file as `(name, 1-based line)`.
    fn parse_doc(text: &str, prefix: &str) -> Option<Vec<(String, usize)>> {
        let mut names = Vec::new();
        let mut inside = false;
        let mut seen_markers = false;
        for (idx, line) in text.lines().enumerate() {
            if line.contains(DOC_START) {
                inside = true;
                seen_markers = true;
                continue;
            }
            if line.contains(DOC_END) {
                inside = false;
                continue;
            }
            if !inside {
                continue;
            }
            let bytes = line.as_bytes();
            let mut from = 0usize;
            while let Some(pos) = line[from..].find(prefix).map(|p| p + from) {
                let mut end = pos;
                while end < bytes.len()
                    && (bytes[end].is_ascii_lowercase()
                        || bytes[end].is_ascii_digit()
                        || bytes[end] == b'_')
                {
                    end += 1;
                }
                if end > pos + prefix.len() {
                    names.push((line[pos..end].to_owned(), idx + 1));
                }
                from = end.max(pos + 1);
            }
        }
        seen_markers.then_some(names)
    }

    /// Whether a string literal's content is shaped like a metric
    /// family name: `<prefix>` followed by `[a-z0-9_]+`, nothing else.
    fn is_metric_shaped(content: &str, prefix: &str) -> bool {
        content.len() > prefix.len()
            && content.starts_with(prefix)
            && content
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_')
    }
}

impl Pass for MetricCatalog {
    fn name(&self) -> &'static str {
        "metric-catalog"
    }
    fn bit(&self) -> u8 {
        8
    }
    fn description(&self) -> &'static str {
        "metric names agree across code, the phe-obs catalog, and the ARCHITECTURE.md table"
    }

    fn run(&self, ctx: &LintContext) -> Vec<Finding> {
        let section = "pass.metric-catalog";
        let catalog_path = ctx
            .config
            .get_str(section, "catalog")
            .unwrap_or("crates/obs/src/names.rs")
            .to_owned();
        let doc_path = ctx
            .config
            .get_str(section, "doc")
            .unwrap_or("docs/ARCHITECTURE.md")
            .to_owned();
        let prefix = ctx
            .config
            .get_str(section, "prefix")
            .unwrap_or("phe_")
            .to_owned();

        let mut findings = Vec::new();
        fn fail(findings: &mut Vec<Finding>, file: &str, line: usize, message: String) {
            findings.push(Finding {
                pass: "metric-catalog".to_owned(),
                file: file.to_owned(),
                line,
                column: 1,
                message,
            });
        }

        let Some(catalog_file) = ctx
            .files
            .iter()
            .find(|f| crate::walk::rel_string(&f.path) == catalog_path)
        else {
            fail(
                &mut findings,
                &catalog_path,
                1,
                format!("metric catalog file `{catalog_path}` not found in the workspace"),
            );
            return findings;
        };
        let consts = Self::parse_catalog(catalog_file);
        let catalog: BTreeMap<&str, (&str, usize)> = consts
            .iter()
            .map(|(ident, value, line)| (value.as_str(), (ident.as_str(), *line)))
            .collect();

        // Code → catalog: every metric-shaped string literal outside the
        // catalog must name a cataloged family — and even then the
        // constant, not a duplicated literal, is required.
        for file in &ctx.files {
            let rel = crate::walk::rel_string(&file.path);
            if rel == catalog_path || is_test_path(&rel) {
                continue;
            }
            for (offset, content) in file.string_literals() {
                if !Self::is_metric_shaped(content, &prefix) || file.in_test_span(offset) {
                    continue;
                }
                let line = file.line_of(offset);
                if has_allow(file, line, "metric") || ctx.allowed(self.name(), &rel, line) {
                    continue;
                }
                let message = match catalog.get(content) {
                    Some((ident, _)) => format!(
                        "metric name literal `\"{content}\"` duplicates the catalog — use \
                         `phe_obs::names::{ident}`"
                    ),
                    None => format!(
                        "metric name literal `\"{content}\"` is not in the catalog \
                         (`{catalog_path}`)"
                    ),
                };
                findings.push(finding(self.name(), file, offset, message));
            }
        }

        // Catalog → code: a constant nobody references is drift waiting
        // to happen (the family it documents no longer exists).
        for (ident, value, line) in &consts {
            let referenced = ctx.files.iter().any(|f| {
                crate::walk::rel_string(&f.path) != catalog_path
                    && !code_word_occurrences(f, ident).is_empty()
            });
            if !referenced {
                fail(
                    &mut findings,
                    &catalog_path,
                    *line,
                    format!("catalog constant `{ident}` (\"{value}\") is never referenced"),
                );
            }
        }

        // Catalog ↔ doc table.
        let doc_text = match std::fs::read_to_string(ctx.root.join(&doc_path)) {
            Ok(text) => text,
            Err(e) => {
                fail(
                    &mut findings,
                    &doc_path,
                    1,
                    format!("cannot read doc file `{doc_path}`: {e}"),
                );
                return findings;
            }
        };
        let Some(doc_names) = Self::parse_doc(&doc_text, &prefix) else {
            fail(
                &mut findings,
                &doc_path,
                1,
                format!("doc file `{doc_path}` has no `{DOC_START}` … `{DOC_END}` region"),
            );
            return findings;
        };
        let doc_set: BTreeSet<&str> = doc_names.iter().map(|(n, _)| n.as_str()).collect();
        for (ident, value, line) in &consts {
            if !doc_set.contains(value.as_str()) {
                fail(
                    &mut findings,
                    &catalog_path,
                    *line,
                    format!(
                        "catalog family `{value}` (`{ident}`) is missing from the metric \
                         table in `{doc_path}`"
                    ),
                );
            }
        }
        let mut reported = BTreeSet::new();
        for (name, line) in &doc_names {
            if !catalog.contains_key(name.as_str()) && reported.insert(name.as_str()) {
                fail(
                    &mut findings,
                    &doc_path,
                    *line,
                    format!(
                        "documented family `{name}` has no constant in the catalog \
                         (`{catalog_path}`)"
                    ),
                );
            }
        }
        findings
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> ScannedFile {
        ScannedFile::new(PathBuf::from(path), src.to_owned())
    }

    fn ctx(files: Vec<ScannedFile>, toml: &str) -> LintContext {
        let config = Config::parse(toml).unwrap();
        let allows = config.allow_entries().unwrap();
        LintContext {
            root: PathBuf::from("."),
            files,
            config,
            allows,
        }
    }

    fn run(pass: &dyn Pass, ctx: &LintContext) -> Vec<Finding> {
        pass.run(ctx)
    }

    #[test]
    fn unsafe_audit_accepts_safety_and_doc_sections() {
        let src = concat!(
            "// SAFETY: justified.\n",
            "unsafe { a() }\n",
            "unsafe { b() } // SAFETY: trailing works too\n",
            "/// # Safety\n",
            "/// caller checks\n",
            "pub unsafe fn f() {}\n",
            "unsafe { c() }\n",
        );
        let ctx = ctx(vec![scan("crates/x/src/lib.rs", src)], "");
        let findings = run(&UnsafeAudit, &ctx);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 7);
    }

    #[test]
    fn unsafe_in_string_or_comment_is_invisible() {
        let src = "// unsafe here\nlet s = \"unsafe { }\";\nlet r = r#\"unsafe\"#;\n";
        let ctx = ctx(vec![scan("crates/x/src/lib.rs", src)], "");
        assert!(run(&UnsafeAudit, &ctx).is_empty());
    }

    #[test]
    fn panic_freedom_scopes_exemptions_and_allow() {
        let src = concat!(
            "fn hot() { x.unwrap(); }\n",
            "fn warm() -> u32 { y.expect(\"m\") }\n",
            "// LINT-ALLOW(panic): startup only, before serving begins\n",
            "fn init() { z.unwrap(); }\n",
            "fn never() { unreachable!() }\n",
            "fn ok() { x.unwrap_or_else(|| 3); }\n",
            "#[cfg(test)]\n",
            "mod tests { fn t() { q.unwrap(); } }\n",
        );
        let toml = "[pass.panic-freedom]\npaths = [\"crates/service/src\"]\n";
        let in_scope = ctx(vec![scan("crates/service/src/lib.rs", src)], toml);
        let findings = run(&PanicFreedom, &in_scope);
        let lines: Vec<usize> = findings.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![1, 2, 5], "{findings:?}");

        let out_of_scope = ctx(vec![scan("crates/other/src/lib.rs", src)], toml);
        assert!(run(&PanicFreedom, &out_of_scope).is_empty());
    }

    #[test]
    fn lint_allow_requires_a_reason() {
        let src = "// LINT-ALLOW(panic):\nfn f() { x.unwrap(); }\n";
        let ctx = ctx(vec![scan("crates/x/src/lib.rs", src)], "");
        assert_eq!(run(&PanicFreedom, &ctx).len(), 1);
    }

    #[test]
    fn atomic_ordering_requires_note() {
        let src = concat!(
            "// ORDERING: monotonic counter, no cross-variable invariant.\n",
            "let a = c.fetch_add(1, Ordering::Relaxed);\n",
            "let b = c.load(Ordering::Relaxed);\n",
            "let c2 = c.load(Ordering::SeqCst);\n",
        );
        let ctx = ctx(vec![scan("crates/x/src/lib.rs", src)], "");
        let findings = run(&AtomicOrdering, &ctx);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].line, 3);
    }

    #[test]
    fn allowlist_file_entries_suppress() {
        let src = "fn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        let toml = concat!(
            "[allow]\n",
            "entries = [\"panic-freedom crates/x/src/lib.rs:1\"]\n"
        );
        let ctx = ctx(vec![scan("crates/x/src/lib.rs", src)], toml);
        let findings = run(&PanicFreedom, &ctx);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 2);
    }

    #[test]
    fn metric_catalog_cross_checks_all_three_surfaces() {
        let names = concat!(
            "//! catalog\n",
            "pub const GOOD_TOTAL: &str = \"phe_good_total\";\n",
            "pub const DEAD_TOTAL: &str = \"phe_dead_total\";\n",
            "pub const UNDOCUMENTED: &str = \"phe_undocumented_total\";\n",
        );
        let user = concat!(
            "fn register() {\n",
            "    reg.counter(names::GOOD_TOTAL, \"h\");\n",
            "    reg.counter(names::UNDOCUMENTED, \"h\");\n",
            "    reg.counter(\"phe_rogue_total\", \"h\");\n",
            "    reg.counter(\"phe_good_total\", \"h\");\n",
            "}\n",
        );
        let root = std::env::temp_dir().join(format!("phe-lint-mc-{}", std::process::id()));
        std::fs::create_dir_all(root.join("docs")).unwrap();
        std::fs::write(
            root.join("docs/ARCHITECTURE.md"),
            concat!(
                "<!-- phe-lint:metric-table:start -->\n",
                "| `phe_good_total` | counter |\n",
                "| `phe_dead_total` | counter |\n",
                "| `phe_ghost_total` | counter |\n",
                "<!-- phe-lint:metric-table:end -->\n",
                "Prose mention of `phe_unparsed_total` outside markers is ignored.\n",
            ),
        )
        .unwrap();
        let mut ctx = ctx(
            vec![
                scan("crates/obs/src/names.rs", names),
                scan("crates/svc/src/metrics.rs", user),
            ],
            "",
        );
        ctx.root = root.clone();
        let findings = run(&MetricCatalog, &ctx);
        let messages: Vec<&str> = findings.iter().map(|f| f.message.as_str()).collect();
        assert!(
            messages
                .iter()
                .any(|m| m.contains("phe_rogue_total") && m.contains("not in the catalog")),
            "{messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("phe_good_total") && m.contains("duplicates")),
            "{messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("DEAD_TOTAL") && m.contains("never referenced")),
            "{messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("phe_undocumented_total")
                    && m.contains("missing from the metric")),
            "{messages:?}"
        );
        assert!(
            messages
                .iter()
                .any(|m| m.contains("phe_ghost_total") && m.contains("no constant")),
            "{messages:?}"
        );
        assert!(
            !messages.iter().any(|m| m.contains("phe_unparsed_total")),
            "{messages:?}"
        );
        assert_eq!(findings.len(), 5, "{findings:?}");
        std::fs::remove_dir_all(&root).ok();
    }
}
