//! Workspace file discovery: every `.rs` file under the root, minus the
//! configured excludes, returned sorted so runs are deterministic.

use std::path::{Path, PathBuf};

/// Recursively collects `.rs` files under `root`, skipping any path
/// whose workspace-relative form starts with one of `excludes` (and
/// `target/` plus hidden directories unconditionally). Paths come back
/// workspace-relative, `/`-separated, sorted.
pub fn rust_files(root: &Path, excludes: &[String]) -> std::io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let Ok(rel) = path.strip_prefix(root) else {
                continue;
            };
            let rel_text = rel_string(rel);
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with('.') || name == "target" {
                continue;
            }
            if excludes
                .iter()
                .any(|prefix| rel_text == *prefix || rel_text.starts_with(&format!("{prefix}/")))
            {
                continue;
            }
            let file_type = entry.file_type()?;
            if file_type.is_dir() {
                stack.push(path);
            } else if file_type.is_file() && rel_text.ends_with(".rs") {
                out.push(PathBuf::from(rel_text));
            }
        }
    }
    out.sort();
    Ok(out)
}

/// A path as a `/`-separated string (stable across platforms for
/// reports and config matching).
pub fn rel_string(path: &Path) -> String {
    path.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Whether `rel` (workspace-relative, `/`-separated) lies under any of
/// the `/`-separated `prefixes`.
pub fn under_any(rel: &str, prefixes: &[String]) -> bool {
    prefixes
        .iter()
        .any(|prefix| rel == *prefix || rel.starts_with(&format!("{prefix}/")))
}

/// Whether a workspace-relative path is test-only by location:
/// integration tests and benches are outside the panic/ordering gates.
pub fn is_test_path(rel: &str) -> bool {
    rel.split('/')
        .any(|part| part == "tests" || part == "benches")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn under_any_matches_prefixes_not_substrings() {
        let prefixes = vec!["crates/service/src".to_owned()];
        assert!(under_any("crates/service/src/lib.rs", &prefixes));
        assert!(under_any("crates/service/src", &prefixes));
        assert!(!under_any("crates/service/src2/lib.rs", &prefixes));
        assert!(!under_any("crates/other/src/lib.rs", &prefixes));
    }

    #[test]
    fn test_paths_detected() {
        assert!(is_test_path("crates/service/tests/scale.rs"));
        assert!(is_test_path("crates/bench/benches/serving.rs"));
        assert!(!is_test_path("crates/service/src/lib.rs"));
        assert!(!is_test_path("crates/testscore/src/lib.rs"));
    }
}
