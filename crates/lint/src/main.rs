//! CLI for the workspace invariant checker.
//!
//! ```text
//! phe-lint check [--json] [--root DIR] [--pass NAME]...
//! phe-lint passes
//! ```
//!
//! Exit codes: `0` clean; otherwise the OR of each failing pass's bit
//! (unsafe-audit 1, panic-freedom 2, atomic-ordering 4,
//! metric-catalog 8); `64` for usage/config/IO errors.

use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
phe-lint: workspace invariant checker

USAGE:
    phe-lint check [--json] [--root DIR] [--pass NAME]...
    phe-lint passes

OPTIONS:
    --json        machine-readable report on stdout
    --root DIR    workspace root (default: nearest ancestor with [workspace])
    --pass NAME   run only the named pass (repeatable)

Configuration is read from <root>/lint.toml when present. Exit code is
the OR of failing pass bits; 64 for usage/config errors.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("check") => check(&args[1..]),
        Some("passes") => {
            for pass in phe_lint::passes::registry() {
                println!(
                    "{:<16} (bit {}) {}",
                    pass.name(),
                    pass.bit(),
                    pass.description()
                );
            }
            ExitCode::SUCCESS
        }
        Some("--help" | "-h" | "help") | None => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        Some(other) => {
            eprintln!("unknown command `{other}`\n\n{USAGE}");
            ExitCode::from(64)
        }
    }
}

fn check(args: &[String]) -> ExitCode {
    let mut json = false;
    let mut root: Option<PathBuf> = None;
    let mut passes: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => json = true,
            "--root" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("--root needs a value\n\n{USAGE}");
                    return ExitCode::from(64);
                };
                root = Some(PathBuf::from(value));
            }
            "--pass" => {
                i += 1;
                let Some(value) = args.get(i) else {
                    eprintln!("--pass needs a value\n\n{USAGE}");
                    return ExitCode::from(64);
                };
                passes.push(value.clone());
            }
            other => {
                eprintln!("unknown option `{other}`\n\n{USAGE}");
                return ExitCode::from(64);
            }
        }
        i += 1;
    }
    let root = match root {
        Some(dir) => dir,
        None => {
            let cwd = match std::env::current_dir() {
                Ok(cwd) => cwd,
                Err(e) => {
                    eprintln!("cannot read current dir: {e}");
                    return ExitCode::from(64);
                }
            };
            match phe_lint::find_workspace_root(&cwd) {
                Some(dir) => dir,
                None => {
                    eprintln!("no [workspace] Cargo.toml above {}", cwd.display());
                    return ExitCode::from(64);
                }
            }
        }
    };
    match phe_lint::run_check(&root, &passes) {
        Ok(report) => {
            if json {
                print!("{}", report.render_json());
            } else {
                print!("{}", report.render_text());
            }
            ExitCode::from(report.exit_code())
        }
        Err(e) => {
            eprintln!("phe-lint: {e}");
            ExitCode::from(64)
        }
    }
}
