//! Fixture metric catalog for the golden tests.

/// Referenced by literal in `violations.rs` (a "duplicates the catalog"
/// finding) and present in the doc table.
pub const FIXTURE_TOTAL: &str = "phe_fixture_total";

/// Documented but never referenced in code ("never referenced").
pub const UNUSED_TOTAL: &str = "phe_unused_total";

/// Never referenced AND absent from the doc table (two findings).
pub const UNDOCUMENTED_TOTAL: &str = "phe_undocumented_total";
