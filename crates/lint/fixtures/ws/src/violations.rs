//! Deliberate violations for phe-lint's golden tests. Every finding the
//! tool must produce — and every annotated site it must NOT flag — lives
//! in this file; `tests/golden.rs` pins the exact JSON report.

use std::sync::atomic::{AtomicU64, Ordering};

static N: AtomicU64 = AtomicU64::new(0);

pub fn bad_unsafe() -> u8 {
    let bytes = [1u8, 2];
    unsafe { *bytes.as_ptr() }
}

pub fn good_unsafe() -> u8 {
    let bytes = [3u8];
    // SAFETY: the pointer comes from a live local array.
    unsafe { *bytes.as_ptr() }
}

pub fn bad_panics(input: Option<u32>) -> u32 {
    let value = input.unwrap();
    if value > 9000 {
        panic!("too big");
    }
    value
}

pub fn allowed_panic(input: Option<u32>) -> u32 {
    // LINT-ALLOW(panic): fixture demonstrating the in-source escape hatch.
    input.expect("fixture")
}

pub fn bad_ordering() -> u64 {
    N.fetch_add(1, Ordering::Relaxed)
}

pub fn good_ordering() -> u64 {
    // ORDERING: fixture counter; nothing synchronizes with it.
    N.load(Ordering::Relaxed)
}

pub fn allowed_ordering() -> u64 {
    N.load(Ordering::Relaxed) // allowlisted by line in lint.toml
}

pub fn metric_names() -> (&'static str, &'static str) {
    ("phe_fixture_total", "phe_rogue_total")
}

pub fn not_metrics() -> (&'static str, &'static str) {
    // Neither is metric-shaped: wrong prefix / uppercase.
    ("other_total", "phe_Upper")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt_from_panic_and_ordering() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
