//! Golden-file test: running the checker over the seeded fixture
//! workspace must reproduce `tests/golden.json` exactly — every finding,
//! every pass summary, and the composite exit code.

use std::path::{Path, PathBuf};

use serde::Value;

fn fixture_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/ws")
}

fn run_fixture() -> phe_lint::report::Report {
    phe_lint::run_check(&fixture_root(), &[]).expect("fixture check runs")
}

#[test]
fn fixture_exit_code_sets_every_pass_bit() {
    let report = run_fixture();
    assert_eq!(report.exit_code(), 1 | 2 | 4 | 8);
}

#[test]
fn json_report_matches_golden_file() {
    let report = run_fixture();
    let actual: Value =
        serde_json::from_str(&report.render_json()).expect("render_json emits valid JSON");
    let golden_text =
        std::fs::read_to_string(Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden.json"))
            .expect("golden file present");
    let golden: Value = serde_json::from_str(&golden_text).expect("golden file parses");
    assert_eq!(
        actual, golden,
        "report drifted from tests/golden.json — if the change is \
         intentional, regenerate with `cargo run -p phe-lint -- check \
         --json --root crates/lint/fixtures/ws`"
    );
}

#[test]
fn text_report_pins_file_line_column() {
    let text = run_fixture().render_text();
    // One representative finding per pass, with exact positions.
    for needle in [
        "src/violations.rs:11:5: [unsafe-audit]",
        "src/violations.rs:21:22: [panic-freedom]",
        "src/violations.rs:23:9: [panic-freedom]",
        "src/violations.rs:34:20: [atomic-ordering]",
        "src/violations.rs:47:27: [metric-catalog]",
        "docs/DOC.md:10:1: [metric-catalog]",
    ] {
        assert!(text.contains(needle), "missing `{needle}` in:\n{text}");
    }
    // Annotated/allowlisted/test-exempt sites must NOT be findings.
    for absent in [
        "violations.rs:17", // SAFETY-annotated unsafe
        "violations.rs:29", // LINT-ALLOW(panic)
        "violations.rs:38", // ORDERING-annotated Relaxed
        "violations.rs:43", // allowlisted by lint.toml line entry
        "violations.rs:59", // unwrap inside #[cfg(test)]
    ] {
        assert!(!text.contains(absent), "unexpected `{absent}` in:\n{text}");
    }
}

#[test]
fn selecting_a_single_pass_restricts_the_bitmask() {
    let report = phe_lint::run_check(&fixture_root(), &["panic-freedom".to_owned()])
        .expect("fixture check runs");
    assert_eq!(report.exit_code(), 2);
    let text = report.render_text();
    assert!(!text.contains("[unsafe-audit]"), "{text}");
    assert!(!text.contains("[metric-catalog]"), "{text}");
}

#[test]
fn unknown_pass_is_a_config_error() {
    let err = phe_lint::run_check(&fixture_root(), &["no-such-pass".to_owned()])
        .expect_err("unknown pass must be refused");
    assert!(err.contains("no-such-pass"), "{err}");
}
