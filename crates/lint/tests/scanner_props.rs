//! Property tests for the source scanner: random concatenations of
//! code, comment, string, raw-string, and char-literal snippets must
//! never confuse the lexer — `unsafe` is found exactly as often as it
//! appears in *code*, masking preserves offsets, and regions partition
//! the non-code text without overlap.

use std::path::PathBuf;

use phe_lint::scanner::{code_word_occurrences, RegionKind, ScannedFile};
use proptest::prelude::*;
use proptest::strategies::collection::vec;
use proptest::strategies::sample::select;

/// A snippet plus how many *code* occurrences of the word `unsafe` it
/// contributes. Every snippet is self-delimiting (comments carry their
/// own terminating newline) so any concatenation stays lexically valid.
fn snippets() -> Vec<(&'static str, usize)> {
    vec![
        // Plain code, with and without the needle.
        ("let x = 1; ", 0),
        ("unsafe { f() } ", 1),
        ("pub unsafe fn g() {} ", 1),
        ("let letters_unsafe_ident = 2; ", 0), // word boundary: no match
        ("let r = r#unsafe_raw_ident; ", 0),   // raw identifier, not raw string
        // Comments hiding the needle.
        ("// unsafe in a line comment\n", 0),
        ("/* unsafe in a block */ ", 0),
        ("/* nested /* unsafe */ still comment */ ", 0),
        ("/// doc about unsafe\n", 0),
        // String and char literals hiding the needle.
        ("let s = \"unsafe in a string\"; ", 0),
        ("let s = \"escaped \\\" unsafe\"; ", 0),
        ("let s = r\"raw unsafe\"; ", 0),
        ("let s = r#\"raw # unsafe \"# ; ", 0),
        ("let s = br##\"bytes \"# unsafe\"## ; ", 0),
        ("let b = b\"unsafe bytes\"; ", 0),
        ("let c = 'u'; ", 0),
        ("let c = '\\''; ", 0),
        ("let l: &'static str = \"x\"; ", 0), // lifetime, not a char literal
        // A string that *ends* mid-word to stress boundary handling.
        ("let s = \"unsafe\"; unsafe { h() } ", 1),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn unsafe_found_exactly_in_code(
        picks in vec(select((0..snippets().len()).collect()), 0..24),
    ) {
        let pool = snippets();
        let mut source = String::new();
        let mut expected = 0usize;
        for &i in &picks {
            let (text, hits) = pool[i];
            source.push_str(text);
            expected += hits;
        }
        let file = ScannedFile::new(PathBuf::from("crates/x/src/lib.rs"), source.clone());
        let found = code_word_occurrences(&file, "unsafe");
        prop_assert_eq!(
            found.len(), expected,
            "source: {:?}\nmasked: {:?}", source, file.masked
        );
        // Every hit must sit on the literal word in the original source.
        for pos in found {
            prop_assert_eq!(&source[pos..pos + 6], "unsafe");
        }
    }

    #[test]
    fn masking_preserves_length_and_newlines(
        picks in vec(select((0..snippets().len()).collect()), 0..24),
    ) {
        let pool = snippets();
        let source: String = picks.iter().map(|&i| pool[i].0).collect();
        let file = ScannedFile::new(PathBuf::from("x.rs"), source.clone());
        prop_assert_eq!(file.masked.len(), source.len());
        prop_assert_eq!(file.comments.len(), source.len());
        for (a, b) in source.bytes().zip(file.masked.bytes()) {
            prop_assert_eq!(a == b'\n', b == b'\n', "newline moved");
        }
        // Code bytes survive masking verbatim; masked bytes are blanks.
        for (i, (a, b)) in source.bytes().zip(file.masked.bytes()).enumerate() {
            prop_assert!(b == a || b == b' ', "byte {i}: {a} -> {b}");
        }
    }

    #[test]
    fn regions_are_sorted_disjoint_and_typed(
        picks in vec(select((0..snippets().len()).collect()), 0..24),
    ) {
        let pool = snippets();
        let source: String = picks.iter().map(|&i| pool[i].0).collect();
        let file = ScannedFile::new(PathBuf::from("x.rs"), source.clone());
        let mut last_end = 0usize;
        for region in &file.regions {
            prop_assert!(region.start >= last_end, "overlap at {}", region.start);
            prop_assert!(region.end <= source.len());
            prop_assert!(region.start < region.end);
            last_end = region.end;
            // Comment regions land in the comments projection, literal
            // regions stay blank there; both are blanked in masked.
            let is_comment = matches!(
                region.kind,
                RegionKind::LineComment | RegionKind::BlockComment
            );
            let comment_slice = &file.comments[region.start..region.end];
            if is_comment {
                prop_assert_eq!(comment_slice, &source[region.start..region.end]);
            } else {
                prop_assert!(
                    comment_slice.bytes().all(|b| b == b' ' || b == b'\n'),
                    "literal leaked into comments projection"
                );
            }
        }
    }

    #[test]
    fn string_literal_contents_roundtrip(
        picks in vec(select((0..snippets().len()).collect()), 0..24),
    ) {
        let pool = snippets();
        let source: String = picks.iter().map(|&i| pool[i].0).collect();
        let file = ScannedFile::new(PathBuf::from("x.rs"), source.clone());
        for (offset, content) in file.string_literals() {
            prop_assert!(offset < source.len());
            // The reported content must appear in the source at or after
            // the literal's start (delimiters and prefixes are stripped).
            if !content.is_empty() {
                prop_assert!(
                    source[offset..].contains(content),
                    "content {:?} not at {} in {:?}", content, offset, source
                );
            }
        }
    }
}
