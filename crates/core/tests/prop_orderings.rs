//! Property tests for the ordering framework: every ordering is a true
//! bijection, stage structure holds, and the combinatorics agree with
//! brute force on arbitrary inputs.

use phe_core::base_set::SumBasedL2Ordering;
use phe_core::combinatorics::{
    dist, integer_partitions, multiset_permutation_rank, multiset_permutation_unrank, nop,
};
use phe_core::ordering::{
    DomainOrdering, LexicographicalOrdering, NumericalOrdering, SumBasedOrdering,
};
use phe_core::{LabelPath, LabelRanking, PathDomain};
use proptest::prelude::*;

/// An arbitrary frequency assignment for up to 5 labels.
fn arb_freqs() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(0u64..10_000, 2..6)
}

fn all_orderings(freqs: &[u64], k: usize) -> Vec<Box<dyn DomainOrdering>> {
    let n = freqs.len();
    let domain = PathDomain::new(n, k);
    let alph = LabelRanking::identity(n);
    let card = LabelRanking::cardinality_from_frequencies(freqs);
    // Synthetic pair frequencies for the L2 ordering: product marginals
    // with a deterministic perturbation, so they are correlated but fixed.
    let pair_freqs: Vec<u64> = (0..n * n)
        .map(|i| {
            let (a, b) = (i / n, i % n);
            freqs[a].saturating_mul(freqs[b]) / 100 + ((i as u64 * 7919) % 13)
        })
        .collect();
    vec![
        Box::new(NumericalOrdering::new(domain, alph.clone(), "num-alph")),
        Box::new(NumericalOrdering::new(domain, card.clone(), "num-card")),
        Box::new(LexicographicalOrdering::new(domain, alph, "lex-alph")),
        Box::new(LexicographicalOrdering::new(
            domain,
            card.clone(),
            "lex-card",
        )),
        Box::new(SumBasedOrdering::new(domain, card)),
        Box::new(SumBasedL2Ordering::from_frequencies(
            domain,
            freqs,
            &pair_freqs,
        )),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn orderings_are_bijections(freqs in arb_freqs(), k in 1usize..4) {
        let domain = PathDomain::new(freqs.len(), k);
        for o in all_orderings(&freqs, k) {
            let mut seen = vec![false; domain.size() as usize];
            for i in 0..domain.size() {
                let p = o.path_at(i);
                // Unranking then ranking is the identity.
                prop_assert_eq!(o.index_of(&p), i, "{} at {}", o.name(), i);
                // Every index yields a distinct path (bijectivity).
                let canonical = domain.canonical_index(&p) as usize;
                prop_assert!(!seen[canonical], "{} maps two indexes to {}", o.name(), p);
                seen[canonical] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "{} missed paths", o.name());
        }
    }

    #[test]
    fn ranking_then_unranking_roundtrips_from_paths(freqs in arb_freqs(), k in 1usize..4) {
        let domain = PathDomain::new(freqs.len(), k);
        for o in all_orderings(&freqs, k) {
            // Walk paths in canonical order; index_of then path_at must
            // return the same path.
            for canonical in 0..domain.size() {
                let p = domain.canonical_path(canonical);
                let idx = o.index_of(&p);
                prop_assert!(idx < domain.size(), "{}: index out of range", o.name());
                prop_assert_eq!(o.path_at(idx), p, "{} at path {}", o.name(), p);
            }
        }
    }

    #[test]
    fn orderings_are_length_major(freqs in arb_freqs(), k in 2usize..4) {
        // All orderings in this framework place shorter paths first.
        let domain = PathDomain::new(freqs.len(), k);
        for o in all_orderings(&freqs, k) {
            if o.name() == "lex-alph" || o.name() == "lex-card" {
                continue; // dictionary order interleaves lengths by design
            }
            let mut last_len = 1usize;
            for i in 0..domain.size() {
                let len = o.path_at(i).len();
                prop_assert!(len >= last_len, "{}: length dropped at {}", o.name(), i);
                last_len = len;
            }
        }
    }

    #[test]
    fn sum_based_groups_by_summed_rank(freqs in arb_freqs(), k in 1usize..4) {
        let domain = PathDomain::new(freqs.len(), k);
        let card = LabelRanking::cardinality_from_frequencies(&freqs);
        let o = SumBasedOrdering::new(domain, card);
        for m in 1..=k {
            let lo = domain.offset_of_length(m);
            let hi = lo + domain.length_block(m);
            let mut last = 0u32;
            for i in lo..hi {
                let sum = o.summed_rank(&o.path_at(i));
                prop_assert!(sum >= last, "sum regressed at {}", i);
                last = sum;
            }
        }
    }

    #[test]
    fn dist_is_consistent_with_partitions(n in 1usize..7, m in 1usize..5, sr in 0u64..40) {
        let parts = integer_partitions(sr, m, n as u64);
        let total: u64 = parts.iter().map(|p| nop(p)).sum();
        prop_assert_eq!(total, dist(sr, m, n));
    }

    #[test]
    fn permutation_rank_unrank_roundtrip(values in prop::collection::vec(1u32..6, 1..7)) {
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let total = nop(&sorted);
        // Spot-check a spread of ranks instead of all (total can be 720).
        for i in [0, total / 3, total / 2, total.saturating_sub(1)] {
            if i < total {
                let perm = multiset_permutation_unrank(i, &sorted).unwrap();
                prop_assert_eq!(multiset_permutation_rank(&perm), i);
                let mut back = perm.clone();
                back.sort_unstable();
                prop_assert_eq!(&back, &sorted, "permutation changed the multiset");
            }
        }
    }

    #[test]
    fn lex_order_matches_reference_comparator(freqs in arb_freqs()) {
        let k = 3usize;
        let domain = PathDomain::new(freqs.len(), k);
        let ranking = LabelRanking::cardinality_from_frequencies(&freqs);
        let o = LexicographicalOrdering::new(domain, ranking.clone(), "lex-card");
        let mut paths: Vec<LabelPath> = domain.iter().collect();
        paths.sort_by(|a, b| {
            let ra: Vec<u32> = a.iter().map(|l| ranking.rank(l)).collect();
            let rb: Vec<u32> = b.iter().map(|l| ranking.rank(l)).collect();
            ra.cmp(&rb)
        });
        for (i, p) in paths.iter().enumerate() {
            prop_assert_eq!(o.index_of(p), i as u64);
        }
    }

    #[test]
    fn numerical_order_matches_reference_comparator(freqs in arb_freqs()) {
        let k = 3usize;
        let domain = PathDomain::new(freqs.len(), k);
        let ranking = LabelRanking::cardinality_from_frequencies(&freqs);
        let o = NumericalOrdering::new(domain, ranking.clone(), "num-card");
        let mut paths: Vec<LabelPath> = domain.iter().collect();
        paths.sort_by(|a, b| {
            let ka = (a.len(), a.iter().map(|l| ranking.rank(l)).collect::<Vec<u32>>());
            let kb = (b.len(), b.iter().map(|l| ranking.rank(l)).collect::<Vec<u32>>());
            ka.cmp(&kb)
        });
        for (i, p) in paths.iter().enumerate() {
            prop_assert_eq!(o.index_of(p), i as u64);
        }
    }
}
