#![warn(missing_docs)]

//! # phe-core — histogram domain ordering for path selectivity estimation
//!
//! The reproduction of the paper's contribution (EDBT 2018). The problem:
//! a histogram over the domain of label paths `Lk` can only be accurate if
//! paths with similar selectivity sit *next to each other* in the domain —
//! otherwise every bucket mixes wildly different frequencies and the
//! bucket mean estimates none of them. The paper frames this as choosing a
//! **domain ordering**, decomposed into:
//!
//! * a **ranking rule** ([`ranking::LabelRanking`]) — a bijection between
//!   base labels and ranks `[1, |B|]`: *alphabetical* or *cardinality*
//!   (ascending frequency);
//! * an **ordering rule** — a bijection between label paths and indexes
//!   `[0, |Lk|)` built on top of the ranks:
//!   [`ordering::NumericalOrdering`], [`ordering::LexicographicalOrdering`],
//!   or the paper's novel [`ordering::SumBasedOrdering`] (Algorithms 1–2,
//!   Formulas 3–5), which groups paths by the *sum* of their label ranks so
//!   that paths composed of similar-frequency labels — and hence, under
//!   approximate label independence, of similar selectivity — share buckets.
//!
//! The five ordering methods of the paper are `num-alph`, `num-card`,
//! `lex-alph`, `lex-card`, and `sum-based` (always cardinality-ranked);
//! [`OrderingKind`] enumerates them plus the future-work `sum-based-L2`
//! extension over the richer base set `B = L²` ([`base_set`]).
//!
//! [`estimator::PathSelectivityEstimator`] is the one-stop API:
//!
//! ```
//! use phe_core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
//! use phe_datasets::{erdos_renyi, LabelDistribution};
//! use phe_graph::LabelId;
//!
//! let g = erdos_renyi(60, 240, 3, LabelDistribution::Zipf { exponent: 1.0 }, 7);
//! let est = PathSelectivityEstimator::build(
//!     &g,
//!     EstimatorConfig {
//!         k: 3,
//!         beta: 16,
//!         ordering: OrderingKind::SumBased,
//!         histogram: HistogramKind::VOptimalGreedy,
//!         threads: 1,
//!         retain_catalog: false,
//!         retain_sparse: false,
//!     },
//! ).unwrap();
//! let e = est.estimate(&[LabelId(0), LabelId(1)]);
//! assert!(e >= 0.0);
//! ```
//!
//! ## Scaling
//!
//! The paper's domain `Lk` grows as `Σ |L|^i`, but real graphs realize
//! only the label paths actual edge chains spell out. The build pipeline
//! is therefore **sparse-first**: [`PathSelectivityEstimator::build`]
//! streams a sharded sparse catalog (`phe-pathenum`'s `SparseCatalog`,
//! sorted `(canonical_index, count)` runs) through
//! [`DomainOrdering::ordered_index`] — the combinatorial canonical →
//! ordered remap of Formulas 3–5 — into the sparse histogram builders of
//! `phe-histogram`, which charge O(1) per zero run. The dense `Vec<u64>`
//! over the full domain is never materialized, so `(|L|, k)` points whose
//! dense vector would not even allocate (e.g. `|L| = 64, k = 6`: ~70
//! billion paths, half a terabyte dense) build in seconds from tens of
//! megabytes of realized counts. Sparse and dense pipelines produce
//! **bit-identical** estimates (property-tested across every ordering ×
//! histogram kind in `tests/sparse_equivalence.rs`).
//!
//! Ground truth is the one thing that still costs `O(|Lk|)`: set
//! [`EstimatorConfig::retain_catalog`] (`estimator` module) to keep the
//! dense catalog for [`PathSelectivityEstimator::exact`] /
//! [`PathSelectivityEstimator::accuracy_report`] on dense-feasible
//! domains; leave it off (the default) and the estimator retains only
//! buckets + ordering state — the serving footprint. Snapshots are
//! versioned (currently v3, which records the delta lineage below); every
//! older format restores unchanged.
//!
//! ## Keeping statistics fresh
//!
//! A serving system absorbs graph updates without recounting from
//! scratch: build with [`EstimatorConfig::retain_sparse`] (keeps the
//! `O(realized paths)` sparse catalog), then feed each batch of edge
//! changes to [`PathSelectivityEstimator::apply_delta`]. The delta is
//! counted over only the touched paths (`phe-pathenum`'s `compute_delta`),
//! k-way merged into the retained catalog with cancellation of zeroed
//! entries, and the ordering + histogram are re-derived — bit-identical
//! to a full rebuild, at a cost proportional to the change. Provenance
//! travels along: the snapshot records the originating full build's id
//! and the number of deltas applied since (format v3).
//!
//! ## Serving
//!
//! Everything here is `Send + Sync` after construction (asserted at
//! compile time in [`estimator`] and [`snapshot`]), so a built estimator
//! — or one restored from an [`snapshot::EstimatorSnapshot`] — can be
//! shared across threads behind an `Arc` with no locking. The
//! `phe-service` crate builds the production serving tier on exactly that:
//! a registry of named estimators with atomic snapshot hot-swap, batched
//! estimation with a sharded LRU cache, and a TCP request loop (`phe
//! serve`). Use [`PathSelectivityEstimator::into_shared`] /
//! [`PathSelectivityEstimator::into_serving_parts`] at the boundary.

pub mod base_set;
pub mod combinatorics;
pub mod domain;
pub mod estimator;
pub mod eval;
pub mod label_histogram;
pub mod maintenance;
pub mod ordering;
pub mod path;
pub mod ranking;
pub mod snapshot;

pub use domain::PathDomain;
pub use estimator::{
    DeltaError, DriftReport, EstimatorConfig, HistogramKind, PathSelectivityEstimator,
};
pub use eval::{evaluate_configuration, ordered_frequencies};
pub use label_histogram::LabelPathHistogram;
pub use maintenance::{DriftThreshold, RebuildPolicy, RebuildTrigger};
pub use ordering::{
    DomainOrdering, IdealOrdering, LexicographicalOrdering, NumericalOrdering, OrderingKind,
    SumBasedOrdering,
};
pub use path::{LabelPath, MAX_K};
pub use ranking::LabelRanking;
pub use snapshot::{EstimatorSnapshot, SnapshotError};
