//! The label-path value type.

use std::fmt;

use phe_graph::LabelId;
use serde::{Deserialize, Serialize};

/// Maximum supported path length `k`.
///
/// Eight covers the paper's `k ≤ 6` with headroom while keeping
/// [`LabelPath`] a 17-byte `Copy` value (no heap traffic in the hot
/// ranking/unranking loops).
pub const MAX_K: usize = 8;

/// A label path `ℓ = l1/l2/…/lm`, `1 ≤ m ≤ MAX_K`, stored inline.
///
/// The derived `Ord` compares length first, then labels positionally —
/// *not* one of the paper's domain orderings (those are provided by
/// `phe_core::ordering`); it exists so paths can key ordered maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LabelPath {
    len: u8,
    labels: [u16; MAX_K],
}

impl LabelPath {
    /// Builds a path from a label slice.
    ///
    /// # Panics
    /// Panics if the slice is empty or longer than [`MAX_K`].
    pub fn new(labels: &[LabelId]) -> LabelPath {
        assert!(
            !labels.is_empty() && labels.len() <= MAX_K,
            "path length {} out of range 1..={MAX_K}",
            labels.len()
        );
        let mut arr = [0u16; MAX_K];
        for (slot, l) in arr.iter_mut().zip(labels) {
            *slot = l.0;
        }
        LabelPath {
            len: labels.len() as u8,
            labels: arr,
        }
    }

    /// A single-label path.
    pub fn single(label: LabelId) -> LabelPath {
        LabelPath::new(&[label])
    }

    /// Path length `m = |ℓ|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Paths are never empty; this always returns `false` (provided to
    /// satisfy the `len`/`is_empty` API convention).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The `i`-th label (0-based).
    #[inline]
    pub fn label(&self, i: usize) -> LabelId {
        debug_assert!(i < self.len());
        LabelId(self.labels[i])
    }

    /// The labels as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[u16] {
        &self.labels[..self.len as usize]
    }

    /// The labels as owned `LabelId`s.
    pub fn label_ids(&self) -> Vec<LabelId> {
        self.as_slice().iter().map(|&l| LabelId(l)).collect()
    }

    /// The labels as a borrowed `LabelId` slice (no allocation).
    #[inline]
    pub fn as_label_ids(&self) -> &[LabelId] {
        let raw = self.as_slice();
        // SAFETY: LabelId is repr(transparent) over u16 — identical layout,
        // alignment, and validity.
        unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<LabelId>(), raw.len()) }
    }

    /// Iterates the labels.
    pub fn iter(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.as_slice().iter().map(|&l| LabelId(l))
    }

    /// Returns this path extended by one label.
    ///
    /// # Panics
    /// Panics at [`MAX_K`].
    pub fn appended(&self, label: LabelId) -> LabelPath {
        assert!(self.len() < MAX_K, "path already at MAX_K");
        let mut out = *self;
        out.labels[out.len as usize] = label.0;
        out.len += 1;
        out
    }

    /// The prefix of length `n`.
    ///
    /// # Panics
    /// Panics if `n` is 0 or exceeds the length.
    pub fn prefix(&self, n: usize) -> LabelPath {
        assert!(n >= 1 && n <= self.len());
        let mut out = *self;
        out.len = n as u8;
        for slot in &mut out.labels[n..] {
            *slot = 0;
        }
        out
    }

    /// Renders with label names from an interner, e.g. `knows/likes`.
    pub fn display_with<'a>(
        &'a self,
        labels: &'a phe_graph::LabelInterner,
    ) -> impl fmt::Display + 'a {
        NamedPath { path: self, labels }
    }
}

impl fmt::Display for LabelPath {
    /// Renders label *ids* separated by `/`, e.g. `l0/l2/l1`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

struct NamedPath<'a> {
    path: &'a LabelPath,
    labels: &'a phe_graph::LabelInterner,
}

impl fmt::Display for NamedPath<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, l) in self.path.iter().enumerate() {
            if i > 0 {
                write!(f, "/")?;
            }
            match self.labels.name(l) {
                Some(name) => write!(f, "{name}")?,
                None => write!(f, "?{}", l.0)?,
            }
        }
        Ok(())
    }
}

impl From<&[LabelId]> for LabelPath {
    fn from(labels: &[LabelId]) -> Self {
        LabelPath::new(labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn construction_and_access() {
        let p = LabelPath::new(&[l(3), l(0), l(5)]);
        assert_eq!(p.len(), 3);
        assert_eq!(p.label(0), l(3));
        assert_eq!(p.label(2), l(5));
        assert_eq!(p.as_slice(), &[3, 0, 5]);
    }

    #[test]
    fn appended_and_prefix() {
        let p = LabelPath::single(l(1));
        let q = p.appended(l(2)).appended(l(3));
        assert_eq!(q.as_slice(), &[1, 2, 3]);
        assert_eq!(q.prefix(2).as_slice(), &[1, 2]);
        assert_eq!(q.prefix(2), LabelPath::new(&[l(1), l(2)]));
    }

    #[test]
    fn prefix_normalizes_tail_for_equality() {
        let a = LabelPath::new(&[l(1), l(2), l(3)]).prefix(1);
        let b = LabelPath::single(l(1));
        assert_eq!(a, b);
        // Hash-equality consistency via a set.
        let mut set = std::collections::HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
    }

    #[test]
    fn display_formats() {
        let p = LabelPath::new(&[l(0), l(2)]);
        assert_eq!(p.to_string(), "l0/l2");
        let mut interner = phe_graph::LabelInterner::new();
        interner.intern("knows").unwrap();
        interner.intern("likes").unwrap();
        interner.intern("follows").unwrap();
        assert_eq!(p.display_with(&interner).to_string(), "knows/follows");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn empty_path_rejected() {
        LabelPath::new(&[]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn overlong_path_rejected() {
        let labels: Vec<LabelId> = (0..9).map(l).collect();
        LabelPath::new(&labels);
    }

    #[test]
    fn copy_size_is_small() {
        assert!(std::mem::size_of::<LabelPath>() <= 18);
    }

    #[test]
    fn ord_is_length_major() {
        let a = LabelPath::new(&[l(5)]);
        let b = LabelPath::new(&[l(0), l(0)]);
        assert!(a < b);
    }
}
