//! Sum-based ordering (paper §3.3) — the paper's contribution.
//!
//! The index of a path is determined by three nested partitions of the
//! domain:
//!
//! 1. **length** — shorter paths first (`sumn = |L|^n` positions per
//!    block);
//! 2. **summed rank** — within a length block, paths are grouped by the
//!    sum of their label ranks, ascending; group sizes come from
//!    [`crate::combinatorics::dist`] (Formula 3);
//! 3. **combination, then permutation** — within a summed-rank group,
//!    rank multisets are enumerated in Formula 4 order
//!    ([`crate::combinatorics::integer_partitions`]), and the distinct
//!    permutations of each multiset in ascending lexicographic order
//!    (Algorithm 1 / Formula 5).
//!
//! Under cardinality ranking, a low summed rank means "composed of
//! low-frequency labels", so — to the extent that path selectivity is
//! monotone in its labels' frequencies — the resulting sequence is
//! approximately sorted by selectivity, which is exactly what a V-optimal
//! histogram wants.
//!
//! Unranking is the paper's Algorithm 2. Ranking (needed at estimation
//! time) is the inverse, not spelled out in the paper; it mirrors the same
//! three stages. Both are `O(poly(k) · |groups|)`; the per-`(m, sr)`
//! partition lists are memoized **process-wide** for large alphabets
//! (see [`Groups::Shared`]'s docs — repeated builds, e.g. incremental
//! delta rebuilds, pay the partition enumeration once per group ever;
//! disable with [`SumBasedOrdering::with_cache`] to measure the uncached
//! cost — that switch is what the Table 4 timing ablation uses).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::combinatorics::{
    dist_table, integer_partitions, multiset_permutation_rank, multiset_permutation_unrank, nop,
    Partition,
};
use crate::domain::PathDomain;
use crate::ordering::DomainOrdering;
use crate::path::LabelPath;
use crate::ranking::LabelRanking;

/// A fast, non-cryptographic hasher for the packed multiset keys.
///
/// The keys are already well-mixed bit patterns under our control (no
/// HashDoS exposure), so a single multiply-xor round beats SipHash by a
/// wide margin in the estimation hot path.
#[derive(Default, Clone)]
struct PackHasher(u64);

impl std::hash::Hasher for PackHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (not used by u128 keys).
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u128(&mut self, v: u128) {
        let lo = v as u64;
        let hi = (v >> 64) as u64;
        let mut h = lo ^ hi.rotate_left(32) ^ self.0;
        h = h.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= h >> 29;
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        self.0 = h ^ (h >> 32);
    }
}

type PackBuild = std::hash::BuildHasherDefault<PackHasher>;

/// Precomputed index for one `(m, sr)` group: the partitions in
/// Formula 4 order, their cumulative permutation-count offsets, and a
/// multiset → offset map for O(1) ranking.
#[derive(Debug)]
struct GroupIndex {
    /// Partitions in enumeration order.
    partitions: Vec<Partition>,
    /// `offsets[i]` = Σ nop(partitions[..i]); one extra entry holds the
    /// group total.
    offsets: Vec<u64>,
    /// Packed sorted-rank multiset → its offset in the group.
    by_multiset: HashMap<u128, u64, PackBuild>,
}

impl GroupIndex {
    fn new(partitions: Vec<Partition>) -> GroupIndex {
        let mut offsets = Vec::with_capacity(partitions.len() + 1);
        let mut by_multiset =
            HashMap::with_capacity_and_hasher(partitions.len(), PackBuild::default());
        let mut acc = 0u64;
        for p in &partitions {
            offsets.push(acc);
            by_multiset.insert(pack_multiset(p), acc);
            acc += nop(p);
        }
        offsets.push(acc);
        GroupIndex {
            partitions,
            offsets,
            by_multiset,
        }
    }
}

/// Packs a sorted rank multiset (≤ 8 ranks, each < 2¹⁶) into a `u128` key.
#[inline]
fn pack_multiset(sorted: &[u32]) -> u128 {
    let mut key = 0u128;
    for &r in sorted {
        key = (key << 16) | r as u128;
    }
    key
}

/// Group storage: precomputed flat table for small alphabets (no locks in
/// the hot path), process-wide memoization for large ones, or fully
/// uncached for the Table 4 timing ablation.
#[derive(Debug)]
enum Groups {
    /// `table[(m − 1) · (k·n + 1) + sr]`, rows for every reachable group.
    Eager(Vec<Option<Arc<GroupIndex>>>),
    /// Consult [`shared_groups`], keyed `(n, m, sr)`.
    Shared,
    Uncached,
}

/// The process-wide `(n, m, sr) → GroupIndex` memo behind
/// [`Groups::Shared`]. A partition group depends only on those three
/// values, so every sum-based ordering in the process can share one memo
/// — which is what keeps repeated builds cheap: a serving system that
/// re-derives its ordering per incremental delta (or per background
/// rebuild) pays the Formula 4 partition enumeration once per group
/// *ever*, not once per build.
type SharedGroupMap = RwLock<HashMap<(u16, u8, u32), Arc<GroupIndex>>>;

/// Bound on the process-wide memo. One `(|L|, k)` configuration needs at
/// most `k · (k·(|L| − 1) + 1)` groups (a few thousand at `|L| = 64,
/// k = 6`), so steady-state serving never hits this; it only trips when
/// many *different* large alphabets pass through one process, and then
/// the map is cleared wholesale — an epoch eviction that keeps memory
/// bounded at the cost of one re-warm (outstanding `Arc`s stay valid).
const SHARED_GROUP_CAP: usize = 1 << 14;

fn shared_groups() -> &'static SharedGroupMap {
    static GROUPS: std::sync::OnceLock<SharedGroupMap> = std::sync::OnceLock::new();
    GROUPS.get_or_init(|| RwLock::new(HashMap::new()))
}

/// Alphabets up to this size get the eagerly precomputed group table
/// (total partition count stays small); larger alphabets memoize lazily.
const EAGER_LIMIT: usize = 32;

/// Sum-based ordering over a ranking rule (the paper pairs it with
/// cardinality ranking).
#[derive(Debug)]
pub struct SumBasedOrdering {
    domain: PathDomain,
    ranking: LabelRanking,
    /// `cum_dist[m][i]` = Σ of the first `i` group sizes of length-`m`
    /// paths (groups ordered by summed rank `sr = m, m+1, …`): stage 2
    /// becomes one subtraction when ranking and one binary search when
    /// unranking.
    cum_dist: Vec<Vec<u64>>,
    groups: Groups,
}

impl SumBasedOrdering {
    /// Creates the ordering with partition memoization enabled.
    pub fn new(domain: PathDomain, ranking: LabelRanking) -> SumBasedOrdering {
        assert_eq!(
            ranking.len(),
            domain.label_count(),
            "ranking over {} labels but domain over {}",
            ranking.len(),
            domain.label_count()
        );
        let dist = dist_table(domain.max_len(), domain.label_count());
        let n = domain.label_count();
        let k = domain.max_len();
        let mut cum_dist: Vec<Vec<u64>> = vec![Vec::new(); k + 1];
        for m in 1..=k {
            let mut row = Vec::with_capacity(m * n - m + 2);
            row.push(0);
            let mut acc = 0u64;
            for &d in &dist[m][m..=(m * n)] {
                acc += d;
                row.push(acc);
            }
            cum_dist[m] = row;
        }
        let groups = if n <= EAGER_LIMIT {
            let row = k * n + 1;
            let mut table = vec![None; k * row];
            for m in 1..=k {
                for sr in m..=(m * n) {
                    table[(m - 1) * row + sr] = Some(Arc::new(GroupIndex::new(
                        integer_partitions(sr as u64, m, n as u64),
                    )));
                }
            }
            Groups::Eager(table)
        } else {
            Groups::Shared
        };
        SumBasedOrdering {
            domain,
            ranking,
            cum_dist,
            groups,
        }
    }

    /// Enables or disables group precomputation/memoization (for timing
    /// ablations: the uncached variant pays the full Formula 4 partition
    /// enumeration on every call, which is the cost model the paper's
    /// Table 4 discussion assumes).
    pub fn with_cache(mut self, enabled: bool) -> SumBasedOrdering {
        if !enabled {
            self.groups = Groups::Uncached;
        } else if matches!(self.groups, Groups::Uncached) {
            self.groups = Groups::Shared;
        }
        self
    }

    /// The ranking rule in use.
    pub fn ranking(&self) -> &LabelRanking {
        &self.ranking
    }

    /// The summed rank of a path — Table 1 of the paper.
    pub fn summed_rank(&self, path: &LabelPath) -> u32 {
        path.iter().map(|l| self.ranking.rank(l)).sum()
    }

    fn group(&self, sr: u64, m: usize) -> GroupHandle<'_> {
        let n = self.domain.label_count() as u64;
        match &self.groups {
            Groups::Eager(table) => {
                let row = self.domain.max_len() * n as usize + 1;
                GroupHandle::Borrowed(
                    table[(m - 1) * row + sr as usize]
                        .as_ref()
                        .expect("(m, sr) group outside the reachable range"),
                )
            }
            Groups::Shared => {
                let cache = shared_groups();
                let key = (n as u16, m as u8, sr as u32);
                if let Some(hit) = cache.read().get(&key) {
                    return GroupHandle::Owned(Arc::clone(hit));
                }
                let computed = Arc::new(GroupIndex::new(integer_partitions(sr, m, n)));
                let mut cache = cache.write();
                if cache.len() >= SHARED_GROUP_CAP {
                    cache.clear();
                }
                GroupHandle::Owned(
                    cache
                        .entry(key)
                        .or_insert_with(|| Arc::clone(&computed))
                        .clone(),
                )
            }
            Groups::Uncached => {
                GroupHandle::Owned(Arc::new(GroupIndex::new(integer_partitions(sr, m, n))))
            }
        }
    }
}

/// Borrowed-or-owned access to a [`GroupIndex`]: the eager table hands
/// out references (no refcount traffic in the hot path); the lazy and
/// uncached variants hand out owned `Arc`s.
enum GroupHandle<'a> {
    Borrowed(&'a GroupIndex),
    Owned(Arc<GroupIndex>),
}

impl std::ops::Deref for GroupHandle<'_> {
    type Target = GroupIndex;

    #[inline]
    fn deref(&self) -> &GroupIndex {
        match self {
            GroupHandle::Borrowed(g) => g,
            GroupHandle::Owned(g) => g,
        }
    }
}

impl DomainOrdering for SumBasedOrdering {
    fn name(&self) -> &'static str {
        "sum-based"
    }

    fn domain(&self) -> &PathDomain {
        &self.domain
    }

    /// The inverse of Algorithm 2: stage offsets are *added* instead of
    /// subtracted.
    fn reuse_key(&self) -> Option<Vec<u32>> {
        Some(self.ranking.rank_sequence())
    }

    fn index_of(&self, path: &LabelPath) -> u64 {
        let m = path.len();
        let mut ranks = [0u32; crate::path::MAX_K];
        let mut sr = 0u64;
        for (slot, l) in ranks.iter_mut().zip(path.iter()) {
            *slot = self.ranking.rank(l);
            sr += *slot as u64;
        }
        let ranks = &ranks[..m];

        // Stage 1: length block.
        let mut index = self.domain.offset_of_length(m);
        // Stage 2: all smaller summed-rank groups, via the cumulative table.
        index += self.cum_dist[m][(sr as usize) - m];
        // Stage 3: our combination's offset in the group (hash lookup on
        // the cached path; linear Formula-4 scan when uncached), then the
        // permutation's rank inside the combination.
        let mut sorted = [0u32; crate::path::MAX_K];
        sorted[..m].copy_from_slice(ranks);
        let sorted = &mut sorted[..m];
        sorted.sort_unstable();
        let group = self.group(sr, m);
        let offset = group
            .by_multiset
            .get(&pack_multiset(sorted))
            .copied()
            .expect("every rank multiset with sum sr is a partition of sr");
        index + offset + multiset_permutation_rank(ranks)
    }

    /// Algorithm 2 (`unranking_in_sumbased`).
    fn path_at(&self, index: u64) -> LabelPath {
        let (m, mut rem) = self.domain.length_of_index(index);
        let n = self.domain.label_count() as u64;

        // Stage 2: find the summed-rank group by binary search over the
        // cumulative group sizes (the paper's Algorithm 2 scans linearly;
        // both orders are equivalent).
        let row = &self.cum_dist[m];
        let g = row.partition_point(|&c| c <= rem) - 1;
        rem -= row[g];
        let sr = (m + g) as u64;
        debug_assert!(sr <= m as u64 * n, "index beyond the last group");

        // Stage 3: find the combination by binary search over cumulative
        // permutation counts, then unrank the permutation inside it.
        let group = self.group(sr, m);
        let pos = group.offsets.partition_point(|&o| o <= rem) - 1;
        debug_assert!(pos < group.partitions.len(), "stage-2 residual too large");
        let p = &group.partitions[pos];
        rem -= group.offsets[pos];
        let perm = multiset_permutation_unrank(rem, p).expect("rank within nop(p) by construction");
        let labels: Vec<phe_graph::LabelId> =
            perm.iter().map(|&r| self.ranking.unrank(r)).collect();
        LabelPath::new(&labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::LabelId;

    fn card_ranking() -> LabelRanking {
        LabelRanking::cardinality_from_frequencies(&[20, 100, 80])
    }

    #[test]
    fn round_trip_exhaustive_small() {
        let d = PathDomain::new(3, 3);
        let o = SumBasedOrdering::new(d, card_ranking());
        for i in 0..d.size() {
            let p = o.path_at(i);
            assert_eq!(o.index_of(&p), i, "round trip at {i} ({p})");
        }
    }

    #[test]
    fn round_trip_paper_scale_spot_checks() {
        // 6 labels, k = 4 (1554 paths): full round trip.
        let d = PathDomain::new(6, 4);
        let o = SumBasedOrdering::new(
            d,
            LabelRanking::cardinality_from_frequencies(&[40, 10, 60, 20, 50, 30]),
        );
        for i in 0..d.size() {
            let p = o.path_at(i);
            assert_eq!(o.index_of(&p), i, "round trip at {i} ({p})");
        }
    }

    #[test]
    fn summed_ranks_are_monotone_over_the_ordering() {
        // Within a length block, the summed rank never decreases as the
        // index grows — that is the stage-2 grouping.
        let d = PathDomain::new(4, 3);
        let o = SumBasedOrdering::new(d, LabelRanking::cardinality_from_frequencies(&[7, 1, 9, 3]));
        for m in 1..=3usize {
            let lo = d.offset_of_length(m);
            let hi = lo + d.length_block(m);
            let mut last = 0u32;
            for i in lo..hi {
                let sum = o.summed_rank(&o.path_at(i));
                assert!(sum >= last, "sum dropped from {last} to {sum} at {i}");
                last = sum;
            }
        }
    }

    #[test]
    fn cache_and_uncached_agree() {
        let d = PathDomain::new(3, 3);
        let cached = SumBasedOrdering::new(d, card_ranking());
        let uncached = SumBasedOrdering::new(d, card_ranking()).with_cache(false);
        for i in 0..d.size() {
            assert_eq!(cached.path_at(i), uncached.path_at(i));
        }
    }

    #[test]
    fn single_labels_sort_by_rank() {
        let d = PathDomain::new(3, 2);
        let o = SumBasedOrdering::new(d, card_ranking());
        // Ranks: "1"(id0)→1, "3"(id2)→2, "2"(id1)→3.
        assert_eq!(o.path_at(0), LabelPath::single(LabelId(0)));
        assert_eq!(o.path_at(1), LabelPath::single(LabelId(2)));
        assert_eq!(o.path_at(2), LabelPath::single(LabelId(1)));
    }
}
