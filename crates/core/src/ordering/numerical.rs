//! Numerical ordering (paper §3.2): length-major, then positional value.
//!
//! A path's ranks form the digits of a base-`n` number (rule 2); shorter
//! paths sort first (rule 1). Ranking and unranking are both `O(k)`.

use crate::domain::PathDomain;
use crate::ordering::DomainOrdering;
use crate::path::LabelPath;
use crate::ranking::LabelRanking;

/// Numerical ordering over a ranking rule.
#[derive(Debug, Clone)]
pub struct NumericalOrdering {
    domain: PathDomain,
    ranking: LabelRanking,
    name: &'static str,
}

impl NumericalOrdering {
    /// Creates the ordering. `name` distinguishes the ranking rule in
    /// output (`"num-alph"` / `"num-card"`).
    pub fn new(domain: PathDomain, ranking: LabelRanking, name: &'static str) -> NumericalOrdering {
        assert_eq!(
            ranking.len(),
            domain.label_count(),
            "ranking over {} labels but domain over {}",
            ranking.len(),
            domain.label_count()
        );
        NumericalOrdering {
            domain,
            ranking,
            name,
        }
    }

    /// The ranking rule in use.
    pub fn ranking(&self) -> &LabelRanking {
        &self.ranking
    }
}

impl DomainOrdering for NumericalOrdering {
    fn name(&self) -> &'static str {
        self.name
    }

    fn domain(&self) -> &PathDomain {
        &self.domain
    }

    fn reuse_key(&self) -> Option<Vec<u32>> {
        Some(self.ranking.rank_sequence())
    }

    fn index_of(&self, path: &LabelPath) -> u64 {
        let n = self.domain.label_count() as u64;
        let mut value = 0u64;
        for label in path.iter() {
            let digit = (self.ranking.rank(label) - 1) as u64;
            value = value * n + digit;
        }
        self.domain.offset_of_length(path.len()) + value
    }

    fn path_at(&self, index: u64) -> LabelPath {
        let (m, mut rem) = self.domain.length_of_index(index);
        let n = self.domain.label_count() as u64;
        let mut ranks = [0u32; crate::path::MAX_K];
        for i in (0..m).rev() {
            ranks[i] = (rem % n) as u32 + 1;
            rem /= n;
        }
        let labels: Vec<phe_graph::LabelId> =
            ranks[..m].iter().map(|&r| self.ranking.unrank(r)).collect();
        LabelPath::new(&labels)
    }

    /// Combinatorial override: canonical and numerical indexes share the
    /// length-major base-`n` layout, differing only in the digit alphabet
    /// (label ids vs ranks − 1) — remap digits without building a path.
    fn ordered_index(&self, canonical_index: u64) -> u64 {
        let (m, mut rem) = self.domain.length_of_index(canonical_index);
        let n = self.domain.label_count() as u64;
        let mut digits = [0u64; crate::path::MAX_K];
        for i in (0..m).rev() {
            digits[i] = rem % n;
            rem /= n;
        }
        let mut value = 0u64;
        for &digit in &digits[..m] {
            let rank = self.ranking.rank(phe_graph::LabelId(digit as u16));
            value = value * n + (rank - 1) as u64;
        }
        self.domain.offset_of_length(m) + value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::LabelId;

    #[test]
    fn round_trip_exhaustive() {
        let d = PathDomain::new(4, 3);
        let o = NumericalOrdering::new(
            d,
            LabelRanking::cardinality_from_frequencies(&[9, 2, 7, 4]),
            "num-card",
        );
        for i in 0..d.size() {
            let p = o.path_at(i);
            assert_eq!(o.index_of(&p), i, "round trip at {i}");
        }
    }

    #[test]
    fn shorter_paths_first() {
        let d = PathDomain::new(3, 3);
        let o = NumericalOrdering::new(d, LabelRanking::identity(3), "num-alph");
        let single = LabelPath::single(LabelId(2));
        let double = LabelPath::new(&[LabelId(0), LabelId(0)]);
        assert!(o.index_of(&single) < o.index_of(&double));
    }

    #[test]
    fn identity_ranking_matches_canonical() {
        // With identity ranking, numerical ordering IS the canonical layout.
        let d = PathDomain::new(3, 3);
        let o = NumericalOrdering::new(d, LabelRanking::identity(3), "num-alph");
        for i in 0..d.size() {
            assert_eq!(o.path_at(i), d.canonical_path(i));
            assert_eq!(o.index_of(&d.canonical_path(i)), i);
        }
    }

    #[test]
    #[should_panic(expected = "ranking over")]
    fn mismatched_ranking_rejected() {
        NumericalOrdering::new(PathDomain::new(3, 2), LabelRanking::identity(4), "x");
    }
}
