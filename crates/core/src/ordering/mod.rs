//! Domain ordering rules: bijections `Lk ⇄ [0, |Lk|)`.
//!
//! An ordering method is a *(ranking rule, ordering rule)* pair (paper
//! §3.1). This module provides the three ordering rules and the
//! [`OrderingKind`] enumeration of the paper's five complete methods plus
//! the `B = L²` future-work extension.
//!
//! The unit tests at the bottom reproduce the paper's Tables 1 and 2
//! verbatim on the Section 3.4 example (3 labels with cardinalities
//! 20/100/80, `k = 2`).

mod ideal;
mod lexicographical;
mod numerical;
mod sum_based;

pub use ideal::IdealOrdering;
pub use lexicographical::LexicographicalOrdering;
pub use numerical::NumericalOrdering;
pub use sum_based::SumBasedOrdering;

use phe_graph::Graph;
use phe_pathenum::SelectivityCatalog;

use crate::base_set::SumBasedL2Ordering;
use crate::domain::PathDomain;
use crate::path::LabelPath;
use crate::ranking::LabelRanking;

/// A bijection between the label-path domain and `[0, |Lk|)`.
///
/// `index_of` is the *ranking function* used at estimation time (query
/// path → histogram index); `path_at` is the *unranking function* used at
/// construction time (domain position → path whose frequency goes there).
pub trait DomainOrdering: Send + Sync {
    /// Stable method name, e.g. `"num-alph"` or `"sum-based"`.
    fn name(&self) -> &'static str;

    /// The underlying domain.
    fn domain(&self) -> &PathDomain;

    /// The index of `path` in this ordering.
    fn index_of(&self, path: &LabelPath) -> u64;

    /// The path at `index`.
    ///
    /// # Panics
    /// Panics if `index ≥ domain().size()`.
    fn path_at(&self, index: u64) -> LabelPath;

    /// Maps a *canonical* index (the catalog storage layout) to this
    /// ordering's index — the composition `index_of ∘ canonical_path`.
    ///
    /// This is the sparse pipeline's workhorse: a sparse catalog entry
    /// `(canonical_index, count)` becomes `(ordered_index(c), count)`
    /// without ever enumerating the zero entries between them. Orderings
    /// with a cheaper combinatorial route (e.g. the numerical ordering's
    /// digit remap) override it.
    fn ordered_index(&self, canonical_index: u64) -> u64 {
        self.index_of(&self.domain().canonical_path(canonical_index))
    }

    /// Bulk [`DomainOrdering::ordered_index`] over a streamed pass of
    /// sparse `(canonical_index, count)` entries, returning
    /// `(ordered_index, count)` pairs **sorted by ordered index**. Counts
    /// ride along untouched; the permutation property guarantees no
    /// duplicates. Takes a cursor, not a slice — the catalog stores its
    /// entries block-compressed and never materializes the pair vector.
    fn ordered_entries(&self, canonical: &mut dyn Iterator<Item = (u64, u64)>) -> Vec<(u64, u64)> {
        let mut mapped: Vec<(u64, u64)> = canonical
            .map(|(index, count)| (self.ordered_index(index), count))
            .collect();
        mapped.sort_unstable_by_key(|&(index, _)| index);
        mapped
    }

    /// Domain size, `|Lk|`.
    fn domain_size(&self) -> u64 {
        self.domain().size()
    }

    /// The data-dependent state that determines this ordering's
    /// permutation, or `None` when the permutation depends on the full
    /// catalog (the ideal reference). Two orderings of the **same kind
    /// over the same domain** with equal keys define the identical
    /// bijection `Lk ⇄ [0, |Lk|)` — the check that lets an incremental
    /// rebuild reuse its previous ordered runs and remap only the delta
    /// entries instead of all `nnz` (see
    /// `PathSelectivityEstimator::apply_delta`).
    fn reuse_key(&self) -> Option<Vec<u32>> {
        None
    }

    /// Retained table bytes beyond the O(|L|) configuration state.
    ///
    /// Most orderings hold only a ranking (a few bytes per label) and
    /// report 0; table-backed orderings — the ideal reference with its
    /// `O(|Lk|)` permutation — override this so memory accounting
    /// (`phe-service`'s `list`, the estimator footprint) reflects what
    /// they actually pin.
    fn size_bytes(&self) -> usize {
        0
    }
}

/// The complete ordering methods under study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum OrderingKind {
    /// Numerical ordering, alphabetical ranking.
    NumAlph,
    /// Numerical ordering, cardinality ranking.
    NumCard,
    /// Lexicographical ordering, alphabetical ranking.
    LexAlph,
    /// Lexicographical ordering, cardinality ranking.
    LexCard,
    /// Sum-based ordering, cardinality ranking (the paper's contribution).
    SumBased,
    /// Sum-based ordering over the base set `B = L²` (paper future work).
    SumBasedL2,
    /// The selectivity-sorted *ideal* ordering — the paper's infeasible
    /// reference (§3). Retains `O(|Lk|)` memory; ablation use only.
    Ideal,
}

impl OrderingKind {
    /// The five methods evaluated in the paper (Table 2 / Figure 2 /
    /// Table 4 columns), in the paper's column order.
    pub const PAPER_FIVE: [OrderingKind; 5] = [
        OrderingKind::NumAlph,
        OrderingKind::NumCard,
        OrderingKind::LexAlph,
        OrderingKind::LexCard,
        OrderingKind::SumBased,
    ];

    /// All *computable* methods (paper five + the L² extension). The
    /// [`OrderingKind::Ideal`] reference is excluded: it is not a
    /// practical ordering (see its documentation).
    pub const ALL: [OrderingKind; 6] = [
        OrderingKind::NumAlph,
        OrderingKind::NumCard,
        OrderingKind::LexAlph,
        OrderingKind::LexCard,
        OrderingKind::SumBased,
        OrderingKind::SumBasedL2,
    ];

    /// The method name as used in the paper.
    pub fn name(&self) -> &'static str {
        match self {
            OrderingKind::NumAlph => "num-alph",
            OrderingKind::NumCard => "num-card",
            OrderingKind::LexAlph => "lex-alph",
            OrderingKind::LexCard => "lex-card",
            OrderingKind::SumBased => "sum-based",
            OrderingKind::SumBasedL2 => "sum-based-L2",
            OrderingKind::Ideal => "ideal",
        }
    }

    /// Builds the ordering for a graph. The catalog supplies the pair
    /// cardinalities needed by [`OrderingKind::SumBasedL2`] (and must have
    /// been computed with the same `k`).
    pub fn build(
        &self,
        graph: &Graph,
        catalog: &SelectivityCatalog,
        k: usize,
    ) -> Box<dyn DomainOrdering> {
        let domain = PathDomain::new(graph.label_count(), k);
        match self {
            OrderingKind::SumBasedL2 => Box::new(SumBasedL2Ordering::from_catalog(domain, catalog)),
            OrderingKind::Ideal => Box::new(IdealOrdering::from_catalog(domain, catalog)),
            graph_only => graph_only.build_from_graph(graph, domain),
        }
    }

    /// Builds the ordering from a **sparse** catalog — the sparse-first
    /// pipeline's counterpart of [`OrderingKind::build`]. Identical
    /// orderings result; only the two catalog-dependent kinds read the
    /// catalog (sum-based-L2 looks up its `n²` pair selectivities by
    /// binary search, the ideal reference sorts the realized entries and
    /// inherits the canonical tie-break for the zero plateau).
    pub fn build_sparse(
        &self,
        graph: &Graph,
        catalog: &phe_pathenum::SparseCatalog,
        k: usize,
    ) -> Box<dyn DomainOrdering> {
        let domain = PathDomain::new(graph.label_count(), k);
        match self {
            OrderingKind::SumBasedL2 => Box::new(SumBasedL2Ordering::from_sparse(domain, catalog)),
            OrderingKind::Ideal => Box::new(IdealOrdering::from_sparse(domain, catalog)),
            graph_only => graph_only.build_from_graph(graph, domain),
        }
    }

    /// The five catalog-free methods, shared by both pipelines.
    fn build_from_graph(&self, graph: &Graph, domain: PathDomain) -> Box<dyn DomainOrdering> {
        match self {
            OrderingKind::NumAlph => Box::new(NumericalOrdering::new(
                domain,
                LabelRanking::alphabetical(graph),
                "num-alph",
            )),
            OrderingKind::NumCard => Box::new(NumericalOrdering::new(
                domain,
                LabelRanking::cardinality(graph),
                "num-card",
            )),
            OrderingKind::LexAlph => Box::new(LexicographicalOrdering::new(
                domain,
                LabelRanking::alphabetical(graph),
                "lex-alph",
            )),
            OrderingKind::LexCard => Box::new(LexicographicalOrdering::new(
                domain,
                LabelRanking::cardinality(graph),
                "lex-card",
            )),
            OrderingKind::SumBased => Box::new(SumBasedOrdering::new(
                domain,
                LabelRanking::cardinality(graph),
            )),
            OrderingKind::SumBasedL2 | OrderingKind::Ideal => {
                unreachable!("catalog-dependent kinds are handled by the callers")
            }
        }
    }
}

impl std::fmt::Display for OrderingKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::LabelId;

    /// The Section 3.4 example: labels "1","2","3" (ids 0,1,2) with
    /// cardinalities 20, 100, 80 and k = 2.
    fn example_domain() -> PathDomain {
        PathDomain::new(3, 2)
    }

    fn alph() -> LabelRanking {
        // Names "1","2","3" sort as their ids.
        LabelRanking::identity(3)
    }

    fn card() -> LabelRanking {
        LabelRanking::cardinality_from_frequencies(&[20, 100, 80])
    }

    /// Parses `"3,1"` into a path over ids (label name "i" = id i−1).
    fn p(s: &str) -> LabelPath {
        let ids: Vec<LabelId> = s
            .split(',')
            .map(|t| LabelId(t.trim().parse::<u16>().unwrap() - 1))
            .collect();
        LabelPath::new(&ids)
    }

    fn assert_table_row(ordering: &dyn DomainOrdering, expected: &[&str]) {
        assert_eq!(ordering.domain_size(), expected.len() as u64);
        for (index, name) in expected.iter().enumerate() {
            let want = p(name);
            let got = ordering.path_at(index as u64);
            assert_eq!(
                got,
                want,
                "{}: index {index} should be {name}, got {got}",
                ordering.name()
            );
            assert_eq!(
                ordering.index_of(&want),
                index as u64,
                "{}: {name} should rank at {index}",
                ordering.name()
            );
        }
    }

    #[test]
    fn paper_table2_num_alph() {
        let o = NumericalOrdering::new(example_domain(), alph(), "num-alph");
        assert_table_row(
            &o,
            &[
                "1", "2", "3", "1,1", "1,2", "1,3", "2,1", "2,2", "2,3", "3,1", "3,2", "3,3",
            ],
        );
    }

    #[test]
    fn paper_table2_num_card() {
        let o = NumericalOrdering::new(example_domain(), card(), "num-card");
        assert_table_row(
            &o,
            &[
                "1", "3", "2", "1,1", "1,3", "1,2", "3,1", "3,3", "3,2", "2,1", "2,3", "2,2",
            ],
        );
    }

    #[test]
    fn paper_table2_lex_alph() {
        let o = LexicographicalOrdering::new(example_domain(), alph(), "lex-alph");
        assert_table_row(
            &o,
            &[
                "1", "1,1", "1,2", "1,3", "2", "2,1", "2,2", "2,3", "3", "3,1", "3,2", "3,3",
            ],
        );
    }

    #[test]
    fn paper_table2_lex_card() {
        let o = LexicographicalOrdering::new(example_domain(), card(), "lex-card");
        assert_table_row(
            &o,
            &[
                "1", "1,1", "1,3", "1,2", "3", "3,1", "3,3", "3,2", "2", "2,1", "2,3", "2,2",
            ],
        );
    }

    #[test]
    fn paper_table2_sum_based() {
        let o = SumBasedOrdering::new(example_domain(), card());
        assert_table_row(
            &o,
            &[
                "1", "3", "2", "1,1", "1,3", "3,1", "3,3", "1,2", "2,1", "3,2", "2,3", "2,2",
            ],
        );
    }

    #[test]
    fn paper_table1_summed_ranks() {
        // Table 1: summed ranks under cardinality ranking.
        let r = card();
        let expected: [(&str, u32); 12] = [
            ("1", 1),
            ("2", 3),
            ("3", 2),
            ("1,1", 2),
            ("1,2", 4),
            ("1,3", 3),
            ("2,1", 4),
            ("2,2", 6),
            ("2,3", 5),
            ("3,1", 3),
            ("3,2", 5),
            ("3,3", 4),
        ];
        for (path, want) in expected {
            let sum: u32 = p(path).iter().map(|l| r.rank(l)).sum();
            assert_eq!(sum, want, "summed rank of {path}");
        }
    }

    #[test]
    fn kind_names_match_paper() {
        let names: Vec<&str> = OrderingKind::PAPER_FIVE.iter().map(|k| k.name()).collect();
        assert_eq!(
            names,
            vec!["num-alph", "num-card", "lex-alph", "lex-card", "sum-based"]
        );
    }
}
