//! Lexicographical (dictionary) ordering (paper §3.2).
//!
//! Paths sort as in a dictionary: compare rank-by-rank; a path that is a
//! prefix of another comes first. Equivalently this is a preorder walk of
//! the rank trie. Ranking and unranking are both `O(k)` using subtree
//! sizes.
//!
//! **Fidelity note.** The paper's formal definition pads with blank
//! symbols ranked *above* every label, which would sort `"1"` *after*
//! `"1/3"` — contradicting the paper's own Table 2, where `"1"` precedes
//! `"1/1"`. We implement the Table 2 (prefix-first) semantics; the
//! blank-symbol sentence is taken to be an erratum. See `DESIGN.md`.

use crate::domain::PathDomain;
use crate::ordering::DomainOrdering;
use crate::path::LabelPath;
use crate::ranking::LabelRanking;

/// Dictionary ordering over a ranking rule.
#[derive(Debug, Clone)]
pub struct LexicographicalOrdering {
    domain: PathDomain,
    ranking: LabelRanking,
    name: &'static str,
    /// `subtree[d]` = number of paths with a fixed prefix of length `d`
    /// (the prefix itself plus all of its extensions up to length `k`),
    /// for `d` in `1..=k`.
    subtree: Vec<u64>,
}

impl LexicographicalOrdering {
    /// Creates the ordering. `name` distinguishes the ranking rule
    /// (`"lex-alph"` / `"lex-card"`).
    pub fn new(
        domain: PathDomain,
        ranking: LabelRanking,
        name: &'static str,
    ) -> LexicographicalOrdering {
        assert_eq!(
            ranking.len(),
            domain.label_count(),
            "ranking over {} labels but domain over {}",
            ranking.len(),
            domain.label_count()
        );
        let k = domain.max_len();
        // Paths of length ≤ j: offset_of_length(j + 1). A depth-d node's
        // subtree holds itself plus every path of length ≤ k−d below it.
        let subtree: Vec<u64> = (1..=k)
            .map(|d| 1 + domain.offset_of_length(k - d + 1))
            .collect();
        LexicographicalOrdering {
            domain,
            ranking,
            name,
            subtree,
        }
    }

    /// The ranking rule in use.
    pub fn ranking(&self) -> &LabelRanking {
        &self.ranking
    }

    #[inline]
    fn subtree_size(&self, depth: usize) -> u64 {
        self.subtree[depth - 1]
    }
}

impl DomainOrdering for LexicographicalOrdering {
    fn name(&self) -> &'static str {
        self.name
    }

    fn domain(&self) -> &PathDomain {
        &self.domain
    }

    fn reuse_key(&self) -> Option<Vec<u32>> {
        Some(self.ranking.rank_sequence())
    }

    fn index_of(&self, path: &LabelPath) -> u64 {
        // Descending to child r at depth d skips (r − 1) whole subtrees;
        // continuing past a node (to its children) skips the node itself.
        let mut index = 0u64;
        for (i, label) in path.iter().enumerate() {
            let depth = i + 1;
            let r = self.ranking.rank(label) as u64;
            index += (r - 1) * self.subtree_size(depth);
            if depth < path.len() {
                index += 1;
            }
        }
        index
    }

    fn path_at(&self, mut index: u64) -> LabelPath {
        assert!(index < self.domain.size(), "index {index} outside domain");
        let mut labels = Vec::with_capacity(self.domain.max_len());
        let mut depth = 1usize;
        loop {
            let sub = self.subtree_size(depth);
            let r = index / sub + 1;
            index %= sub;
            labels.push(self.ranking.unrank(r as u32));
            if index == 0 {
                break;
            }
            index -= 1; // step past the node itself into its children
            depth += 1;
        }
        LabelPath::new(&labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::LabelId;

    #[test]
    fn round_trip_exhaustive() {
        let d = PathDomain::new(4, 3);
        let o = LexicographicalOrdering::new(
            d,
            LabelRanking::cardinality_from_frequencies(&[9, 2, 7, 4]),
            "lex-card",
        );
        for i in 0..d.size() {
            let p = o.path_at(i);
            assert_eq!(o.index_of(&p), i, "round trip at {i}");
        }
    }

    #[test]
    fn prefix_comes_immediately_before_extensions() {
        let d = PathDomain::new(3, 3);
        let o = LexicographicalOrdering::new(d, LabelRanking::identity(3), "lex-alph");
        let p = LabelPath::single(LabelId(1));
        let first_child = LabelPath::new(&[LabelId(1), LabelId(0)]);
        assert_eq!(o.index_of(&first_child), o.index_of(&p) + 1);
    }

    #[test]
    fn order_is_true_dictionary_order() {
        // Verify against an explicit comparator on rank sequences.
        let d = PathDomain::new(3, 3);
        let ranking = LabelRanking::cardinality_from_frequencies(&[5, 1, 3]);
        let o = LexicographicalOrdering::new(d, ranking.clone(), "lex-card");
        let mut paths: Vec<LabelPath> = d.iter().collect();
        paths.sort_by(|a, b| {
            let ra: Vec<u32> = a.iter().map(|l| ranking.rank(l)).collect();
            let rb: Vec<u32> = b.iter().map(|l| ranking.rank(l)).collect();
            ra.cmp(&rb) // Vec<u32> cmp is exactly prefix-first dictionary order
        });
        for (i, p) in paths.iter().enumerate() {
            assert_eq!(o.index_of(p), i as u64, "path {p} misplaced");
        }
    }

    #[test]
    fn k1_degenerates_to_rank_order() {
        let d = PathDomain::new(5, 1);
        let o = LexicographicalOrdering::new(
            d,
            LabelRanking::cardinality_from_frequencies(&[4, 3, 2, 1, 0]),
            "lex-card",
        );
        for i in 0..5u64 {
            let p = o.path_at(i);
            assert_eq!(o.ranking().rank(p.label(0)) as u64, i + 1);
        }
    }
}
