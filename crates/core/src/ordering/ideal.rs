//! The *ideal ordering*: sort the domain by true selectivity.
//!
//! The paper (§3) describes it as the unreachable optimum: "sort the
//! label paths by their selectivity and assign the index of each label
//! path as its position in this sequence. This idea is not practical,
//! however, as it requires extra memory to store |L| index values" — the
//! same memory that could instead store the exact selectivities.
//!
//! We implement it anyway, *as a reference point*: it bounds what any
//! computable ordering can achieve, so the ablation can report how much
//! of the ideal's headroom sum-based ordering captures. It must **not**
//! be mistaken for a practical estimator — its memory footprint is
//! `O(|Lk|)`, defeating the purpose of the histogram.

use phe_pathenum::SelectivityCatalog;

use crate::domain::PathDomain;
use crate::ordering::DomainOrdering;
use crate::path::LabelPath;

/// The selectivity-sorted reference ordering. Ties (including the large
/// zero-selectivity plateau) break by canonical index, so the ordering is
/// deterministic.
#[derive(Debug)]
pub struct IdealOrdering {
    domain: PathDomain,
    /// `by_index[i]` = canonical index of the path at ordered position `i`.
    by_index: Vec<u32>,
    /// `position[c]` = ordered position of canonical index `c`.
    position: Vec<u32>,
}

impl IdealOrdering {
    /// Builds the ideal ordering from the exact catalog.
    pub fn from_catalog(domain: PathDomain, catalog: &SelectivityCatalog) -> IdealOrdering {
        assert_eq!(
            catalog.len() as u64,
            domain.size(),
            "catalog does not cover the domain"
        );
        let mut by_index: Vec<u32> = (0..catalog.len() as u32).collect();
        by_index.sort_by_key(|&c| (catalog.selectivity_at(c as usize), c));
        let mut position = vec![0u32; catalog.len()];
        for (pos, &c) in by_index.iter().enumerate() {
            position[c as usize] = pos as u32;
        }
        IdealOrdering {
            domain,
            by_index,
            position,
        }
    }

    /// Builds the ideal ordering from a sparse catalog. Identical to
    /// [`IdealOrdering::from_catalog`] on the equivalent dense catalog:
    /// the `(selectivity, canonical)` sort key puts the whole zero plateau
    /// first in canonical order, followed by the realized entries sorted
    /// by `(count, canonical)` — both reconstructable without the dense
    /// vector. Memory stays `O(|Lk|)`, of course: that is the point of
    /// this reference ordering, and why it has no place past the dense
    /// limit.
    pub fn from_sparse(domain: PathDomain, catalog: &phe_pathenum::SparseCatalog) -> IdealOrdering {
        assert_eq!(
            catalog.len() as u64,
            domain.size(),
            "catalog does not cover the domain"
        );
        // The permutation tables index with u32; a sparse catalog can
        // describe domains past that (up to 2⁴⁸), where this O(|Lk|)
        // reference ordering is unbuildable anyway — refuse loudly
        // instead of wrapping indexes.
        assert!(
            catalog.len() as u64 <= u32::MAX as u64,
            "ideal ordering over {} paths exceeds the u32 index space",
            catalog.len()
        );
        let mut by_index: Vec<u32> = Vec::with_capacity(catalog.len());
        // Zero plateau: every canonical index absent from the entries
        // (one streamed pass over the compressed run).
        by_index.extend(
            phe_histogram::sparse::absent_indexes(
                catalog.iter().map(|(index, _)| index),
                catalog.len() as u64,
            )
            .map(|canonical| canonical as u32),
        );
        // Realized paths by (count, canonical); the cursor yields entries
        // canonical-sorted, so a stable sort by count suffices.
        let mut realized: Vec<(u64, u64)> = catalog.iter().collect();
        realized.sort_by_key(|&(_, count)| count);
        by_index.extend(realized.iter().map(|&(index, _)| index as u32));
        let mut position = vec![0u32; catalog.len()];
        for (pos, &c) in by_index.iter().enumerate() {
            position[c as usize] = pos as u32;
        }
        IdealOrdering {
            domain,
            by_index,
            position,
        }
    }

    /// The memory this ordering must retain — the cost the paper rules it
    /// out by.
    pub fn size_bytes(&self) -> usize {
        (self.by_index.len() + self.position.len()) * std::mem::size_of::<u32>()
    }
}

impl DomainOrdering for IdealOrdering {
    fn name(&self) -> &'static str {
        "ideal"
    }

    fn domain(&self) -> &PathDomain {
        &self.domain
    }

    fn index_of(&self, path: &LabelPath) -> u64 {
        let canonical = self.domain.canonical_index(path);
        self.position[canonical as usize] as u64
    }

    fn path_at(&self, index: u64) -> LabelPath {
        self.domain
            .canonical_path(self.by_index[index as usize] as u64)
    }

    /// The `O(|Lk|)` permutation tables — the cost the paper rules this
    /// ordering out by, surfaced to memory accounting.
    fn size_bytes(&self) -> usize {
        IdealOrdering::size_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use phe_graph::LabelId;

    fn setup() -> (PathDomain, SelectivityCatalog, IdealOrdering) {
        let g = erdos_renyi(40, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let catalog = SelectivityCatalog::compute(&g, 3);
        let domain = PathDomain::new(3, 3);
        let ideal = IdealOrdering::from_catalog(domain, &catalog);
        (domain, catalog, ideal)
    }

    #[test]
    fn is_a_bijection() {
        let (domain, _, ideal) = setup();
        for i in 0..domain.size() {
            let p = ideal.path_at(i);
            assert_eq!(ideal.index_of(&p), i);
        }
    }

    #[test]
    fn frequencies_are_monotone() {
        let (domain, catalog, ideal) = setup();
        let mut last = 0u64;
        for i in 0..domain.size() {
            let p = ideal.path_at(i);
            let f = catalog.selectivity(p.as_label_ids());
            assert!(f >= last, "selectivity dropped at position {i}");
            last = f;
        }
    }

    #[test]
    fn ideal_lower_bounds_every_computable_ordering() {
        use crate::eval::evaluate_configuration;
        use crate::label_histogram::HistogramKind;
        use crate::ordering::OrderingKind;
        let g = erdos_renyi(50, 600, 4, LabelDistribution::Zipf { exponent: 1.0 }, 9);
        let k = 3;
        let catalog = SelectivityCatalog::compute(&g, k);
        let domain = PathDomain::new(4, k);
        let ideal = IdealOrdering::from_catalog(domain, &catalog);
        let beta = catalog.len() / 16;
        // Exact V-optimal on the monotone sequence is the global optimum
        // over (ordering, bucketing) pairs; no computable ordering with the
        // same builder may do better.
        let ideal_err =
            evaluate_configuration(&catalog, &ideal, HistogramKind::VOptimalExact, beta)
                .unwrap()
                .mean_abs_error_rate;
        for kind in OrderingKind::ALL {
            let o = kind.build(&g, &catalog, k);
            let err =
                evaluate_configuration(&catalog, o.as_ref(), HistogramKind::VOptimalExact, beta)
                    .unwrap()
                    .mean_abs_error_rate;
            assert!(
                ideal_err <= err + 1e-9,
                "{} ({err:.4}) beat the ideal ({ideal_err:.4})",
                kind.name()
            );
        }
    }

    #[test]
    fn from_sparse_matches_from_catalog() {
        let g = erdos_renyi(40, 300, 3, LabelDistribution::Zipf { exponent: 1.0 }, 5);
        let dense = SelectivityCatalog::compute(&g, 3);
        let sparse = phe_pathenum::SparseCatalog::compute(&g, 3).unwrap();
        let domain = PathDomain::new(3, 3);
        let a = IdealOrdering::from_catalog(domain, &dense);
        let b = IdealOrdering::from_sparse(domain, &sparse);
        for i in 0..domain.size() {
            assert_eq!(a.path_at(i), b.path_at(i), "position {i}");
        }
    }

    #[test]
    fn memory_is_linear_in_domain() {
        let (domain, _, ideal) = setup();
        assert_eq!(ideal.size_bytes(), domain.size() as usize * 8);
        // The trait-level accounting reports the same tables, so serving
        // footprints include them; rank-based orderings report 0.
        let as_ordering: &dyn DomainOrdering = &ideal;
        assert_eq!(as_ordering.size_bytes(), domain.size() as usize * 8);
        let sum_based = crate::ordering::SumBasedOrdering::new(
            domain,
            crate::ranking::LabelRanking::cardinality_from_frequencies(&[3, 1, 2]),
        );
        assert_eq!(DomainOrdering::size_bytes(&sum_based), 0);
    }

    #[test]
    #[should_panic(expected = "does not cover")]
    fn mismatched_catalog_rejected() {
        let g = erdos_renyi(10, 30, 2, LabelDistribution::Uniform, 1);
        let catalog = SelectivityCatalog::compute(&g, 2);
        let _ = IdealOrdering::from_catalog(PathDomain::new(2, 3), &catalog);
    }

    #[test]
    fn works_through_the_estimator_api() {
        use crate::estimator::{EstimatorConfig, PathSelectivityEstimator};
        use crate::label_histogram::HistogramKind;
        use crate::ordering::OrderingKind;
        let g = erdos_renyi(30, 200, 3, LabelDistribution::Uniform, 2);
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: 6,
                ordering: OrderingKind::Ideal,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap();
        let e = est.estimate(&[LabelId(0), LabelId(1)]);
        assert!(e.is_finite() && e >= 0.0);
    }
}
