//! The label-path domain `Lk` and its canonical layout.

use phe_graph::LabelId;
use phe_pathenum::PathEncoding;

use crate::path::{LabelPath, MAX_K};

/// The domain of all label paths of length `1..=k` over `n` labels.
///
/// Every [`crate::ordering::DomainOrdering`] is a bijection from this
/// domain to `[0, size())`. The *canonical* index used for storage is the
/// `phe-pathenum` encoding (length-major, base-`n` digits of label ids).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PathDomain {
    n: usize,
    k: usize,
}

impl PathDomain {
    /// Creates the domain for `n` labels and maximum length `k`.
    ///
    /// # Panics
    /// Panics if `n == 0`, `k == 0`, `k > MAX_K`, or the domain size
    /// overflows the catalog limit (2⁴⁸ paths).
    pub fn new(n: usize, k: usize) -> PathDomain {
        assert!(k <= MAX_K, "k = {k} exceeds MAX_K = {MAX_K}");
        // PathEncoding repeats the n/k sanity checks and the size bound.
        let _ = PathEncoding::new(n, k);
        PathDomain { n, k }
    }

    /// Number of labels `n = |L|`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.n
    }

    /// Maximum path length `k`.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.k
    }

    /// Domain size `|Lk| = Σ_{i=1..k} n^i`.
    pub fn size(&self) -> u64 {
        self.offset_of_length(self.k + 1)
    }

    /// Number of paths shorter than `m`: `Σ_{i=1..m−1} n^i` — the offset
    /// of the length-`m` block in any length-major ordering.
    pub fn offset_of_length(&self, m: usize) -> u64 {
        let mut total = 0u64;
        let mut power = 1u64;
        for _ in 1..m {
            power *= self.n as u64;
            total += power;
        }
        total
    }

    /// Size of the length-`m` block, `n^m`.
    pub fn length_block(&self, m: usize) -> u64 {
        (self.n as u64).pow(m as u32)
    }

    /// Recovers the length of the path at `index` in a length-major
    /// ordering, together with the offset inside its block.
    pub fn length_of_index(&self, index: u64) -> (usize, u64) {
        assert!(index < self.size(), "index {index} outside domain");
        let mut rem = index;
        for m in 1..=self.k {
            let block = self.length_block(m);
            if rem < block {
                return (m, rem);
            }
            rem -= block;
        }
        unreachable!("index bounds checked above");
    }

    /// The equivalent `phe-pathenum` encoding.
    pub fn encoding(&self) -> PathEncoding {
        PathEncoding::new(self.n, self.k)
    }

    /// Canonical index of a path (length-major, label-id digits).
    pub fn canonical_index(&self, path: &LabelPath) -> u64 {
        let ids: Vec<LabelId> = path.label_ids();
        self.encoding().encode(&ids) as u64
    }

    /// Path at a canonical index.
    pub fn canonical_path(&self, index: u64) -> LabelPath {
        let ids = self.encoding().decode(index as usize);
        LabelPath::new(&ids)
    }

    /// Iterates the whole domain in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = LabelPath> + '_ {
        (0..self.size()).map(move |i| self.canonical_path(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        let d = PathDomain::new(3, 2);
        assert_eq!(d.size(), 12);
        assert_eq!(d.offset_of_length(1), 0);
        assert_eq!(d.offset_of_length(2), 3);
        assert_eq!(d.offset_of_length(3), 12);
        assert_eq!(d.length_block(2), 9);
        // Paper's k=6 six-label domain.
        assert_eq!(PathDomain::new(6, 6).size(), 55_986);
    }

    #[test]
    fn length_of_index() {
        let d = PathDomain::new(3, 2);
        assert_eq!(d.length_of_index(0), (1, 0));
        assert_eq!(d.length_of_index(2), (1, 2));
        assert_eq!(d.length_of_index(3), (2, 0));
        assert_eq!(d.length_of_index(11), (2, 8));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn length_of_index_bounds() {
        PathDomain::new(3, 2).length_of_index(12);
    }

    #[test]
    fn canonical_round_trip() {
        let d = PathDomain::new(4, 3);
        for i in 0..d.size() {
            let p = d.canonical_path(i);
            assert_eq!(d.canonical_index(&p), i);
        }
    }

    #[test]
    fn iter_is_complete() {
        let d = PathDomain::new(2, 3);
        let all: Vec<LabelPath> = d.iter().collect();
        assert_eq!(all.len(), 14);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), 14);
    }

    #[test]
    #[should_panic(expected = "MAX_K")]
    fn k_above_max_rejected() {
        PathDomain::new(2, 9);
    }
}
