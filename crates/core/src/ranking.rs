//! Ranking rules: bijections between base labels and ranks `[1, |B|]`.
//!
//! The paper defines two ranking rules over the edge label set `L`:
//!
//! * **alphabetical** — ranks follow the alphabetical order of label
//!   *names*;
//! * **cardinality** — ranks follow ascending label frequency,
//!   `l1 <card l2 ⟺ f(l1) < f(l2)` (lowest cardinality gets rank 1).
//!
//! Ties in cardinality are broken by label id so the ranking is always a
//! total order (the paper leaves ties unspecified).

use phe_graph::{Graph, LabelId};
use serde::{Deserialize, Serialize};

/// A materialized ranking: rank ⇄ label in both directions, O(1) each way.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LabelRanking {
    /// `to_rank[label.index()]` = 1-based rank.
    to_rank: Vec<u32>,
    /// `from_rank[rank − 1]` = label.
    from_rank: Vec<LabelId>,
}

impl LabelRanking {
    /// Builds a ranking from labels listed in rank order (rank 1 first).
    ///
    /// # Panics
    /// Panics if `order` is not a permutation of `[0, |order|)` label ids.
    pub fn from_rank_order(order: Vec<LabelId>) -> LabelRanking {
        let n = order.len();
        let mut to_rank = vec![u32::MAX; n];
        for (i, l) in order.iter().enumerate() {
            assert!(l.index() < n, "label {l} out of range");
            assert_eq!(to_rank[l.index()], u32::MAX, "label {l} listed twice");
            to_rank[l.index()] = (i + 1) as u32;
        }
        LabelRanking {
            to_rank,
            from_rank: order,
        }
    }

    /// Alphabetical ranking over a graph's label names.
    pub fn alphabetical(graph: &Graph) -> LabelRanking {
        LabelRanking::from_rank_order(graph.labels().ids_sorted_by_name())
    }

    /// Cardinality ranking from explicit frequencies (`freqs[i] = f(lᵢ)`):
    /// lowest frequency first, ties by label id.
    pub fn cardinality_from_frequencies(freqs: &[u64]) -> LabelRanking {
        let mut ids: Vec<LabelId> = (0..freqs.len() as u16).map(LabelId).collect();
        ids.sort_by_key(|l| (freqs[l.index()], l.0));
        LabelRanking::from_rank_order(ids)
    }

    /// Cardinality ranking over a graph's edge-label frequencies.
    pub fn cardinality(graph: &Graph) -> LabelRanking {
        let freqs: Vec<u64> = graph
            .label_ids()
            .map(|l| graph.label_frequency(l))
            .collect();
        LabelRanking::cardinality_from_frequencies(&freqs)
    }

    /// Identity ranking (label id `i` ⇒ rank `i + 1`). Alphabetical over
    /// single-character numeric names, and handy in tests.
    pub fn identity(n: usize) -> LabelRanking {
        LabelRanking::from_rank_order((0..n as u16).map(LabelId).collect())
    }

    /// Number of ranked labels `|B|`.
    #[inline]
    pub fn len(&self) -> usize {
        self.from_rank.len()
    }

    /// Whether the ranking is over zero labels.
    pub fn is_empty(&self) -> bool {
        self.from_rank.is_empty()
    }

    /// The 1-based rank of `label`.
    #[inline]
    pub fn rank(&self, label: LabelId) -> u32 {
        self.to_rank[label.index()]
    }

    /// The full rank assignment, indexed by label id — two rankings with
    /// equal sequences define the same bijection (the identity behind
    /// ordered-run reuse in incremental rebuilds).
    pub fn rank_sequence(&self) -> Vec<u32> {
        self.to_rank.clone()
    }

    /// The label holding 1-based `rank`.
    #[inline]
    pub fn unrank(&self, rank: u32) -> LabelId {
        self.from_rank[(rank - 1) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phe_graph::GraphBuilder;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn paper_example_cardinality_ranking() {
        // The Section 3.4 example: labels "1","2","3" with cardinalities
        // 20, 100, 80 → rank order 1, 3, 2.
        let r = LabelRanking::cardinality_from_frequencies(&[20, 100, 80]);
        assert_eq!(r.rank(l(0)), 1); // "1"
        assert_eq!(r.rank(l(2)), 2); // "3"
        assert_eq!(r.rank(l(1)), 3); // "2"
        assert_eq!(r.unrank(1), l(0));
        assert_eq!(r.unrank(2), l(2));
        assert_eq!(r.unrank(3), l(1));
    }

    #[test]
    fn rank_unrank_roundtrip() {
        let r = LabelRanking::cardinality_from_frequencies(&[5, 3, 9, 1]);
        for label in 0..4u16 {
            assert_eq!(r.unrank(r.rank(l(label))), l(label));
        }
        for rank in 1..=4u32 {
            assert_eq!(r.rank(r.unrank(rank)), rank);
        }
    }

    #[test]
    fn cardinality_tie_breaks_by_id() {
        let r = LabelRanking::cardinality_from_frequencies(&[7, 7, 7]);
        assert_eq!(r.rank(l(0)), 1);
        assert_eq!(r.rank(l(1)), 2);
        assert_eq!(r.rank(l(2)), 3);
    }

    #[test]
    fn alphabetical_uses_names_not_ids() {
        let mut b = GraphBuilder::new();
        // Interned order: zeta(0), alpha(1), mid(2).
        b.add_edge_named(0, "zeta", 1);
        b.add_edge_named(0, "alpha", 1);
        b.add_edge_named(0, "mid", 1);
        let g = b.build();
        let r = LabelRanking::alphabetical(&g);
        assert_eq!(r.rank(g.labels().get("alpha").unwrap()), 1);
        assert_eq!(r.rank(g.labels().get("mid").unwrap()), 2);
        assert_eq!(r.rank(g.labels().get("zeta").unwrap()), 3);
    }

    #[test]
    fn cardinality_from_graph() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "a", 2);
        b.add_edge_named(0, "b", 1);
        let g = b.build();
        let r = LabelRanking::cardinality(&g);
        // b (1 edge) ranks before a (2 edges).
        assert_eq!(r.rank(g.labels().get("b").unwrap()), 1);
        assert_eq!(r.rank(g.labels().get("a").unwrap()), 2);
    }

    #[test]
    fn identity_ranking() {
        let r = LabelRanking::identity(4);
        for i in 0..4u16 {
            assert_eq!(r.rank(l(i)), i as u32 + 1);
        }
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_label_rejected() {
        LabelRanking::from_rank_order(vec![l(0), l(0)]);
    }
}
