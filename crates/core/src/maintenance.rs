//! Rebuild policy for maintained estimators: when is "merge the delta"
//! no longer good enough and a full rebuild warranted?
//!
//! Two triggers, both cheap to evaluate after every compacted publish:
//!
//! * **Lineage length** — [`RebuildPolicy::max_applied_deltas`]. Every
//!   [`apply_delta`](crate::PathSelectivityEstimator::apply_delta) merge
//!   is bit-identical to a rebuild *of the statistics*, but the snapshot
//!   lineage grows unboundedly and the ordering-reuse fast path degrades
//!   as churn reshuffles label frequencies. Past a threshold, fold the
//!   lineage back into a fresh full build.
//! * **Accuracy drift** — the [`DriftReport`] sampled after each delta
//!   (PR 6) measures estimate-vs-exact error *on the paths churn
//!   touched*. The threshold it is compared against is not an ad-hoc
//!   constant: Baraud–Birgé's risk bounds for histogram estimators of
//!   Poisson/density intensities (see PAPERS.md) show that a histogram
//!   with `D` cells over `n` observations carries an unavoidable
//!   estimation-error term of order `sqrt(D·(1 + ln(n/D)) / n)` — the
//!   penalty their model-selection criterion charges a `D`-cell
//!   partition. While the partition still *fits* the data, the observed
//!   per-path error rate should stay within a small multiple of that
//!   noise floor; a drift report crossing it is statistical evidence the
//!   bucketing no longer matches the frequency distribution, which is
//!   exactly the "rebuild the ordering + histogram" signal.
//!
//! [`DriftThreshold::baraud_birge`] instantiates the bound with `D = β`
//! (bucket budget) and `n` = realized paths in the catalog;
//! [`RebuildPolicy::trigger`] combines both criteria and names which one
//! fired. The service's maintenance worker evaluates this after every
//! compacted publish and acts on the verdict.

use crate::estimator::DriftReport;

/// Absolute drift levels past which a maintained estimator should be
/// rebuilt. Usually derived from the data via
/// [`DriftThreshold::baraud_birge`]; can also be pinned explicitly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftThreshold {
    /// Rebuild when the sampled mean `|error|` rate exceeds this
    /// (the paper's error-rate metric, bounded in `[0, 1]`).
    pub mean_abs_error_rate: f64,
    /// Rebuild when the sampled worst q-error exceeds this (≥ 1).
    pub max_q_error: f64,
}

impl DriftThreshold {
    /// The Baraud–Birgé-derived threshold for a `beta`-bucket histogram
    /// over `realized_paths` nonzero catalog entries, scaled by `scale`.
    ///
    /// The penalty rate `sqrt(β·(1 + ln(n/β)) / n)` is the
    /// estimation-error order a β-cell irregular partition cannot beat;
    /// `scale` (default 1.0) trades rebuild eagerness against tolerance.
    /// The q-error arm is the multiplicative twin: a mean error rate of
    /// `p` corresponds to a typical under/over-estimate factor around
    /// `1/(1-p)`, so the threshold allows a generous `1 + 8·penalty`
    /// before calling the worst sampled bucket broken.
    pub fn baraud_birge(beta: usize, realized_paths: u64, scale: f64) -> DriftThreshold {
        let n = (realized_paths.max(1)) as f64;
        // More cells than observations means every cell is its own
        // observation; the bound saturates.
        let d = (beta.max(1) as f64).min(n);
        let penalty = (d * (1.0 + (n / d).ln()) / n).sqrt() * scale;
        DriftThreshold {
            mean_abs_error_rate: penalty.min(1.0),
            max_q_error: 1.0 + 8.0 * penalty,
        }
    }

    /// Whether `drift` crosses either arm of the threshold. Empty samples
    /// never trigger — no evidence, no rebuild.
    pub fn exceeded_by(&self, drift: &DriftReport) -> bool {
        drift.sampled > 0
            && (drift.mean_abs_error_rate > self.mean_abs_error_rate
                || drift.max_q_error > self.max_q_error)
    }
}

/// Why a maintained slot was (or would be) fully rebuilt.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RebuildTrigger {
    /// The delta lineage grew past the policy's length threshold.
    AppliedDeltas {
        /// Deltas folded in since the originating full build.
        applied: u64,
        /// The policy's `max_applied_deltas`.
        threshold: u64,
    },
    /// The sampled drift crossed the (Baraud–Birgé or pinned) threshold.
    Drift {
        /// The report that crossed.
        report: DriftReport,
        /// The threshold it crossed.
        threshold: DriftThreshold,
    },
}

impl RebuildTrigger {
    /// Stable machine-readable trigger kind (metric label / protocol
    /// field): `"applied-deltas"` or `"drift"`.
    pub fn kind(&self) -> &'static str {
        match self {
            RebuildTrigger::AppliedDeltas { .. } => "applied-deltas",
            RebuildTrigger::Drift { .. } => "drift",
        }
    }
}

impl std::fmt::Display for RebuildTrigger {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RebuildTrigger::AppliedDeltas { applied, threshold } => {
                write!(f, "applied-deltas {applied} >= {threshold}")
            }
            RebuildTrigger::Drift { report, threshold } => write!(
                f,
                "drift mean {:.4} / q {:.3} crossed {:.4} / {:.3} over {} sampled paths",
                report.mean_abs_error_rate,
                report.max_q_error,
                threshold.mean_abs_error_rate,
                threshold.max_q_error,
                report.sampled,
            ),
        }
    }
}

/// When a maintained slot should stop merging deltas and rebuild.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RebuildPolicy {
    /// Full maintaining rebuild once this many deltas have been folded
    /// into the lineage since the last full build. `0` disables the arm.
    pub max_applied_deltas: u64,
    /// Multiplier on the Baraud–Birgé drift bound; `<= 0` disables
    /// drift-triggered rebuilds.
    pub drift_scale: f64,
    /// Pin the drift threshold explicitly instead of deriving it from
    /// `(β, realized paths)`. `drift_scale` still gates the arm on/off.
    pub drift_override: Option<DriftThreshold>,
}

impl Default for RebuildPolicy {
    /// Rebuild after 64 lineage deltas or a 1× Baraud–Birgé crossing.
    fn default() -> RebuildPolicy {
        RebuildPolicy {
            max_applied_deltas: 64,
            drift_scale: 1.0,
            drift_override: None,
        }
    }
}

impl RebuildPolicy {
    /// The drift threshold this policy applies to a `beta`-bucket
    /// histogram over `realized_paths` entries — the override if pinned,
    /// the scaled Baraud–Birgé bound otherwise, `None` if the arm is
    /// disabled.
    pub fn drift_threshold(&self, beta: usize, realized_paths: u64) -> Option<DriftThreshold> {
        if self.drift_scale <= 0.0 {
            return None;
        }
        Some(self.drift_override.unwrap_or_else(|| {
            DriftThreshold::baraud_birge(beta, realized_paths, self.drift_scale)
        }))
    }

    /// Evaluates both arms against a slot's state; returns the first
    /// trigger that fires (lineage length is checked before drift — it
    /// is the cheaper, more conservative signal).
    pub fn trigger(
        &self,
        applied_deltas: u64,
        drift: Option<&DriftReport>,
        beta: usize,
        realized_paths: u64,
    ) -> Option<RebuildTrigger> {
        if self.max_applied_deltas > 0 && applied_deltas >= self.max_applied_deltas {
            return Some(RebuildTrigger::AppliedDeltas {
                applied: applied_deltas,
                threshold: self.max_applied_deltas,
            });
        }
        let (report, threshold) = (drift?, self.drift_threshold(beta, realized_paths)?);
        threshold
            .exceeded_by(report)
            .then_some(RebuildTrigger::Drift {
                report: *report,
                threshold,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drift(mean: f64, q: f64) -> DriftReport {
        DriftReport {
            touched: 100,
            sampled: 50,
            mean_abs_error_rate: mean,
            max_q_error: q,
        }
    }

    #[test]
    fn baraud_birge_bound_shape() {
        // More data under the same budget → tighter threshold.
        let coarse = DriftThreshold::baraud_birge(64, 1_000, 1.0);
        let fine = DriftThreshold::baraud_birge(64, 100_000, 1.0);
        assert!(fine.mean_abs_error_rate < coarse.mean_abs_error_rate);
        assert!(fine.max_q_error < coarse.max_q_error);
        // More buckets over the same data → looser threshold (each cell
        // sees fewer observations).
        let wide = DriftThreshold::baraud_birge(256, 10_000, 1.0);
        let narrow = DriftThreshold::baraud_birge(16, 10_000, 1.0);
        assert!(wide.mean_abs_error_rate > narrow.mean_abs_error_rate);
        // Saturates instead of exceeding the metric's own range.
        let tiny = DriftThreshold::baraud_birge(1024, 10, 1.0);
        assert!(tiny.mean_abs_error_rate <= 1.0);
        assert!(tiny.max_q_error >= 1.0);
        // Scale moves both arms.
        let strict = DriftThreshold::baraud_birge(64, 10_000, 0.25);
        let lax = DriftThreshold::baraud_birge(64, 10_000, 4.0);
        assert!(strict.mean_abs_error_rate < lax.mean_abs_error_rate);
    }

    #[test]
    fn policy_arms_fire_and_disable() {
        let policy = RebuildPolicy {
            max_applied_deltas: 4,
            drift_scale: 1.0,
            drift_override: Some(DriftThreshold {
                mean_abs_error_rate: 0.2,
                max_q_error: 3.0,
            }),
        };
        // Lineage arm fires first and names its numbers.
        let t = policy.trigger(4, None, 64, 1_000).unwrap();
        assert_eq!(t.kind(), "applied-deltas");
        assert!(t.to_string().contains("4 >= 4"), "{t}");
        // Below the lineage arm, drift decides.
        assert_eq!(policy.trigger(3, None, 64, 1_000), None);
        let calm = drift(0.1, 1.5);
        assert_eq!(policy.trigger(3, Some(&calm), 64, 1_000), None);
        let noisy = drift(0.5, 1.5);
        assert_eq!(
            policy.trigger(3, Some(&noisy), 64, 1_000).unwrap().kind(),
            "drift"
        );
        let skewed = drift(0.1, 9.0);
        assert!(policy.trigger(3, Some(&skewed), 64, 1_000).is_some());
        // An empty sample is no evidence.
        let empty = DriftReport {
            touched: 0,
            sampled: 0,
            mean_abs_error_rate: 0.0,
            max_q_error: 1.0,
        };
        assert_eq!(policy.trigger(3, Some(&empty), 64, 1_000), None);
        // Disabled arms never fire.
        let off = RebuildPolicy {
            max_applied_deltas: 0,
            drift_scale: 0.0,
            drift_override: None,
        };
        assert_eq!(off.trigger(1_000_000, Some(&noisy), 64, 1_000), None);
    }
}
