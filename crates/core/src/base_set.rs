//! Base-label-set framework and the `B = L²` sum-based extension.
//!
//! The paper (§3.1, §5) defines orderings over a *base label set*
//! `B ⊆ L≤2` with a *splitting rule* decomposing every path into pieces
//! from `B`, and names richer base sets — "e.g., those built over richer
//! base sets such as L2, towards capturing correlations between label
//! paths" — as the primary future-work direction. This module implements
//! that extension:
//!
//! * [`greedy_split`] — the paper's greedy splitting rule: always cut the
//!   longest piece that is in `B` (so `4/4/3/3/6 → 4/4, 3/3, 6`);
//! * [`SumBasedL2Ordering`] — sum-based ordering where the summed rank is
//!   taken over the *pieces*, with pairs ranked by their true 2-path
//!   selectivity `f(l1/l2)` (from the catalog) and singles by `f(l)`.
//!
//! Because pair pieces carry the actual joint frequency of two adjacent
//! labels, this ordering sees label correlations that the `B = L`
//! sum-based ordering is blind to — exactly what the paper conjectures
//! will help on real data. The `ablation_base_sets` binary measures it.
//!
//! Index layout (length-major like all orderings here): within the
//! length-`m` block, where `m = 2j + odd`,
//!
//! 1. by total summed piece rank `sr = Σ rank(pairᵢ) + rank(single)`;
//! 2. within a sum group, by the single's rank (odd `m` only — greedy
//!    splitting pins the single to the last position);
//! 3. by the pair-rank multiset in Formula 4 order, then by multiset
//!    permutation rank (Algorithm 1), as in plain sum-based ordering.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;
use phe_graph::LabelId;
use phe_pathenum::SelectivityCatalog;

use crate::combinatorics::{
    dist_table, integer_partitions, multiset_permutation_rank, multiset_permutation_unrank, nop,
    Partition,
};
use crate::domain::PathDomain;
use crate::ordering::DomainOrdering;
use crate::path::LabelPath;
use crate::ranking::LabelRanking;

/// One piece of a greedy decomposition over `B = L²`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Piece {
    /// A length-2 piece `l1/l2`.
    Pair(LabelId, LabelId),
    /// A length-1 piece.
    Single(LabelId),
}

/// The paper's greedy splitting rule for `B = L²`: cut length-2 pieces
/// left to right; a path of odd length ends with a single.
pub fn greedy_split(path: &LabelPath) -> Vec<Piece> {
    let mut out = Vec::with_capacity(path.len().div_ceil(2));
    let slice = path.as_slice();
    let mut i = 0usize;
    while i + 1 < slice.len() {
        out.push(Piece::Pair(LabelId(slice[i]), LabelId(slice[i + 1])));
        i += 2;
    }
    if i < slice.len() {
        out.push(Piece::Single(LabelId(slice[i])));
    }
    out
}

/// Sum-based ordering over the base set `B = L²`.
#[derive(Debug)]
pub struct SumBasedL2Ordering {
    domain: PathDomain,
    /// Ranking of single labels by `f(l)` ascending, `[1, n]`.
    single_ranking: LabelRanking,
    /// Ranking of pairs by `f(l1/l2)` ascending, `[1, n²]`; pair
    /// `(l1, l2)` is keyed as the pseudo-label `l1·n + l2`.
    pair_ranking: LabelRanking,
    /// `dist_pairs[j][s]` = #length-`j` pair-rank sequences summing to `s`.
    dist_pairs: Vec<Vec<u64>>,
    cache: PartitionCache,
}

/// Memoized Formula-4 partition lists keyed by `(part count, sum)`.
type PartitionCache = RwLock<HashMap<(u8, u32), Arc<Vec<Partition>>>>;

impl SumBasedL2Ordering {
    /// Builds the ordering from a selectivity catalog (which supplies both
    /// `f(l)` and `f(l1/l2)`).
    ///
    /// # Panics
    /// Panics if the catalog was computed with `k < 2`, or if the label
    /// alphabet exceeds 256 (pair pseudo-labels must fit `u16`).
    pub fn from_catalog(domain: PathDomain, catalog: &SelectivityCatalog) -> SumBasedL2Ordering {
        let n = domain.label_count();
        assert!(n <= 256, "L2 base set needs |L| ≤ 256, got {n}");
        assert_eq!(
            catalog.encoding().label_count(),
            n,
            "catalog alphabet does not match the domain"
        );
        let single_freqs: Vec<u64> = (0..n as u16)
            .map(|l| catalog.selectivity(&[LabelId(l)]))
            .collect();
        // A k = 1 domain never decomposes into pairs: the ordering
        // degenerates to cardinality-ranked singles and any pair ranking
        // works. Otherwise the catalog must supply real 2-path counts.
        let mut pair_freqs = vec![0u64; n * n];
        if domain.max_len() >= 2 {
            assert!(
                catalog.encoding().max_len() >= 2,
                "catalog must cover paths of length ≥ 2 to rank pairs"
            );
            for l1 in 0..n as u16 {
                for l2 in 0..n as u16 {
                    pair_freqs[(l1 as usize) * n + l2 as usize] =
                        catalog.selectivity(&[LabelId(l1), LabelId(l2)]);
                }
            }
        }
        SumBasedL2Ordering::from_frequencies(domain, &single_freqs, &pair_freqs)
    }

    /// Builds the ordering from a sparse catalog — identical to
    /// [`SumBasedL2Ordering::from_catalog`] on the equivalent dense
    /// catalog; the `n + n²` frequency lookups are binary searches over
    /// the realized entries.
    ///
    /// # Panics
    /// As for [`SumBasedL2Ordering::from_catalog`].
    pub fn from_sparse(
        domain: PathDomain,
        catalog: &phe_pathenum::SparseCatalog,
    ) -> SumBasedL2Ordering {
        let n = domain.label_count();
        assert!(n <= 256, "L2 base set needs |L| ≤ 256, got {n}");
        assert_eq!(
            catalog.encoding().label_count(),
            n,
            "catalog alphabet does not match the domain"
        );
        let single_freqs: Vec<u64> = (0..n as u16)
            .map(|l| catalog.selectivity(&[LabelId(l)]))
            .collect();
        let mut pair_freqs = vec![0u64; n * n];
        if domain.max_len() >= 2 {
            assert!(
                catalog.encoding().max_len() >= 2,
                "catalog must cover paths of length ≥ 2 to rank pairs"
            );
            for l1 in 0..n as u16 {
                for l2 in 0..n as u16 {
                    pair_freqs[(l1 as usize) * n + l2 as usize] =
                        catalog.selectivity(&[LabelId(l1), LabelId(l2)]);
                }
            }
        }
        SumBasedL2Ordering::from_frequencies(domain, &single_freqs, &pair_freqs)
    }

    /// Builds from explicit frequencies (`pair_freqs[l1·n + l2]`).
    pub fn from_frequencies(
        domain: PathDomain,
        single_freqs: &[u64],
        pair_freqs: &[u64],
    ) -> SumBasedL2Ordering {
        let n = domain.label_count();
        assert_eq!(single_freqs.len(), n);
        assert_eq!(pair_freqs.len(), n * n);
        let single_ranking = LabelRanking::cardinality_from_frequencies(single_freqs);
        let pair_ranking = LabelRanking::cardinality_from_frequencies(pair_freqs);
        let j_max = domain.max_len() / 2;
        let dist_pairs = dist_table(j_max, n * n);
        SumBasedL2Ordering {
            domain,
            single_ranking,
            pair_ranking,
            dist_pairs,
            cache: RwLock::new(HashMap::new()),
        }
    }

    /// The summed piece rank of a path (the stage-2 grouping key).
    pub fn summed_rank(&self, path: &LabelPath) -> u64 {
        let n = self.domain.label_count() as u16;
        greedy_split(path)
            .iter()
            .map(|piece| match piece {
                Piece::Pair(l1, l2) => self.pair_ranking.rank(LabelId(l1.0 * n + l2.0)) as u64,
                Piece::Single(l) => self.single_ranking.rank(*l) as u64,
            })
            .sum()
    }

    fn pair_rank(&self, l1: u16, l2: u16) -> u64 {
        let n = self.domain.label_count() as u16;
        self.pair_ranking.rank(LabelId(l1 * n + l2)) as u64
    }

    /// Number of paths of length `m` whose summed piece rank is `sr`.
    fn group_size(&self, m: usize, sr: u64) -> u64 {
        let n = self.domain.label_count() as u64;
        let j = m / 2;
        if m.is_multiple_of(2) {
            self.dist_at(j, sr)
        } else {
            (1..=n.min(sr)).map(|ss| self.dist_at(j, sr - ss)).sum()
        }
    }

    #[inline]
    fn dist_at(&self, j: usize, s: u64) -> u64 {
        self.dist_pairs
            .get(j)
            .and_then(|row| row.get(s as usize))
            .copied()
            .unwrap_or(0)
    }

    fn partitions(&self, sum: u64, j: usize) -> Arc<Vec<Partition>> {
        let a = (self.domain.label_count() * self.domain.label_count()) as u64;
        let key = (j as u8, sum as u32);
        if let Some(hit) = self.cache.read().get(&key) {
            return Arc::clone(hit);
        }
        let computed = Arc::new(integer_partitions(sum, j, a));
        self.cache
            .write()
            .entry(key)
            .or_insert_with(|| Arc::clone(&computed))
            .clone()
    }

    fn sum_bounds(&self, m: usize) -> (u64, u64) {
        let n = self.domain.label_count() as u64;
        let j = (m / 2) as u64;
        let a = n * n;
        if m.is_multiple_of(2) {
            (j, j * a)
        } else {
            (j + 1, j * a + n)
        }
    }
}

impl DomainOrdering for SumBasedL2Ordering {
    fn name(&self) -> &'static str {
        "sum-based-L2"
    }

    fn domain(&self) -> &PathDomain {
        &self.domain
    }

    fn reuse_key(&self) -> Option<Vec<u32>> {
        let mut key = self.single_ranking.rank_sequence();
        key.extend(self.pair_ranking.rank_sequence());
        Some(key)
    }

    fn index_of(&self, path: &LabelPath) -> u64 {
        let m = path.len();
        let j = m / 2;
        let odd = m % 2 == 1;
        let slice = path.as_slice();
        let pair_ranks: Vec<u32> = (0..j)
            .map(|i| self.pair_rank(slice[2 * i], slice[2 * i + 1]) as u32)
            .collect();
        let single_rank = if odd {
            self.single_ranking.rank(LabelId(slice[m - 1])) as u64
        } else {
            0
        };
        let sr: u64 = pair_ranks.iter().map(|&r| r as u64).sum::<u64>() + single_rank;

        // Stage 1: length block.
        let mut index = self.domain.offset_of_length(m);
        // Stage 2: smaller total sums.
        let (min_sum, _) = self.sum_bounds(m);
        for s in min_sum..sr {
            index += self.group_size(m, s);
        }
        // Stage 2b (odd m): smaller single ranks within the sum group.
        if odd {
            for ss in 1..single_rank {
                index += self.dist_at(j, sr - ss);
            }
        }
        // Stage 3: pair-rank combinations before ours, then permutation.
        let pair_sum = sr - single_rank;
        let mut sorted = pair_ranks.clone();
        sorted.sort_unstable();
        for p in self.partitions(pair_sum, j).iter() {
            if p[..] == sorted[..] {
                break;
            }
            index += nop(p);
        }
        index + multiset_permutation_rank(&pair_ranks)
    }

    fn path_at(&self, index: u64) -> LabelPath {
        let (m, mut rem) = self.domain.length_of_index(index);
        let n = self.domain.label_count() as u64;
        let j = m / 2;
        let odd = m % 2 == 1;

        // Stage 2: total sum group.
        let (min_sum, max_sum) = self.sum_bounds(m);
        let mut sr = min_sum;
        while sr <= max_sum {
            let block = self.group_size(m, sr);
            if rem < block {
                break;
            }
            rem -= block;
            sr += 1;
        }
        debug_assert!(sr <= max_sum, "index beyond the last sum group");

        // Stage 2b: single rank (odd m).
        let mut single_rank = 0u64;
        if odd {
            single_rank = 1;
            while single_rank <= n {
                let block = self.dist_at(j, sr - single_rank);
                if rem < block {
                    break;
                }
                rem -= block;
                single_rank += 1;
            }
            debug_assert!(single_rank <= n, "single rank out of range");
        }

        // Stage 3: pair combination + permutation.
        let pair_sum = sr - single_rank;
        let mut pair_ranks: Option<Vec<u32>> = None;
        if j == 0 {
            debug_assert_eq!(pair_sum, 0);
            debug_assert_eq!(rem, 0);
            pair_ranks = Some(Vec::new());
        } else {
            for p in self.partitions(pair_sum, j).iter() {
                let block = nop(p);
                if rem >= block {
                    rem -= block;
                    continue;
                }
                pair_ranks = Some(multiset_permutation_unrank(rem, p).expect("rank within nop(p)"));
                break;
            }
        }
        let pair_ranks = pair_ranks.expect("stage-3 residual exceeded its group");

        // Reassemble the label path from pieces.
        let n16 = self.domain.label_count() as u16;
        let mut labels = Vec::with_capacity(m);
        for &r in &pair_ranks {
            let code = self.pair_ranking.unrank(r).0;
            labels.push(LabelId(code / n16));
            labels.push(LabelId(code % n16));
        }
        if odd {
            labels.push(self.single_ranking.unrank(single_rank as u32));
        }
        LabelPath::new(&labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn greedy_split_matches_paper_example() {
        // "4/4/3/3/6" → "4/4", "3/3", "6" (labels as ids 3,3,2,2,5).
        let path = LabelPath::new(&[l(3), l(3), l(2), l(2), l(5)]);
        let pieces = greedy_split(&path);
        assert_eq!(
            pieces,
            vec![
                Piece::Pair(l(3), l(3)),
                Piece::Pair(l(2), l(2)),
                Piece::Single(l(5)),
            ]
        );
    }

    #[test]
    fn greedy_split_even_length() {
        let path = LabelPath::new(&[l(0), l(1), l(2), l(0)]);
        assert_eq!(
            greedy_split(&path),
            vec![Piece::Pair(l(0), l(1)), Piece::Pair(l(2), l(0))]
        );
    }

    fn toy_ordering(k: usize) -> SumBasedL2Ordering {
        // 3 labels; singles 20/100/80; pair frequencies chosen non-uniform
        // and non-multiplicative (correlated).
        let domain = PathDomain::new(3, k);
        let singles = [20u64, 100, 80];
        let pairs = [
            5u64, 40, 0, // 0/0, 0/1, 0/2
            90, 10, 30, // 1/0, 1/1, 1/2
            2, 60, 25, // 2/0, 2/1, 2/2
        ];
        SumBasedL2Ordering::from_frequencies(domain, &singles, &pairs)
    }

    #[test]
    fn round_trip_exhaustive() {
        for k in 1..=4usize {
            let o = toy_ordering(k);
            for i in 0..o.domain_size() {
                let p = o.path_at(i);
                assert_eq!(o.index_of(&p), i, "k={k}, round trip at {i} ({p})");
            }
        }
    }

    #[test]
    fn sums_monotone_within_length_blocks() {
        let o = toy_ordering(4);
        let d = *o.domain();
        for m in 1..=4usize {
            let lo = d.offset_of_length(m);
            let hi = lo + d.length_block(m);
            let mut last = 0u64;
            for i in lo..hi {
                let sum = o.summed_rank(&o.path_at(i));
                assert!(sum >= last, "sum dropped from {last} to {sum} at index {i}");
                last = sum;
            }
        }
    }

    #[test]
    fn pairs_sort_by_true_pair_frequency() {
        let o = toy_ordering(2);
        let d = *o.domain();
        // The length-2 block enumerates pairs by ascending f(l1/l2).
        let lo = d.offset_of_length(2);
        let freqs = |p: &LabelPath| {
            let pairs = [5u64, 40, 0, 90, 10, 30, 2, 60, 25];
            pairs[(p.label(0).0 * 3 + p.label(1).0) as usize]
        };
        let mut last = 0u64;
        for i in lo..lo + 9 {
            let f = freqs(&o.path_at(i));
            assert!(f >= last, "pair frequency dropped at index {i}");
            last = f;
        }
    }

    #[test]
    fn from_catalog_uses_true_two_path_counts() {
        use phe_graph::GraphBuilder;
        // 0 -a-> 1 -b-> 2 and 0 -b-> 1: f(a)=1, f(b)=2, f(a/b)=1, others 0.
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(0, "b", 1);
        let g = b.build();
        let catalog = SelectivityCatalog::compute(&g, 2);
        let domain = PathDomain::new(2, 2);
        let o = SumBasedL2Ordering::from_catalog(domain, &catalog);
        // Round trip still holds.
        for i in 0..o.domain_size() {
            assert_eq!(o.index_of(&o.path_at(i)), i);
        }
        // Pair selectivities: f(a/a)=0, f(b/a)=0, f(a/b)=1, f(b/b)=1
        // (b/b chains 0-b->1-b->2). The two f=0 pairs sort first, then the
        // two f=1 pairs (tie broken by pair code: a/b before b/b).
        let ab = LabelPath::new(&[l(0), l(1)]);
        let bb = LabelPath::new(&[l(1), l(1)]);
        let block_lo = domain.offset_of_length(2);
        assert_eq!(o.index_of(&ab), block_lo + 2, "a/b after the zero pairs");
        assert_eq!(o.index_of(&bb), block_lo + 3, "b/b last");
    }
}
