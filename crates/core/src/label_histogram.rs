//! Label-path histograms: a domain ordering plus a histogram over the
//! ordered frequency sequence.

use phe_graph::LabelId;
use phe_histogram::builder::{EquiDepth, EquiWidth, HistogramBuilder, VOptimal};
use phe_histogram::{
    EndBiasedHistogram, Histogram, HistogramError, PointEstimator, SparseFrequencies,
};
use serde::{Deserialize, Serialize};

use crate::ordering::DomainOrdering;
use crate::path::LabelPath;

/// A built histogram of any supported family — concrete (unlike a trait
/// object) so it can be cloned into snapshots and serialized.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum BuiltHistogram {
    /// A contiguous-bucket histogram (equi-width/-depth, V-optimal).
    Buckets(Histogram),
    /// An end-biased histogram.
    EndBiased(EndBiasedHistogram),
}

impl PointEstimator for BuiltHistogram {
    #[inline]
    fn estimate(&self, index: usize) -> f64 {
        match self {
            BuiltHistogram::Buckets(h) => h.estimate(index),
            BuiltHistogram::EndBiased(h) => h.estimate(index),
        }
    }

    fn domain_size(&self) -> usize {
        match self {
            BuiltHistogram::Buckets(h) => h.domain_size(),
            BuiltHistogram::EndBiased(h) => h.domain_size(),
        }
    }

    fn size_bytes(&self) -> usize {
        match self {
            BuiltHistogram::Buckets(h) => h.size_bytes(),
            BuiltHistogram::EndBiased(h) => h.size_bytes(),
        }
    }
}

/// Histogram families available to the estimator.
///
/// The paper's experiments use V-optimal throughout; Figure 1 shows
/// equi-width. The greedy V-optimal mode is the paper-scale default (see
/// the `phe-histogram` crate docs for the exact-DP feasibility argument).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HistogramKind {
    /// Equal index ranges (Figure 1).
    EquiWidth,
    /// Equal cumulative frequency.
    EquiDepth,
    /// V-optimal via exact dynamic programming (small domains only).
    VOptimalExact,
    /// V-optimal via greedy bottom-up merging (paper-scale default).
    VOptimalGreedy,
    /// V-optimal via max-diff boundaries.
    VOptimalMaxDiff,
    /// End-biased: exact heavy hitters + rest average (ordering-agnostic;
    /// ablation only).
    EndBiased,
}

impl HistogramKind {
    /// Every implemented kind.
    pub const ALL: [HistogramKind; 6] = [
        HistogramKind::EquiWidth,
        HistogramKind::EquiDepth,
        HistogramKind::VOptimalExact,
        HistogramKind::VOptimalGreedy,
        HistogramKind::VOptimalMaxDiff,
        HistogramKind::EndBiased,
    ];

    /// Stable display name.
    pub fn name(&self) -> &'static str {
        match self {
            HistogramKind::EquiWidth => "equi-width",
            HistogramKind::EquiDepth => "equi-depth",
            HistogramKind::VOptimalExact => "v-optimal-exact",
            HistogramKind::VOptimalGreedy => "v-optimal-greedy",
            HistogramKind::VOptimalMaxDiff => "v-optimal-maxdiff",
            HistogramKind::EndBiased => "end-biased",
        }
    }

    /// Builds the histogram over an ordered frequency sequence.
    pub fn build(&self, data: &[u64], beta: usize) -> Result<BuiltHistogram, HistogramError> {
        Ok(match self {
            HistogramKind::EquiWidth => BuiltHistogram::Buckets(EquiWidth.build(data, beta)?),
            HistogramKind::EquiDepth => BuiltHistogram::Buckets(EquiDepth.build(data, beta)?),
            HistogramKind::VOptimalExact => {
                BuiltHistogram::Buckets(VOptimal::exact().build(data, beta)?)
            }
            HistogramKind::VOptimalGreedy => {
                BuiltHistogram::Buckets(VOptimal::greedy().build(data, beta)?)
            }
            HistogramKind::VOptimalMaxDiff => {
                BuiltHistogram::Buckets(VOptimal::maxdiff().build(data, beta)?)
            }
            HistogramKind::EndBiased => {
                BuiltHistogram::EndBiased(EndBiasedHistogram::build(data, beta)?)
            }
        })
    }

    /// Builds the histogram from sparse ordered `(index, frequency)` runs
    /// with implicit zeros — same boundaries as [`HistogramKind::build`]
    /// on the materialized sequence (see the `phe-histogram` sparse
    /// builders for the exactness guarantee).
    pub fn build_sparse(
        &self,
        data: &SparseFrequencies<'_>,
        beta: usize,
    ) -> Result<BuiltHistogram, HistogramError> {
        Ok(match self {
            HistogramKind::EquiWidth => {
                BuiltHistogram::Buckets(EquiWidth.build_sparse(data, beta)?)
            }
            HistogramKind::EquiDepth => {
                BuiltHistogram::Buckets(EquiDepth.build_sparse(data, beta)?)
            }
            HistogramKind::VOptimalExact => {
                BuiltHistogram::Buckets(VOptimal::exact().build_sparse(data, beta)?)
            }
            HistogramKind::VOptimalGreedy => {
                BuiltHistogram::Buckets(VOptimal::greedy().build_sparse(data, beta)?)
            }
            HistogramKind::VOptimalMaxDiff => {
                BuiltHistogram::Buckets(VOptimal::maxdiff().build_sparse(data, beta)?)
            }
            HistogramKind::EndBiased => {
                BuiltHistogram::EndBiased(EndBiasedHistogram::build_sparse(data, beta)?)
            }
        })
    }
}

impl std::fmt::Display for HistogramKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Bridges a block-compressed run into the histogram crate's streaming
/// [`phe_histogram::RunSource`] contract — the glue that lets the
/// builders decode blocks directly (this crate owns neither the trait
/// nor the run type, so the adapter lives at the integration layer).
struct CompressedSource<'a>(&'a phe_pathenum::CompressedRuns);

impl phe_histogram::RunSource for CompressedSource<'_> {
    fn nnz(&self) -> usize {
        self.0.len()
    }

    fn cursor(&self) -> Box<dyn Iterator<Item = (u64, u64)> + '_> {
        Box::new(self.0.iter())
    }
}

/// A histogram over the label-path domain in a chosen ordering: the
/// structure a query optimizer would actually retain (the catalog itself
/// is construction-time only).
pub struct LabelPathHistogram {
    ordering: Box<dyn DomainOrdering>,
    histogram: BuiltHistogram,
}

impl LabelPathHistogram {
    /// Builds a histogram of `kind` with `beta` buckets over the given
    /// frequency sequence, which must already be permuted into
    /// `ordering`'s index space (see [`crate::eval::ordered_frequencies`]).
    pub fn from_ordered_frequencies(
        ordering: Box<dyn DomainOrdering>,
        ordered: &[u64],
        kind: HistogramKind,
        beta: usize,
    ) -> Result<LabelPathHistogram, HistogramError> {
        assert_eq!(
            ordered.len() as u64,
            ordering.domain_size(),
            "frequency sequence does not cover the domain"
        );
        let histogram = kind.build(ordered, beta)?;
        Ok(LabelPathHistogram {
            ordering,
            histogram,
        })
    }

    /// Builds a histogram from **block-compressed** sparse ordered
    /// `(index, frequency)` runs (implicit zeros), already permuted into
    /// `ordering`'s index space by
    /// [`crate::eval::sparse_ordered_frequencies`]. This is the streaming
    /// pipeline's construction path: the builders decode the blocks
    /// through a cursor, and neither the dense ordered sequence nor the
    /// plain pair vector is ever materialized.
    pub fn from_sparse_frequencies(
        ordering: Box<dyn DomainOrdering>,
        runs: &phe_pathenum::CompressedRuns,
        kind: HistogramKind,
        beta: usize,
    ) -> Result<LabelPathHistogram, HistogramError> {
        let source = CompressedSource(runs);
        let data = SparseFrequencies::from_source(&source, ordering.domain_size())?;
        let histogram = kind.build_sparse(&data, beta)?;
        Ok(LabelPathHistogram {
            ordering,
            histogram,
        })
    }

    /// Reassembles from parts (snapshot restore).
    pub fn from_parts(
        ordering: Box<dyn DomainOrdering>,
        histogram: BuiltHistogram,
    ) -> LabelPathHistogram {
        assert_eq!(
            histogram.domain_size() as u64,
            ordering.domain_size(),
            "histogram and ordering disagree on the domain size"
        );
        LabelPathHistogram {
            ordering,
            histogram,
        }
    }

    /// Estimated selectivity `e(ℓ)`.
    #[inline]
    pub fn estimate(&self, path: &LabelPath) -> f64 {
        let index = self.ordering.index_of(path);
        self.histogram.estimate(index as usize)
    }

    /// Estimated selectivity from a label slice.
    pub fn estimate_labels(&self, labels: &[LabelId]) -> f64 {
        self.estimate(&LabelPath::new(labels))
    }

    /// The domain ordering in use.
    pub fn ordering(&self) -> &dyn DomainOrdering {
        self.ordering.as_ref()
    }

    /// The underlying histogram.
    pub fn histogram(&self) -> &BuiltHistogram {
        &self.histogram
    }

    /// Approximate retained memory: histogram buckets plus any ordering
    /// tables beyond O(|L|) state (only the ideal reference ordering has
    /// them — see [`DomainOrdering::size_bytes`]).
    pub fn size_bytes(&self) -> usize {
        self.histogram.size_bytes() + self.ordering.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PathDomain;
    use crate::ordering::NumericalOrdering;
    use crate::ranking::LabelRanking;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    #[test]
    fn estimate_reads_through_the_ordering() {
        // Domain of 2 labels, k=2: canonical frequencies 0..=5 ascending,
        // identity ordering, singleton buckets ⇒ estimates are exact.
        let domain = PathDomain::new(2, 2);
        let ordering = Box::new(NumericalOrdering::new(
            domain,
            LabelRanking::identity(2),
            "num-alph",
        ));
        let freqs = [10u64, 20, 30, 40, 50, 60];
        let h = LabelPathHistogram::from_ordered_frequencies(
            ordering,
            &freqs,
            HistogramKind::EquiWidth,
            6,
        )
        .unwrap();
        assert_eq!(h.estimate(&LabelPath::single(l(0))), 10.0);
        assert_eq!(h.estimate(&LabelPath::single(l(1))), 20.0);
        assert_eq!(h.estimate_labels(&[l(1), l(1)]), 60.0);
    }

    #[test]
    fn all_kinds_build() {
        let domain = PathDomain::new(2, 2);
        let freqs = [5u64, 1, 9, 2, 8, 3];
        for kind in HistogramKind::ALL {
            let ordering = Box::new(NumericalOrdering::new(
                domain,
                LabelRanking::identity(2),
                "num-alph",
            ));
            let h =
                LabelPathHistogram::from_ordered_frequencies(ordering, &freqs, kind, 3).unwrap();
            let e = h.estimate(&LabelPath::single(l(0)));
            assert!(e.is_finite() && e >= 0.0, "{kind}: estimate {e}");
        }
    }

    #[test]
    #[should_panic(expected = "does not cover the domain")]
    fn wrong_length_sequence_rejected() {
        let domain = PathDomain::new(2, 2);
        let ordering = Box::new(NumericalOrdering::new(
            domain,
            LabelRanking::identity(2),
            "num-alph",
        ));
        let _ = LabelPathHistogram::from_ordered_frequencies(
            ordering,
            &[1, 2, 3],
            HistogramKind::EquiWidth,
            2,
        );
    }

    #[test]
    fn kind_names_are_stable() {
        assert_eq!(HistogramKind::VOptimalGreedy.name(), "v-optimal-greedy");
        assert_eq!(HistogramKind::EquiWidth.to_string(), "equi-width");
    }
}
