//! Persistable estimator snapshots.
//!
//! The whole point of a label-path histogram is that the *catalog* (the
//! full exact selectivity table) is a construction-time artifact: what a
//! query optimizer retains is the ordering's small reconstruction state
//! plus β buckets. [`EstimatorSnapshot`] captures exactly that retained
//! state — serializable with serde, a few kilobytes — and
//! [`EstimatorSnapshot::restore`] rebuilds a working
//! [`LabelPathHistogram`] with **no graph access at all**.
//!
//! What is stored per ordering:
//!
//! * numerical / lexicographical / sum-based — label names (for
//!   alphabetical ranks) and label frequencies (for cardinality ranks);
//! * sum-based-L2 — additionally the `n²` pair frequencies;
//! * ideal — not supported: its state is the `O(|Lk|)` permutation, the
//!   very cost the paper rules it out by. Asking for it is an error, not
//!   a silently huge file.

use phe_encoding::{base64_decode, base64_encode};
use serde::{Deserialize, Serialize};

use crate::base_set::SumBasedL2Ordering;
use crate::domain::PathDomain;
use crate::label_histogram::{BuiltHistogram, HistogramKind, LabelPathHistogram};
use crate::ordering::{
    DomainOrdering, LexicographicalOrdering, NumericalOrdering, OrderingKind, SumBasedOrdering,
};
use crate::ranking::LabelRanking;

/// Errors from snapshotting or restoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The ideal ordering cannot be snapshotted (its state is the full
    /// domain permutation).
    IdealNotSupported,
    /// Stored fields are inconsistent (wrong lengths, unknown labels).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::IdealNotSupported => write!(
                f,
                "the ideal ordering retains O(|Lk|) state and cannot be snapshotted"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// Snapshots travel between builder and serving processes (see
// `phe-service`), so they and everything `restore()` produces must be
// shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EstimatorSnapshot>();
};

/// Current snapshot format version. v1 files (written before the sparse
/// pipeline) carry no `version` field and restore unchanged; v2 adds the
/// optional sparse-build provenance (`domain_paths`, `nonzero_paths`);
/// v3 adds the delta lineage (`base_build_id`, `applied_deltas`) written
/// by the incremental-maintenance pipeline; v4 adds the optional
/// block-compressed sparse catalog (`sparse_runs`) for estimators built
/// with `retain_sparse`, so a restored estimator can resume incremental
/// maintenance without a recount; v5 adds the tagged block codec marker
/// on [`CompressedRunsSnapshot`] (untagged streams keep restoring), the
/// label-follow matrix (`follow_bits_base64`, so serving tiers can prune
/// impossible expansion branches without the graph), and the optional
/// external catalog file reference (`catalog_file`, pointing at a `.phc`
/// sidecar the serving tier memory-maps instead of inlining the blocks
/// in JSON). Every older version restores; newer versions are refused.
pub const SNAPSHOT_VERSION: u32 = 5;

/// The serializable retained state of a built estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimatorSnapshot {
    /// Format version: `None` for v1 files, `Some(2)` / `Some(3)` for
    /// snapshots written by the sparse pipeline. Restoring refuses
    /// versions newer than [`SNAPSHOT_VERSION`].
    pub version: Option<u32>,
    /// Domain size `|Lk|` at build time (v2; provenance only).
    pub domain_paths: Option<u64>,
    /// Realized (non-zero) paths at build time (v2; provenance only —
    /// what the `phe build --stats` report is derived from).
    pub nonzero_paths: Option<u64>,
    /// Stable id of the full build these statistics descend from (v3;
    /// lineage only — unchanged as deltas are applied on top).
    pub base_build_id: Option<u64>,
    /// Incremental deltas folded in since that full build (v3; lineage
    /// only — `Some(0)` for a fresh build).
    pub applied_deltas: Option<u64>,
    /// Maximum path length `k`.
    pub k: usize,
    /// Bucket budget the histogram was built with.
    pub beta: usize,
    /// The ordering method.
    pub ordering: OrderingKind,
    /// The histogram family.
    pub histogram_kind: HistogramKind,
    /// Label names indexed by label id (reconstructs alphabetical ranks
    /// and lets the restored estimator resolve names).
    pub label_names: Vec<String>,
    /// Per-label frequencies `f(l)` (reconstructs cardinality ranks).
    pub label_frequencies: Vec<u64>,
    /// Pair frequencies `f(l1/l2)` keyed `l1·n + l2`; present only for
    /// the `sum-based-L2` ordering.
    pub pair_frequencies: Option<Vec<u64>>,
    /// The retained sparse catalog as block-compressed runs (v4; present
    /// only for estimators built with `retain_sparse`). Persisting the
    /// *compressed* blocks — not 16 B/entry pairs — is what keeps
    /// maintained snapshots a few bytes per realized path.
    pub sparse_runs: Option<CompressedRunsSnapshot>,
    /// The label-follow matrix as base64 of LSB-first packed `|L|²` bits
    /// in `a · |L| + b` layout (v5). Lets a serving tier prune regular
    /// path expression branches with impossible adjacent label pairs —
    /// without the graph the matrix was computed from.
    pub follow_bits_base64: Option<String>,
    /// Relative path of an external `.phc` catalog file holding the
    /// sparse catalog (v5; written by disk-resident builds). Resolved
    /// against the snapshot file's own directory and memory-mapped by
    /// the loader, so the catalog payload never transits JSON and never
    /// has to be heap-resident. When set, `sparse_runs` is absent.
    pub catalog_file: Option<String>,
    /// The built histogram.
    pub histogram: BuiltHistogram,
}

/// The serialized form of a [`phe_pathenum::CompressedRuns`]: the raw
/// block bytes (base64, since the wire format is JSON) plus the per-block
/// entry counts the skip index is re-derived from. Restoring re-validates
/// every run invariant, so a corrupt file is refused, not trusted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompressedRunsSnapshot {
    /// Number of entries (restore cross-checks the decode against it).
    pub nnz: u64,
    /// Block stream codec: `None` for the legacy (≤ v4) untagged
    /// delta-varint stream, [`RUNS_CODEC_TAGGED`] for the tagged
    /// per-block codec (varint or FOR/bit-packed, chosen block by
    /// block). Unknown values are refused at restore.
    pub codec: Option<String>,
    /// Base64 of the block byte stream (layout per `codec`).
    pub blocks_base64: String,
    /// Entries per block, in block order.
    pub block_lens: Vec<u32>,
}

/// [`CompressedRunsSnapshot::codec`] marker for the tagged block stream
/// (v5 writers).
pub const RUNS_CODEC_TAGGED: &str = "tagged";

impl CompressedRunsSnapshot {
    /// Captures a run for persistence.
    pub fn from_runs(runs: &phe_pathenum::CompressedRuns) -> CompressedRunsSnapshot {
        CompressedRunsSnapshot {
            nnz: runs.len() as u64,
            codec: Some(RUNS_CODEC_TAGGED.to_owned()),
            blocks_base64: base64_encode(runs.bytes()),
            block_lens: runs.skip_index().iter().map(|meta| meta.len).collect(),
        }
    }

    /// Decodes and re-validates the run, dispatching on the codec
    /// marker: legacy untagged streams are re-encoded into the tagged
    /// form, tagged streams restore byte-exact.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] on bad base64, an unknown codec,
    /// violated run invariants, or an entry count that disagrees with
    /// the declared `nnz`.
    pub fn restore(&self) -> Result<phe_pathenum::CompressedRuns, SnapshotError> {
        let bytes = base64_decode(&self.blocks_base64)
            .ok_or_else(|| SnapshotError::Corrupt("sparse runs are not valid base64".into()))?;
        let runs = match self.codec.as_deref() {
            None => phe_pathenum::CompressedRuns::from_encoded(bytes, &self.block_lens),
            Some(RUNS_CODEC_TAGGED) => {
                phe_pathenum::CompressedRuns::from_tagged_encoded(bytes, &self.block_lens)
            }
            Some(other) => {
                return Err(SnapshotError::Corrupt(format!(
                    "unknown sparse run codec {other:?}"
                )))
            }
        }
        .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        if runs.len() as u64 != self.nnz {
            return Err(SnapshotError::Corrupt(format!(
                "sparse runs declare {} entries but decode to {}",
                self.nnz,
                runs.len()
            )));
        }
        Ok(runs)
    }

    /// Serialized payload bytes (base64 blocks + block lengths).
    pub fn payload_bytes(&self) -> usize {
        self.blocks_base64.len() + self.block_lens.len() * std::mem::size_of::<u32>()
    }
}

impl EstimatorSnapshot {
    /// Rebuilds the retained estimator (ordering + histogram) without any
    /// graph or catalog access. Accepts every format up to
    /// [`SNAPSHOT_VERSION`] — v1 (no `version` field) through v5;
    /// newer versions are refused.
    pub fn restore(&self) -> Result<LabelPathHistogram, SnapshotError> {
        if let Some(version) = self.version.filter(|&v| v > SNAPSHOT_VERSION) {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot version {version} is newer than supported {SNAPSHOT_VERSION}"
            )));
        }
        let n = self.label_names.len();
        if self.label_frequencies.len() != n {
            return Err(SnapshotError::Corrupt(format!(
                "{n} label names but {} frequencies",
                self.label_frequencies.len()
            )));
        }
        if n == 0 || self.k == 0 || self.k > crate::path::MAX_K {
            return Err(SnapshotError::Corrupt(format!(
                "invalid dimensions: {n} labels, k = {}",
                self.k
            )));
        }
        let domain = PathDomain::new(n, self.k);
        let ordering = self.rebuild_ordering(domain)?;
        if ordering.domain_size() as usize
            != phe_histogram::PointEstimator::domain_size(&self.histogram)
        {
            return Err(SnapshotError::Corrupt(format!(
                "histogram covers {} values but the domain has {}",
                phe_histogram::PointEstimator::domain_size(&self.histogram),
                ordering.domain_size()
            )));
        }
        Ok(LabelPathHistogram::from_parts(
            ordering,
            self.histogram.clone(),
        ))
    }

    fn rebuild_ordering(
        &self,
        domain: PathDomain,
    ) -> Result<Box<dyn DomainOrdering>, SnapshotError> {
        let alph = || {
            let mut ids: Vec<phe_graph::LabelId> = (0..self.label_names.len() as u16)
                .map(phe_graph::LabelId)
                .collect();
            ids.sort_by(|a, b| self.label_names[a.index()].cmp(&self.label_names[b.index()]));
            LabelRanking::from_rank_order(ids)
        };
        let card = || LabelRanking::cardinality_from_frequencies(&self.label_frequencies);
        Ok(match self.ordering {
            OrderingKind::NumAlph => Box::new(NumericalOrdering::new(domain, alph(), "num-alph")),
            OrderingKind::NumCard => Box::new(NumericalOrdering::new(domain, card(), "num-card")),
            OrderingKind::LexAlph => {
                Box::new(LexicographicalOrdering::new(domain, alph(), "lex-alph"))
            }
            OrderingKind::LexCard => {
                Box::new(LexicographicalOrdering::new(domain, card(), "lex-card"))
            }
            OrderingKind::SumBased => Box::new(SumBasedOrdering::new(domain, card())),
            OrderingKind::SumBasedL2 => {
                let n = self.label_names.len();
                let pairs = self.pair_frequencies.as_ref().ok_or_else(|| {
                    SnapshotError::Corrupt("sum-based-L2 snapshot without pair frequencies".into())
                })?;
                if pairs.len() != n * n {
                    return Err(SnapshotError::Corrupt(format!(
                        "expected {} pair frequencies, found {}",
                        n * n,
                        pairs.len()
                    )));
                }
                Box::new(SumBasedL2Ordering::from_frequencies(
                    domain,
                    &self.label_frequencies,
                    pairs,
                ))
            }
            OrderingKind::Ideal => return Err(SnapshotError::IdealNotSupported),
        })
    }

    /// Rebuilds the retained **sparse catalog** from a v4 snapshot's
    /// compressed blocks — `None` when the snapshot carries none (older
    /// formats, or an estimator built without `retain_sparse`). The
    /// encoding is reconstructed from the snapshot's own dimensions
    /// (`|L|` = label count, `k`), so no graph access is needed.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] when the blocks fail validation or an
    /// entry falls outside the snapshot's domain.
    pub fn restore_sparse_catalog(
        &self,
    ) -> Result<Option<phe_pathenum::SparseCatalog>, SnapshotError> {
        let Some(snapshot_runs) = self.sparse_runs.as_ref() else {
            return Ok(None);
        };
        let runs = snapshot_runs.restore()?;
        let encoding = phe_pathenum::PathEncoding::try_new(self.label_names.len(), self.k)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        let catalog = phe_pathenum::SparseCatalog::from_runs(encoding, runs)
            .map_err(|e| SnapshotError::Corrupt(e.to_string()))?;
        Ok(Some(catalog))
    }

    /// Rebuilds the label-follow matrix from a v5 snapshot — `None` for
    /// older formats. The serving tier uses it to prune regular path
    /// expression branches whose adjacent label pairs cannot occur.
    ///
    /// # Errors
    /// [`SnapshotError::Corrupt`] on bad base64 or a bit count that does
    /// not cover `|L|²`.
    pub fn restore_follow_matrix(&self) -> Result<Option<phe_graph::FollowMatrix>, SnapshotError> {
        let Some(text) = self.follow_bits_base64.as_ref() else {
            return Ok(None);
        };
        let packed = base64_decode(text)
            .ok_or_else(|| SnapshotError::Corrupt("follow bits are not valid base64".into()))?;
        let n = self.label_names.len();
        if packed.len() != (n * n).div_ceil(8) {
            return Err(SnapshotError::Corrupt(format!(
                "{} packed follow bytes cannot hold {n}² bits",
                packed.len()
            )));
        }
        let bits: Vec<bool> = (0..n * n)
            .map(|i| packed[i / 8] & (1 << (i % 8)) != 0)
            .collect();
        Ok(Some(phe_graph::FollowMatrix::from_bits(n, bits)))
    }

    /// Approximate serialized size (bytes) — the artifact an optimizer
    /// ships; compare against `|Lk| · 8` for storing the raw table.
    pub fn retained_bytes(&self) -> usize {
        use phe_histogram::PointEstimator;
        let names: usize = self.label_names.iter().map(String::len).sum();
        names
            + self.label_frequencies.len() * 8
            + self.pair_frequencies.as_ref().map_or(0, |p| p.len() * 8)
            + self.sparse_runs.as_ref().map_or(0, |r| r.payload_bytes())
            + self.histogram.size_bytes()
    }
}

/// Serializes a follow matrix for the v5 snapshot: `|L|²` bits in
/// `a · |L| + b` layout, packed LSB-first into bytes, base64-wrapped for
/// the JSON wire format.
pub fn encode_follow_bits(follow: &phe_graph::FollowMatrix) -> String {
    let bits = follow.as_bits();
    let mut packed = vec![0u8; bits.len().div_ceil(8)];
    for (i, &bit) in bits.iter().enumerate() {
        if bit {
            packed[i / 8] |= 1 << (i % 8);
        }
    }
    base64_encode(&packed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, PathSelectivityEstimator};
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use phe_graph::LabelId;

    fn graph() -> phe_graph::Graph {
        erdos_renyi(60, 600, 4, LabelDistribution::Zipf { exponent: 1.0 }, 77)
    }

    fn build(ordering: OrderingKind) -> PathSelectivityEstimator {
        PathSelectivityEstimator::build(
            &graph(),
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap()
    }

    #[test]
    fn snapshot_restores_identical_estimates() {
        for ordering in OrderingKind::ALL {
            let est = build(ordering);
            let snapshot = est.snapshot().unwrap();
            let restored = snapshot.restore().unwrap();
            for l1 in 0..4u16 {
                for l2 in 0..4u16 {
                    let path = [LabelId(l1), LabelId(l2)];
                    assert_eq!(
                        est.estimate(&path),
                        restored.estimate_labels(&path),
                        "{}: {l1}/{l2}",
                        ordering.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ideal_refuses_to_snapshot() {
        let est = build(OrderingKind::Ideal);
        assert_eq!(
            est.snapshot().unwrap_err(),
            SnapshotError::IdealNotSupported
        );
    }

    #[test]
    fn snapshot_is_small() {
        let est = build(OrderingKind::SumBased);
        let snapshot = est.snapshot().unwrap();
        // Retained state ≪ the raw table (domain 84 paths * 8 bytes would
        // already be 672 bytes; β = 16 buckets dominate here, but the point
        // is it does not scale with |Lk|).
        assert!(snapshot.retained_bytes() < 16 * 64 + 4 * 16 + 64);
        assert_eq!(snapshot.label_names.len(), 4);
    }

    #[test]
    fn v1_snapshots_without_version_field_restore() {
        // A v1 file is today's serialization minus the v2 fields; the
        // compat serde treats missing fields as null ⇒ None.
        let est = build(OrderingKind::SumBased);
        let snapshot = est.snapshot().unwrap();
        let mut v1 = snapshot.clone();
        v1.version = None;
        v1.domain_paths = None;
        v1.nonzero_paths = None;
        v1.base_build_id = None;
        v1.applied_deltas = None;
        let json = serde_json::to_string(&v1).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.version, None);
        let restored = parsed.restore().unwrap();
        for l in 0..4u16 {
            let path = [LabelId(l)];
            assert_eq!(est.estimate(&path), restored.estimate_labels(&path));
        }
        // And a literal v1 wire file (no version key at all) parses too.
        let stripped: String = {
            let full = serde_json::to_string(&snapshot).unwrap();
            // The newer optional fields serialize as null when absent;
            // drop them from the object to mimic a pre-v2 writer.
            full.replacen(&format!("\"version\":{SNAPSHOT_VERSION},"), "", 1)
                .replacen(&format!("\"domain_paths\":{},", est.domain_size()), "", 1)
                .replacen(
                    &format!("\"nonzero_paths\":{},", est.footprint().nonzero_paths),
                    "",
                    1,
                )
                .replacen(&format!("\"base_build_id\":{},", est.build_id()), "", 1)
                .replacen("\"applied_deltas\":0,", "", 1)
        };
        let parsed: EstimatorSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(parsed.version, None);
        parsed.restore().unwrap();
    }

    #[test]
    fn v2_snapshots_without_lineage_fields_restore() {
        // A v2 file is today's serialization with version 2 and no delta
        // lineage — written by the sparse pipeline before incremental
        // maintenance existed.
        let est = build(OrderingKind::SumBased);
        let mut v2 = est.snapshot().unwrap();
        v2.version = Some(2);
        v2.base_build_id = None;
        v2.applied_deltas = None;
        let json = serde_json::to_string(&v2).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.version, Some(2));
        assert_eq!(parsed.base_build_id, None);
        let restored = parsed.restore().unwrap();
        for l in 0..4u16 {
            let path = [LabelId(l)];
            assert_eq!(est.estimate(&path), restored.estimate_labels(&path));
        }
    }

    #[test]
    fn current_snapshots_carry_delta_lineage() {
        let est = build(OrderingKind::SumBased);
        let snapshot = est.snapshot().unwrap();
        assert_eq!(snapshot.version, Some(SNAPSHOT_VERSION));
        assert_eq!(snapshot.base_build_id, Some(est.build_id()));
        assert_eq!(snapshot.applied_deltas, Some(0));
        // Lineage round-trips through the wire format.
        let json = serde_json::to_string(&snapshot).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.base_build_id, snapshot.base_build_id);
        assert_eq!(parsed.applied_deltas, Some(0));
        parsed.restore().unwrap();
    }

    #[test]
    fn v3_snapshots_without_sparse_runs_restore() {
        // A v3 file is today's serialization with version 3 and no
        // compressed catalog — written before the block-compressed
        // storage existed.
        let est = build(OrderingKind::SumBased);
        let mut v3 = est.snapshot().unwrap();
        v3.version = Some(3);
        v3.sparse_runs = None;
        let json = serde_json::to_string(&v3).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.version, Some(3));
        assert!(parsed.sparse_runs.is_none());
        assert_eq!(parsed.restore_sparse_catalog().unwrap(), None);
        let restored = parsed.restore().unwrap();
        for l in 0..4u16 {
            let path = [LabelId(l)];
            assert_eq!(est.estimate(&path), restored.estimate_labels(&path));
        }
    }

    #[test]
    fn v4_snapshots_persist_the_compressed_catalog() {
        // A maintained estimator ships its sparse catalog as compressed
        // blocks; the restored catalog is bit-identical, and the payload
        // undercuts what 16 B/entry pairs would cost even after base64.
        let est = PathSelectivityEstimator::build(
            &graph(),
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering: OrderingKind::SumBased,
                histogram: crate::label_histogram::HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: true,
            },
        )
        .unwrap();
        let snapshot = est.snapshot().unwrap();
        let runs = snapshot
            .sparse_runs
            .as_ref()
            .expect("retain_sparse persists the catalog");
        assert_eq!(runs.nnz, est.footprint().nonzero_paths);

        let json = serde_json::to_string(&snapshot).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        let catalog = parsed
            .restore_sparse_catalog()
            .unwrap()
            .expect("v4 carries the catalog");
        assert_eq!(&catalog, est.sparse_catalog().unwrap());

        // Plain pairs through the same base64 envelope would cost
        // ceil(16/3)·4 ≈ 21.3 B/entry; the compressed payload must come
        // in well under the raw 16 B/entry.
        let plain = est.sparse_catalog().unwrap().plain_bytes();
        assert!(
            parsed.sparse_runs.as_ref().unwrap().payload_bytes() < plain,
            "{} base64 bytes vs {} plain bytes",
            parsed.sparse_runs.as_ref().unwrap().payload_bytes(),
            plain
        );

        // An unmaintained estimator persists no runs.
        let lean = build(OrderingKind::SumBased).snapshot().unwrap();
        assert!(lean.sparse_runs.is_none());

        // Corrupt payloads are refused, not trusted.
        let mut broken = snapshot.clone();
        broken.sparse_runs.as_mut().unwrap().blocks_base64 = "not base64!".into();
        assert!(matches!(
            broken.restore_sparse_catalog(),
            Err(SnapshotError::Corrupt(_))
        ));
        let mut truncated = snapshot.clone();
        truncated.sparse_runs.as_mut().unwrap().block_lens.pop();
        assert!(matches!(
            truncated.restore_sparse_catalog(),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn v4_untagged_runs_still_restore() {
        // A v4 writer stored the raw per-entry delta-varint stream with
        // no codec marker. Build that wire form by hand and check the
        // restore path re-encodes it into today's tagged representation
        // with identical content.
        let entries: Vec<(u64, u64)> = (0..500u64).map(|i| (i * 7 + 2, i % 9 + 1)).collect();
        let mut bytes = Vec::new();
        let mut lens = Vec::new();
        for block in entries.chunks(128) {
            let mut prev = 0u64;
            for (n, &(index, count)) in block.iter().enumerate() {
                let mut write = |mut v: u64| loop {
                    if v < 0x80 {
                        bytes.push(v as u8);
                        break;
                    }
                    bytes.push((v as u8 & 0x7f) | 0x80);
                    v >>= 7;
                };
                write(if n == 0 { index } else { index - prev });
                write(count);
                prev = index;
            }
            lens.push(block.len() as u32);
        }
        let legacy = CompressedRunsSnapshot {
            nnz: entries.len() as u64,
            codec: None,
            blocks_base64: base64_encode(&bytes),
            block_lens: lens,
        };
        let restored = legacy.restore().unwrap();
        assert_eq!(restored.to_vec(), entries);

        // The same payload under today's marker is refused — tagged
        // streams start with a tag byte, not a raw delta.
        let mistagged = CompressedRunsSnapshot {
            codec: Some(RUNS_CODEC_TAGGED.to_owned()),
            ..legacy.clone()
        };
        assert!(mistagged.restore().is_err());

        // Unknown codecs are refused outright.
        let unknown = CompressedRunsSnapshot {
            codec: Some("zstd".to_owned()),
            ..legacy
        };
        assert!(matches!(
            unknown.restore(),
            Err(SnapshotError::Corrupt(msg)) if msg.contains("unknown")
        ));
    }

    #[test]
    fn v5_snapshots_carry_the_follow_matrix() {
        let g = graph();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap();
        let snapshot = est.snapshot().unwrap();
        assert_eq!(snapshot.version, Some(SNAPSHOT_VERSION));
        assert!(snapshot.follow_bits_base64.is_some());

        // Round trip through the wire format lands on the graph's matrix.
        let json = serde_json::to_string(&snapshot).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        let follow = parsed
            .restore_follow_matrix()
            .unwrap()
            .expect("v5 ships the matrix");
        assert_eq!(follow, phe_graph::FollowMatrix::from_graph(&g));

        // Older snapshots (no field) restore to None, not an error.
        let mut v4 = snapshot.clone();
        v4.version = Some(4);
        v4.follow_bits_base64 = None;
        assert_eq!(v4.restore_follow_matrix().unwrap(), None);
        v4.restore().unwrap();

        // A bit count that cannot cover |L|² is refused.
        let mut short = snapshot.clone();
        short.follow_bits_base64 = Some(base64_encode(&[0u8]));
        assert!(matches!(
            short.restore_follow_matrix(),
            Err(SnapshotError::Corrupt(_))
        ));

        // The external catalog reference round-trips.
        let mut external = snapshot;
        external.catalog_file = Some("my-catalog.phc".into());
        let json = serde_json::to_string(&external).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.catalog_file.as_deref(), Some("my-catalog.phc"));
    }

    #[test]
    fn future_snapshot_versions_are_refused() {
        let est = build(OrderingKind::SumBased);
        let mut snapshot = est.snapshot().unwrap();
        assert_eq!(snapshot.version, Some(SNAPSHOT_VERSION));
        snapshot.version = Some(SNAPSHOT_VERSION + 1);
        let err = snapshot
            .restore()
            .err()
            .expect("must refuse newer versions");
        match err {
            SnapshotError::Corrupt(msg) => assert!(msg.contains("newer"), "{msg}"),
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let est = build(OrderingKind::SumBasedL2);
        let mut snapshot = est.snapshot().unwrap();
        snapshot.pair_frequencies = None;
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Corrupt(_))));

        let mut snapshot = est.snapshot().unwrap();
        snapshot.label_frequencies.pop();
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Corrupt(_))));

        let mut snapshot = est.snapshot().unwrap();
        snapshot.k = 0;
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Corrupt(_))));
    }
}
