//! Persistable estimator snapshots.
//!
//! The whole point of a label-path histogram is that the *catalog* (the
//! full exact selectivity table) is a construction-time artifact: what a
//! query optimizer retains is the ordering's small reconstruction state
//! plus β buckets. [`EstimatorSnapshot`] captures exactly that retained
//! state — serializable with serde, a few kilobytes — and
//! [`EstimatorSnapshot::restore`] rebuilds a working
//! [`LabelPathHistogram`] with **no graph access at all**.
//!
//! What is stored per ordering:
//!
//! * numerical / lexicographical / sum-based — label names (for
//!   alphabetical ranks) and label frequencies (for cardinality ranks);
//! * sum-based-L2 — additionally the `n²` pair frequencies;
//! * ideal — not supported: its state is the `O(|Lk|)` permutation, the
//!   very cost the paper rules it out by. Asking for it is an error, not
//!   a silently huge file.

use serde::{Deserialize, Serialize};

use crate::base_set::SumBasedL2Ordering;
use crate::domain::PathDomain;
use crate::label_histogram::{BuiltHistogram, HistogramKind, LabelPathHistogram};
use crate::ordering::{
    DomainOrdering, LexicographicalOrdering, NumericalOrdering, OrderingKind, SumBasedOrdering,
};
use crate::ranking::LabelRanking;

/// Errors from snapshotting or restoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The ideal ordering cannot be snapshotted (its state is the full
    /// domain permutation).
    IdealNotSupported,
    /// Stored fields are inconsistent (wrong lengths, unknown labels).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::IdealNotSupported => write!(
                f,
                "the ideal ordering retains O(|Lk|) state and cannot be snapshotted"
            ),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

// Snapshots travel between builder and serving processes (see
// `phe-service`), so they and everything `restore()` produces must be
// shareable across threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<EstimatorSnapshot>();
};

/// Current snapshot format version. v1 files (written before the sparse
/// pipeline) carry no `version` field and restore unchanged; v2 adds the
/// optional sparse-build provenance (`domain_paths`, `nonzero_paths`);
/// v3 adds the delta lineage (`base_build_id`, `applied_deltas`) written
/// by the incremental-maintenance pipeline. Every older version restores;
/// newer versions are refused.
pub const SNAPSHOT_VERSION: u32 = 3;

/// The serializable retained state of a built estimator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EstimatorSnapshot {
    /// Format version: `None` for v1 files, `Some(2)` / `Some(3)` for
    /// snapshots written by the sparse pipeline. Restoring refuses
    /// versions newer than [`SNAPSHOT_VERSION`].
    pub version: Option<u32>,
    /// Domain size `|Lk|` at build time (v2; provenance only).
    pub domain_paths: Option<u64>,
    /// Realized (non-zero) paths at build time (v2; provenance only —
    /// what the `phe build --stats` report is derived from).
    pub nonzero_paths: Option<u64>,
    /// Stable id of the full build these statistics descend from (v3;
    /// lineage only — unchanged as deltas are applied on top).
    pub base_build_id: Option<u64>,
    /// Incremental deltas folded in since that full build (v3; lineage
    /// only — `Some(0)` for a fresh build).
    pub applied_deltas: Option<u64>,
    /// Maximum path length `k`.
    pub k: usize,
    /// Bucket budget the histogram was built with.
    pub beta: usize,
    /// The ordering method.
    pub ordering: OrderingKind,
    /// The histogram family.
    pub histogram_kind: HistogramKind,
    /// Label names indexed by label id (reconstructs alphabetical ranks
    /// and lets the restored estimator resolve names).
    pub label_names: Vec<String>,
    /// Per-label frequencies `f(l)` (reconstructs cardinality ranks).
    pub label_frequencies: Vec<u64>,
    /// Pair frequencies `f(l1/l2)` keyed `l1·n + l2`; present only for
    /// the `sum-based-L2` ordering.
    pub pair_frequencies: Option<Vec<u64>>,
    /// The built histogram.
    pub histogram: BuiltHistogram,
}

impl EstimatorSnapshot {
    /// Rebuilds the retained estimator (ordering + histogram) without any
    /// graph or catalog access. Accepts every format up to
    /// [`SNAPSHOT_VERSION`] — v1 (no `version` field), v2, and v3;
    /// newer versions are refused.
    pub fn restore(&self) -> Result<LabelPathHistogram, SnapshotError> {
        if let Some(version) = self.version.filter(|&v| v > SNAPSHOT_VERSION) {
            return Err(SnapshotError::Corrupt(format!(
                "snapshot version {version} is newer than supported {SNAPSHOT_VERSION}"
            )));
        }
        let n = self.label_names.len();
        if self.label_frequencies.len() != n {
            return Err(SnapshotError::Corrupt(format!(
                "{n} label names but {} frequencies",
                self.label_frequencies.len()
            )));
        }
        if n == 0 || self.k == 0 || self.k > crate::path::MAX_K {
            return Err(SnapshotError::Corrupt(format!(
                "invalid dimensions: {n} labels, k = {}",
                self.k
            )));
        }
        let domain = PathDomain::new(n, self.k);
        let ordering = self.rebuild_ordering(domain)?;
        if ordering.domain_size() as usize
            != phe_histogram::PointEstimator::domain_size(&self.histogram)
        {
            return Err(SnapshotError::Corrupt(format!(
                "histogram covers {} values but the domain has {}",
                phe_histogram::PointEstimator::domain_size(&self.histogram),
                ordering.domain_size()
            )));
        }
        Ok(LabelPathHistogram::from_parts(
            ordering,
            self.histogram.clone(),
        ))
    }

    fn rebuild_ordering(
        &self,
        domain: PathDomain,
    ) -> Result<Box<dyn DomainOrdering>, SnapshotError> {
        let alph = || {
            let mut ids: Vec<phe_graph::LabelId> = (0..self.label_names.len() as u16)
                .map(phe_graph::LabelId)
                .collect();
            ids.sort_by(|a, b| self.label_names[a.index()].cmp(&self.label_names[b.index()]));
            LabelRanking::from_rank_order(ids)
        };
        let card = || LabelRanking::cardinality_from_frequencies(&self.label_frequencies);
        Ok(match self.ordering {
            OrderingKind::NumAlph => Box::new(NumericalOrdering::new(domain, alph(), "num-alph")),
            OrderingKind::NumCard => Box::new(NumericalOrdering::new(domain, card(), "num-card")),
            OrderingKind::LexAlph => {
                Box::new(LexicographicalOrdering::new(domain, alph(), "lex-alph"))
            }
            OrderingKind::LexCard => {
                Box::new(LexicographicalOrdering::new(domain, card(), "lex-card"))
            }
            OrderingKind::SumBased => Box::new(SumBasedOrdering::new(domain, card())),
            OrderingKind::SumBasedL2 => {
                let n = self.label_names.len();
                let pairs = self.pair_frequencies.as_ref().ok_or_else(|| {
                    SnapshotError::Corrupt("sum-based-L2 snapshot without pair frequencies".into())
                })?;
                if pairs.len() != n * n {
                    return Err(SnapshotError::Corrupt(format!(
                        "expected {} pair frequencies, found {}",
                        n * n,
                        pairs.len()
                    )));
                }
                Box::new(SumBasedL2Ordering::from_frequencies(
                    domain,
                    &self.label_frequencies,
                    pairs,
                ))
            }
            OrderingKind::Ideal => return Err(SnapshotError::IdealNotSupported),
        })
    }

    /// Approximate serialized size (bytes) — the artifact an optimizer
    /// ships; compare against `|Lk| · 8` for storing the raw table.
    pub fn retained_bytes(&self) -> usize {
        use phe_histogram::PointEstimator;
        let names: usize = self.label_names.iter().map(String::len).sum();
        names
            + self.label_frequencies.len() * 8
            + self.pair_frequencies.as_ref().map_or(0, |p| p.len() * 8)
            + self.histogram.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimator::{EstimatorConfig, PathSelectivityEstimator};
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use phe_graph::LabelId;

    fn graph() -> phe_graph::Graph {
        erdos_renyi(60, 600, 4, LabelDistribution::Zipf { exponent: 1.0 }, 77)
    }

    fn build(ordering: OrderingKind) -> PathSelectivityEstimator {
        PathSelectivityEstimator::build(
            &graph(),
            EstimatorConfig {
                k: 3,
                beta: 16,
                ordering,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap()
    }

    #[test]
    fn snapshot_restores_identical_estimates() {
        for ordering in OrderingKind::ALL {
            let est = build(ordering);
            let snapshot = est.snapshot().unwrap();
            let restored = snapshot.restore().unwrap();
            for l1 in 0..4u16 {
                for l2 in 0..4u16 {
                    let path = [LabelId(l1), LabelId(l2)];
                    assert_eq!(
                        est.estimate(&path),
                        restored.estimate_labels(&path),
                        "{}: {l1}/{l2}",
                        ordering.name()
                    );
                }
            }
        }
    }

    #[test]
    fn ideal_refuses_to_snapshot() {
        let est = build(OrderingKind::Ideal);
        assert_eq!(
            est.snapshot().unwrap_err(),
            SnapshotError::IdealNotSupported
        );
    }

    #[test]
    fn snapshot_is_small() {
        let est = build(OrderingKind::SumBased);
        let snapshot = est.snapshot().unwrap();
        // Retained state ≪ the raw table (domain 84 paths * 8 bytes would
        // already be 672 bytes; β = 16 buckets dominate here, but the point
        // is it does not scale with |Lk|).
        assert!(snapshot.retained_bytes() < 16 * 64 + 4 * 16 + 64);
        assert_eq!(snapshot.label_names.len(), 4);
    }

    #[test]
    fn v1_snapshots_without_version_field_restore() {
        // A v1 file is today's serialization minus the v2 fields; the
        // compat serde treats missing fields as null ⇒ None.
        let est = build(OrderingKind::SumBased);
        let snapshot = est.snapshot().unwrap();
        let mut v1 = snapshot.clone();
        v1.version = None;
        v1.domain_paths = None;
        v1.nonzero_paths = None;
        v1.base_build_id = None;
        v1.applied_deltas = None;
        let json = serde_json::to_string(&v1).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.version, None);
        let restored = parsed.restore().unwrap();
        for l in 0..4u16 {
            let path = [LabelId(l)];
            assert_eq!(est.estimate(&path), restored.estimate_labels(&path));
        }
        // And a literal v1 wire file (no version key at all) parses too.
        let stripped: String = {
            let full = serde_json::to_string(&snapshot).unwrap();
            // The newer optional fields serialize as null when absent;
            // drop them from the object to mimic a pre-v2 writer.
            full.replacen(&format!("\"version\":{SNAPSHOT_VERSION},"), "", 1)
                .replacen(&format!("\"domain_paths\":{},", est.domain_size()), "", 1)
                .replacen(
                    &format!("\"nonzero_paths\":{},", est.footprint().nonzero_paths),
                    "",
                    1,
                )
                .replacen(&format!("\"base_build_id\":{},", est.build_id()), "", 1)
                .replacen("\"applied_deltas\":0,", "", 1)
        };
        let parsed: EstimatorSnapshot = serde_json::from_str(&stripped).unwrap();
        assert_eq!(parsed.version, None);
        parsed.restore().unwrap();
    }

    #[test]
    fn v2_snapshots_without_lineage_fields_restore() {
        // A v2 file is today's serialization with version 2 and no delta
        // lineage — written by the sparse pipeline before incremental
        // maintenance existed.
        let est = build(OrderingKind::SumBased);
        let mut v2 = est.snapshot().unwrap();
        v2.version = Some(2);
        v2.base_build_id = None;
        v2.applied_deltas = None;
        let json = serde_json::to_string(&v2).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.version, Some(2));
        assert_eq!(parsed.base_build_id, None);
        let restored = parsed.restore().unwrap();
        for l in 0..4u16 {
            let path = [LabelId(l)];
            assert_eq!(est.estimate(&path), restored.estimate_labels(&path));
        }
    }

    #[test]
    fn v3_snapshots_carry_delta_lineage() {
        let est = build(OrderingKind::SumBased);
        let snapshot = est.snapshot().unwrap();
        assert_eq!(snapshot.version, Some(3));
        assert_eq!(snapshot.base_build_id, Some(est.build_id()));
        assert_eq!(snapshot.applied_deltas, Some(0));
        // Lineage round-trips through the wire format.
        let json = serde_json::to_string(&snapshot).unwrap();
        let parsed: EstimatorSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(parsed.base_build_id, snapshot.base_build_id);
        assert_eq!(parsed.applied_deltas, Some(0));
        parsed.restore().unwrap();
    }

    #[test]
    fn future_snapshot_versions_are_refused() {
        let est = build(OrderingKind::SumBased);
        let mut snapshot = est.snapshot().unwrap();
        assert_eq!(snapshot.version, Some(SNAPSHOT_VERSION));
        snapshot.version = Some(SNAPSHOT_VERSION + 1);
        let err = snapshot
            .restore()
            .err()
            .expect("must refuse newer versions");
        match err {
            SnapshotError::Corrupt(msg) => assert!(msg.contains("newer"), "{msg}"),
            other => panic!("expected version refusal, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let est = build(OrderingKind::SumBasedL2);
        let mut snapshot = est.snapshot().unwrap();
        snapshot.pair_frequencies = None;
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Corrupt(_))));

        let mut snapshot = est.snapshot().unwrap();
        snapshot.label_frequencies.pop();
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Corrupt(_))));

        let mut snapshot = est.snapshot().unwrap();
        snapshot.k = 0;
        assert!(matches!(snapshot.restore(), Err(SnapshotError::Corrupt(_))));
    }
}
