//! Counting and enumeration machinery behind sum-based ordering.
//!
//! Implements the paper's Formulas 3–5 and Algorithm 1:
//!
//! * [`dist`] — how many rank sequences of length `m` over ranks
//!   `[1, n]` sum to `sr` (Formula 3, inclusion–exclusion; also a DP
//!   variant used for precomputed tables and as a cross-check);
//! * [`integer_partitions`] — the multisets of ranks with a given sum, in
//!   the exact enumeration order induced by Formula 4 (most-max-parts
//!   last; the order that makes the paper's Table 2 come out);
//! * [`nop`] — the number of distinct permutations of a rank multiset
//!   (Formula 5);
//! * [`multiset_permutation_unrank`] / [`multiset_permutation_rank`] —
//!   Algorithm 1 and its inverse: the bijection between `[0, nop(C))` and
//!   the distinct permutations of `C` in ascending lexicographic order.
//!
//! All counts fit `u64` for the sizes this workspace targets
//! (`n ≤ 4096`, `m ≤ 8`); intermediate inclusion–exclusion terms use
//! `i128` to absorb the alternating sums.

/// Binomial coefficient `C(n, k)` in `i128` (0 when `k > n`).
pub fn binomial(n: u64, k: u64) -> i128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: i128 = 1;
    for i in 0..k {
        num = num * (n - i) as i128 / (i + 1) as i128;
    }
    num
}

/// Formula 3: the number of length-`m` rank sequences over `[1, n]`
/// summing to `sr`, by inclusion–exclusion:
///
/// `dist(sr, m, n) = Σ_j (−1)^j · C(m, j) · C(sr − j·n − 1, m − 1)`.
pub fn dist(sr: u64, m: usize, n: usize) -> u64 {
    if m == 0 {
        return u64::from(sr == 0);
    }
    if sr < m as u64 || sr > (m * n) as u64 {
        return 0;
    }
    let mut total: i128 = 0;
    for j in 0..=m as u64 {
        let inner = sr as i128 - (j * n as u64) as i128 - 1;
        if inner < (m as i128) - 1 {
            // C(inner, m-1) = 0 once the argument drops below m-1;
            // all later terms vanish too.
            break;
        }
        let term = binomial(m as u64, j) * binomial(inner as u64, (m - 1) as u64);
        if j.is_multiple_of(2) {
            total += term;
        } else {
            total -= term;
        }
    }
    debug_assert!(total >= 0, "dist({sr},{m},{n}) went negative: {total}");
    total as u64
}

/// The same count by dynamic programming — used to precompute whole
/// tables in `O(k²n²)` and as an independent cross-check of Formula 3.
pub fn dist_table(k: usize, n: usize) -> Vec<Vec<u64>> {
    // table[m][sr], m in 0..=k, sr in 0..=k*n.
    let max_sr = k * n;
    let mut table = vec![vec![0u64; max_sr + 1]; k + 1];
    table[0][0] = 1;
    for m in 1..=k {
        for sr in m..=(m * n).min(max_sr) {
            let mut acc = 0u64;
            for r in 1..=n.min(sr) {
                acc += table[m - 1][sr - r];
            }
            table[m][sr] = acc;
        }
    }
    table
}

/// A rank multiset (integer partition with bounded parts), stored sorted
/// ascending.
pub type Partition = Vec<u32>;

/// Formula 4: all partitions of `v` into exactly `m` parts, each in
/// `[1, b]`, in the paper's enumeration order: recurse on the number `i`
/// of parts equal to the current maximum `b`, `i = 0` first.
///
/// For the paper's Table 2 this puts `{2,2}` before `{1,3}` within the
/// `(m=2, sr=4)` group, matching the published ordering.
pub fn integer_partitions(v: u64, m: usize, b: u64) -> Vec<Partition> {
    let mut out = Vec::new();
    let mut scratch = Vec::with_capacity(m);
    partitions_rec(v, m, b, &mut scratch, &mut out);
    out
}

fn partitions_rec(v: u64, m: usize, b: u64, suffix: &mut Vec<u32>, out: &mut Vec<Partition>) {
    if m == 0 {
        if v == 0 {
            let mut p: Partition = suffix.clone();
            p.reverse(); // suffix holds the large parts; emit ascending.
            out.push(p);
        }
        return;
    }
    if b == 0 || v < m as u64 || v > m as u64 * b {
        return;
    }
    let max_i = (v / b).min(m as u64);
    for i in 0..=max_i {
        for _ in 0..i {
            suffix.push(b as u32);
        }
        partitions_rec(v - i * b, m - i as usize, b - 1, suffix, out);
        for _ in 0..i {
            suffix.pop();
        }
    }
}

/// Formula 5: the number of distinct permutations of the multiset `C`:
/// `|C|! / Π dᵢ!` where `dᵢ` counts occurrences of value `i`.
pub fn nop(partition: &[u32]) -> u64 {
    let m = partition.len() as u64;
    let mut result = factorial(m);
    let mut i = 0usize;
    while i < partition.len() {
        let mut j = i;
        while j < partition.len() && partition[j] == partition[i] {
            j += 1;
        }
        result /= factorial((j - i) as u64);
        i = j;
    }
    result
}

fn factorial(n: u64) -> u64 {
    (1..=n).product::<u64>().max(1)
}

/// Distinct values of a small multiset with their counts, on the stack.
/// Paths have at most [`crate::path::MAX_K`] = 8 elements.
struct CountedMultiset {
    values: [u32; 8],
    counts: [u8; 8],
    distinct: usize,
    total: usize,
}

impl CountedMultiset {
    fn from_sorted(sorted: &[u32]) -> CountedMultiset {
        debug_assert!(sorted.len() <= 8, "multiset longer than MAX_K");
        debug_assert!(
            sorted.windows(2).all(|w| w[0] <= w[1]),
            "input must be sorted"
        );
        let mut set = CountedMultiset {
            values: [0; 8],
            counts: [0; 8],
            distinct: 0,
            total: sorted.len(),
        };
        for &v in sorted {
            if set.distinct > 0 && set.values[set.distinct - 1] == v {
                set.counts[set.distinct - 1] += 1;
            } else {
                set.values[set.distinct] = v;
                set.counts[set.distinct] = 1;
                set.distinct += 1;
            }
        }
        set
    }

    /// `nop(self \ one copy of values[i])`: distinct permutations of the
    /// multiset with one copy of the `i`-th distinct value removed.
    #[inline]
    fn nop_without(&self, i: usize) -> u64 {
        let mut result = FACTORIALS[self.total - 1];
        for j in 0..self.distinct {
            let c = if j == i {
                self.counts[j] - 1
            } else {
                self.counts[j]
            };
            result /= FACTORIALS[c as usize];
        }
        result
    }

    #[inline]
    fn remove(&mut self, i: usize) {
        self.counts[i] -= 1;
        self.total -= 1;
        if self.counts[i] == 0 {
            for j in i..self.distinct - 1 {
                self.values[j] = self.values[j + 1];
                self.counts[j] = self.counts[j + 1];
            }
            self.distinct -= 1;
        }
    }

    fn position_of(&self, v: u32) -> usize {
        (0..self.distinct)
            .find(|&i| self.values[i] == v)
            .expect("value not in multiset")
    }
}

const FACTORIALS: [u64; 9] = [1, 1, 2, 6, 24, 120, 720, 5040, 40320];

/// Algorithm 1: the `index`-th distinct permutation of the sorted multiset
/// `sorted` in ascending lexicographic order, or `None` if out of range.
///
/// Implemented iteratively and allocation-free (the paper presents it
/// recursively): at each output position, walk the distinct remaining
/// values in ascending order and skip whole blocks of
/// `nop(remaining \ value)` permutations.
pub fn multiset_permutation_unrank(mut index: u64, sorted: &[u32]) -> Option<Vec<u32>> {
    if index >= nop(sorted) {
        return None;
    }
    let mut set = CountedMultiset::from_sorted(sorted);
    let mut out = Vec::with_capacity(sorted.len());
    while set.total > 0 {
        let mut i = 0usize;
        loop {
            let block = set.nop_without(i);
            if index >= block {
                index -= block;
                i += 1;
                debug_assert!(i < set.distinct, "index exhausted candidates");
            } else {
                out.push(set.values[i]);
                set.remove(i);
                break;
            }
        }
    }
    Some(out)
}

/// Inverse of Algorithm 1: the ascending-lexicographic rank of `sequence`
/// among the distinct permutations of its own multiset. Allocation-free;
/// this is the estimation-time hot path of sum-based ordering.
pub fn multiset_permutation_rank(sequence: &[u32]) -> u64 {
    let mut sorted = [0u32; 8];
    sorted[..sequence.len()].copy_from_slice(sequence);
    let sorted = &mut sorted[..sequence.len()];
    sorted.sort_unstable();
    let mut set = CountedMultiset::from_sorted(sorted);
    let mut rank = 0u64;
    for &v in sequence {
        let pos = set.position_of(v);
        for i in 0..pos {
            rank += set.nop_without(i);
        }
        set.remove(pos);
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomial_basics() {
        assert_eq!(binomial(5, 2), 10);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(5, 5), 1);
        assert_eq!(binomial(3, 4), 0);
        assert_eq!(binomial(52, 5), 2_598_960);
    }

    #[test]
    fn dist_matches_brute_force() {
        for n in 1..=5usize {
            for m in 1..=4usize {
                for sr in 0..=(m * n + 2) as u64 {
                    let brute = brute_force_dist(sr, m, n);
                    assert_eq!(dist(sr, m, n), brute, "dist({sr},{m},{n})");
                }
            }
        }
    }

    fn brute_force_dist(sr: u64, m: usize, n: usize) -> u64 {
        fn rec(sr: i64, m: usize, n: usize) -> u64 {
            if m == 0 {
                return u64::from(sr == 0);
            }
            (1..=n as i64).map(|r| rec(sr - r, m - 1, n)).sum()
        }
        rec(sr as i64, m, n)
    }

    #[test]
    fn dist_table_matches_formula() {
        let table = dist_table(4, 6);
        for (m, row) in table.iter().enumerate().skip(1) {
            for sr in 0..=24u64 {
                assert_eq!(row[sr as usize], dist(sr, m, 6), "({m},{sr})");
            }
        }
    }

    #[test]
    fn dist_paper_example() {
        // m=2, n=3: sums 2..6 count 1,2,3,2,1 — all 9 pairs.
        let counts: Vec<u64> = (2..=6).map(|sr| dist(sr, 2, 3)).collect();
        assert_eq!(counts, vec![1, 2, 3, 2, 1]);
        assert_eq!(counts.iter().sum::<u64>(), 9);
    }

    #[test]
    fn partitions_paper_order() {
        // Table 2's (m=2, sr=4) group over n=3: {2,2} before {1,3}.
        let p = integer_partitions(4, 2, 3);
        assert_eq!(p, vec![vec![2, 2], vec![1, 3]]);
    }

    #[test]
    fn partitions_cover_dist() {
        // Σ nop over partitions of (sr, m) must equal dist(sr, m, n).
        for n in 1..=5u64 {
            for m in 1..=4usize {
                for sr in m as u64..=(m as u64 * n) {
                    let parts = integer_partitions(sr, m, n);
                    let total: u64 = parts.iter().map(|p| nop(p)).sum();
                    assert_eq!(total, dist(sr, m, n as usize), "({sr},{m},{n})");
                    // Every partition is sorted, within bounds, sums right.
                    for p in &parts {
                        assert!(p.windows(2).all(|w| w[0] <= w[1]), "{p:?} not sorted");
                        assert!(p.iter().all(|&x| x >= 1 && x as u64 <= n));
                        assert_eq!(p.iter().map(|&x| x as u64).sum::<u64>(), sr);
                    }
                    // No duplicates in the enumeration.
                    let mut dedup = parts.clone();
                    dedup.sort();
                    dedup.dedup();
                    assert_eq!(dedup.len(), parts.len());
                }
            }
        }
    }

    #[test]
    fn nop_formula5() {
        assert_eq!(nop(&[]), 1);
        assert_eq!(nop(&[3]), 1);
        assert_eq!(nop(&[1, 2]), 2);
        assert_eq!(nop(&[2, 2]), 1);
        assert_eq!(nop(&[1, 1, 2]), 3);
        assert_eq!(nop(&[1, 2, 3, 4]), 24);
        assert_eq!(nop(&[1, 1, 2, 2]), 6);
    }

    #[test]
    fn unrank_enumerates_lexicographically() {
        let c = [1u32, 1, 2, 3];
        let total = nop(&c);
        assert_eq!(total, 12);
        let mut perms: Vec<Vec<u32>> = Vec::new();
        for i in 0..total {
            perms.push(multiset_permutation_unrank(i, &c).unwrap());
        }
        // Strictly increasing lexicographic order.
        for w in perms.windows(2) {
            assert!(w[0] < w[1], "{:?} !< {:?}", w[0], w[1]);
        }
        // First and last are the sorted and reverse-sorted sequences.
        assert_eq!(perms[0], vec![1, 1, 2, 3]);
        assert_eq!(perms[11], vec![3, 2, 1, 1]);
        // Out of range.
        assert!(multiset_permutation_unrank(12, &c).is_none());
    }

    #[test]
    fn rank_inverts_unrank() {
        let c = [1u32, 2, 2, 4, 4];
        for i in 0..nop(&c) {
            let p = multiset_permutation_unrank(i, &c).unwrap();
            assert_eq!(multiset_permutation_rank(&p), i, "at {i} ({p:?})");
        }
    }

    #[test]
    fn rank_of_distinct_values_is_factorial_rank() {
        // For all-distinct values this is plain permutation ranking.
        assert_eq!(multiset_permutation_rank(&[1, 2, 3]), 0);
        assert_eq!(multiset_permutation_rank(&[3, 2, 1]), 5);
        assert_eq!(multiset_permutation_rank(&[2, 1, 3]), 2);
    }

    #[test]
    fn partitions_edge_cases() {
        assert_eq!(integer_partitions(0, 0, 5), vec![Vec::<u32>::new()]);
        assert!(integer_partitions(1, 0, 5).is_empty());
        assert!(integer_partitions(7, 2, 3).is_empty()); // above m*b
        assert!(integer_partitions(1, 2, 3).is_empty()); // below m
        assert_eq!(integer_partitions(6, 2, 3), vec![vec![3, 3]]);
    }
}
