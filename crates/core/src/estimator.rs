//! The one-stop path selectivity estimator.

use std::time::{Duration, Instant};

use phe_graph::{FollowMatrix, Graph, GraphDelta, LabelId};
use phe_histogram::{error_rate, AccuracyReport, HistogramError};
use phe_pathenum::{
    compute_delta, CatalogError, CompressedRuns, SelectivityCatalog, SparseCatalog,
};

pub use crate::label_histogram::HistogramKind;

use crate::eval::{evaluate_configuration, ordered_frequencies, sparse_ordered_frequencies};
use crate::label_histogram::LabelPathHistogram;
use crate::ordering::OrderingKind;
use crate::path::{LabelPath, MAX_K};

/// Configuration of a [`PathSelectivityEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorConfig {
    /// Maximum path length `k` (1..=[`MAX_K`]).
    pub k: usize,
    /// Histogram bucket budget β.
    pub beta: usize,
    /// Domain ordering method.
    pub ordering: OrderingKind,
    /// Histogram family.
    pub histogram: HistogramKind,
    /// Worker threads for catalog computation (0 ⇒ all cores, 1 ⇒
    /// sequential).
    pub threads: usize,
    /// Keep the full **dense** ground-truth catalog on the built
    /// estimator. Off (the default), [`PathSelectivityEstimator::build`]
    /// streams sparse counts straight into the histogram and retains only
    /// buckets + ordering state — the serving footprint. On, the catalog
    /// is materialized for [`PathSelectivityEstimator::exact`] /
    /// [`PathSelectivityEstimator::accuracy_report`], which requires a
    /// dense-feasible domain.
    pub retain_catalog: bool,
    /// Keep the **sparse** catalog (sorted `(canonical_index, count)`
    /// runs, `O(realized paths)` bytes) on the built estimator — the
    /// state [`PathSelectivityEstimator::apply_delta`] merges graph
    /// changes into. Off (the default) the estimator cannot absorb deltas
    /// and a graph change means a full rebuild.
    pub retain_sparse: bool,
}

impl Default for EstimatorConfig {
    /// The paper's headline configuration: sum-based ordering over a
    /// V-optimal (greedy) histogram, `k = 3`, β = 64, sparse build with no
    /// retained catalog.
    fn default() -> Self {
        EstimatorConfig {
            k: 3,
            beta: 64,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 0,
            retain_catalog: false,
            retain_sparse: false,
        }
    }
}

/// Memory accounting of the catalog stage, captured at build time (cheap
/// to keep even when the catalog itself is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogFootprint {
    /// Domain size `|Lk|`, zeros included.
    pub domain_size: u64,
    /// Realized (non-zero) paths.
    pub nonzero_paths: u64,
    /// Resident bytes of the sparse representation — **block-compressed**
    /// delta-varint runs plus their skip index, not the flat pair vector.
    pub sparse_bytes: u64,
    /// Bytes the flat `Vec<(u64, u64)>` pair representation would need
    /// (16 B/entry) — the baseline `sparse_bytes` is compressed against.
    pub sparse_plain_bytes: u64,
    /// Bytes the dense count vector needs (or would need), in `u128` so
    /// dense-infeasible configurations report instead of wrapping.
    pub dense_bytes: u128,
}

impl CatalogFootprint {
    fn from_sparse(catalog: &SparseCatalog) -> CatalogFootprint {
        CatalogFootprint {
            domain_size: catalog.len() as u64,
            nonzero_paths: catalog.nonzero_count() as u64,
            sparse_bytes: catalog.size_bytes() as u64,
            sparse_plain_bytes: catalog.plain_bytes() as u64,
            dense_bytes: catalog.dense_bytes(),
        }
    }

    fn from_dense(catalog: &SelectivityCatalog) -> CatalogFootprint {
        let nonzero = (catalog.len() - catalog.zero_count()) as u64;
        CatalogFootprint {
            domain_size: catalog.len() as u64,
            nonzero_paths: nonzero,
            sparse_bytes: nonzero * 16,
            sparse_plain_bytes: nonzero * 16,
            dense_bytes: catalog.len() as u128 * 8,
        }
    }

    /// Compressed bytes per realized path — the observable the
    /// compression work is judged by.
    pub fn bytes_per_entry(&self) -> f64 {
        self.sparse_bytes as f64 / (self.nonzero_paths as f64).max(1.0)
    }

    /// `sparse_plain_bytes / sparse_bytes` — how much the block
    /// compression buys over the flat pair vector.
    pub fn compression_ratio(&self) -> f64 {
        self.sparse_plain_bytes as f64 / (self.sparse_bytes as f64).max(1.0)
    }
}

/// Wall-clock breakdown of estimator construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Computing the exact selectivity catalog (the dominant cost).
    pub catalog_time: Duration,
    /// Permuting frequencies into the ordering's index space (exercises
    /// the unranking function |Lk| times).
    pub ordering_time: Duration,
    /// Histogram construction over the ordered sequence.
    pub histogram_time: Duration,
}

/// Post-delta accuracy drift: after a delta merge, the paths the change
/// touched are sampled and the refreshed histogram's estimates are
/// compared against the exact counts the merged sparse catalog holds
/// for them. This is the sensor the ROADMAP's drift-triggered rebuild
/// direction needs — the touched paths are exactly where an ordering or
/// bucketing grown stale by churn shows up first.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftReport {
    /// Paths the delta touched (signed-difference entries).
    pub touched: usize,
    /// Touched paths actually sampled (deterministic stride, ≤ 256).
    pub sampled: usize,
    /// Mean `|err(ℓ)|` over the sample, with the paper's error rate
    /// ([`phe_histogram::metrics::error_rate`]) — bounded in `[0, 1]`.
    pub mean_abs_error_rate: f64,
    /// Worst multiplicative error over the sample (≥ 1).
    pub max_q_error: f64,
}

/// Sample cap per drift report: enough touched paths for a stable mean
/// without making delta application scale with the churn size.
const DRIFT_SAMPLE_CAP: usize = 256;

impl DriftReport {
    /// Measures estimate-vs-exact drift over a deterministic stride
    /// sample of the delta's touched canonical indexes.
    fn sample(estimator: &PathSelectivityEstimator, touched: &[(u64, i64)]) -> DriftReport {
        let sparse = estimator
            .sparse
            .as_ref()
            .expect("drift is sampled on delta results, which retain the sparse catalog");
        let stride = touched.len().div_ceil(DRIFT_SAMPLE_CAP).max(1);
        let mut labels = Vec::with_capacity(estimator.config.k);
        let mut sampled = 0usize;
        let mut abs_sum = 0.0f64;
        let mut max_q = 1.0f64;
        for &(index, _) in touched.iter().step_by(stride) {
            sparse.encoding().decode_into(index as usize, &mut labels);
            let estimate = estimator.histogram.estimate_labels(&labels);
            let exact = sparse.selectivity_at(index);
            abs_sum += phe_histogram::metrics::error_rate(estimate, exact).abs();
            max_q = max_q.max(phe_histogram::metrics::q_error(estimate, exact));
            sampled += 1;
        }
        DriftReport {
            touched: touched.len(),
            sampled,
            mean_abs_error_rate: abs_sum / sampled.max(1) as f64,
            max_q_error: max_q,
        }
    }
}

/// Why a delta could not be applied to an estimator.
#[derive(Debug)]
pub enum DeltaError {
    /// The estimator was built without [`EstimatorConfig::retain_sparse`],
    /// so there is no catalog to merge the change into.
    SparseNotRetained,
    /// The supplied base graph is not the graph this estimator was built
    /// from (label alphabet or frequencies disagree).
    GraphMismatch(String),
    /// The delta violated its contract against the base graph.
    Graph(phe_graph::GraphError),
    /// Delta counting or merging failed.
    Catalog(CatalogError),
    /// Rebuilding the histogram over the merged catalog failed.
    Histogram(HistogramError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::SparseNotRetained => write!(
                f,
                "estimator was built without retain_sparse; no catalog to merge the \
                 delta into (rebuild with EstimatorConfig::retain_sparse)"
            ),
            DeltaError::GraphMismatch(msg) => {
                write!(f, "base graph does not match the estimator: {msg}")
            }
            DeltaError::Graph(e) => write!(f, "applying delta to the graph: {e}"),
            DeltaError::Catalog(e) => write!(f, "incremental counting: {e}"),
            DeltaError::Histogram(e) => write!(f, "rebuilding statistics: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Delta lineage of a build: which full build it descends from and how
/// many incremental deltas have been folded in since. Persisted by
/// snapshot format v3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Provenance {
    /// Stable id of the originating full build (a hash of its inputs).
    build_id: u64,
    /// Number of [`PathSelectivityEstimator::apply_delta`] steps since.
    applied_deltas: u64,
}

/// A built estimator: histogram + ordering, with the construction-time
/// catalog optionally retained for ground-truth queries and accuracy
/// reports ([`EstimatorConfig::retain_catalog`]) and the sparse catalog
/// optionally retained for incremental maintenance
/// ([`EstimatorConfig::retain_sparse`]).
pub struct PathSelectivityEstimator {
    config: EstimatorConfig,
    catalog: Option<SelectivityCatalog>,
    /// The sparse counts, kept only under `retain_sparse` — the state
    /// `apply_delta` merges graph changes into.
    sparse: Option<SparseCatalog>,
    /// The ordering-permuted `(ordered_index, count)` runs the histogram
    /// was built from — block-compressed like the catalog — kept only
    /// under `retain_sparse`. When a delta leaves the ordering's
    /// permutation unchanged (the common case: small churn rarely
    /// reorders label frequencies), `apply_delta` remaps **only the delta
    /// entries** and block-merges them into these runs instead of
    /// re-permuting all `nnz` entries.
    ordered_runs: Option<CompressedRuns>,
    footprint: CatalogFootprint,
    histogram: LabelPathHistogram,
    stats: BuildStats,
    provenance: Provenance,
    /// Hash of the build graph's full edge set — how `apply_delta`
    /// verifies the supplied base graph really is the one these counts
    /// describe (label frequencies alone cannot distinguish rewired
    /// edges).
    graph_fingerprint: u64,
    /// Snapshot inputs captured at build time (label names/frequencies,
    /// pair frequencies for the L2 ordering).
    label_names: Vec<String>,
    label_frequencies: Vec<u64>,
    pair_frequencies: Option<Vec<u64>>,
    /// The build graph's label-follow matrix (`|L|²` bits) — captured so
    /// snapshots can ship it to serving tiers, which use it to prune
    /// impossible expansion branches without graph access.
    follow: FollowMatrix,
    /// Estimate-vs-exact drift over the last delta's touched paths;
    /// `None` for fresh builds. Runtime-only (not persisted): a restored
    /// snapshot starts with a clean sensor.
    drift: Option<DriftReport>,
}

impl PathSelectivityEstimator {
    /// Builds the estimator through the **sparse streaming pipeline**:
    /// sharded sparse catalog → combinatorial index remap → sparse
    /// histogram build. The dense path domain is never materialized unless
    /// [`EstimatorConfig::retain_catalog`] asks for the ground-truth
    /// catalog.
    ///
    /// # Errors
    /// Propagates histogram construction failures (e.g. asking for the
    /// exact V-optimal DP on a paper-scale domain), and
    /// [`HistogramError::DomainTooLarge`] when the domain overflows the
    /// canonical index space (2⁴⁸ paths) or when `retain_catalog` (or a
    /// builder with no sparse path) needs a dense domain the machine
    /// cannot hold.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds [`MAX_K`], or the graph has no
    /// labels.
    pub fn build(
        graph: &Graph,
        config: EstimatorConfig,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        assert!(
            config.k >= 1 && config.k <= MAX_K,
            "k = {} out of range 1..={MAX_K}",
            config.k
        );
        assert!(graph.label_count() > 0, "graph has no edge labels");

        let _build = phe_obs::span::stage("build");
        let t0 = Instant::now();
        let sparse = SparseCatalog::compute_parallel(graph, config.k, config.threads)
            .map_err(catalog_to_histogram_error)?;
        let catalog_time = t0.elapsed();

        Self::from_sparse_catalog(graph, sparse, config, catalog_time)
    }

    /// Builds from a precomputed **sparse** catalog.
    ///
    /// # Errors
    /// As for [`PathSelectivityEstimator::build`].
    pub fn from_sparse_catalog(
        graph: &Graph,
        sparse: SparseCatalog,
        config: EstimatorConfig,
        catalog_time: Duration,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        let provenance = Provenance {
            build_id: build_id(graph, &sparse, config),
            applied_deltas: 0,
        };
        Self::from_sparse_with_provenance(graph, sparse, config, catalog_time, provenance)
    }

    /// The shared sparse-pipeline tail: ordering remap → histogram build →
    /// retained-state capture, stamping the given delta lineage.
    fn from_sparse_with_provenance(
        graph: &Graph,
        sparse: SparseCatalog,
        config: EstimatorConfig,
        catalog_time: Duration,
        provenance: Provenance,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        let t1 = Instant::now();
        let order_span = phe_obs::span::stage("build.order");
        let ordering = config.ordering.build_sparse(graph, &sparse, config.k);
        let runs = sparse_ordered_frequencies(&sparse, ordering.as_ref());
        drop(order_span);
        let ordering_time = t1.elapsed();
        Self::assemble(
            graph,
            sparse,
            config,
            provenance,
            ordering,
            runs,
            catalog_time,
            ordering_time,
        )
    }

    /// Builds the histogram over precomputed ordered runs and captures
    /// every piece of retained state. The one place an estimator is
    /// actually constructed, shared by full builds and both delta paths.
    #[allow(clippy::too_many_arguments)]
    fn assemble(
        graph: &Graph,
        sparse: SparseCatalog,
        config: EstimatorConfig,
        provenance: Provenance,
        ordering: Box<dyn crate::ordering::DomainOrdering>,
        runs: CompressedRuns,
        catalog_time: Duration,
        ordering_time: Duration,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        // Retaining ground truth needs a dense-feasible domain: fail the
        // precondition before the histogram build.
        if config.retain_catalog {
            sparse
                .check_dense_feasible()
                .map_err(catalog_to_histogram_error)?;
        }
        let footprint = CatalogFootprint::from_sparse(&sparse);

        let t2 = Instant::now();
        let ordered_runs = config.retain_sparse.then(|| runs.clone());
        let histogram_span = phe_obs::span::stage("build.histogram");
        let histogram = LabelPathHistogram::from_sparse_frequencies(
            ordering,
            &runs,
            config.histogram,
            config.beta,
        )?;
        drop(histogram_span);
        let histogram_time = t2.elapsed();

        let pair_frequencies = pair_frequencies_for(config, graph.label_count(), |l1, l2| {
            sparse.selectivity(&[l1, l2])
        });
        let catalog = if config.retain_catalog {
            Some(sparse.to_dense().map_err(catalog_to_histogram_error)?)
        } else {
            None
        };
        let sparse = config.retain_sparse.then_some(sparse);

        let (label_names, label_frequencies) = snapshot_state(graph);
        Ok(PathSelectivityEstimator {
            config,
            catalog,
            sparse,
            ordered_runs,
            footprint,
            histogram,
            stats: BuildStats {
                catalog_time,
                ordering_time,
                histogram_time,
            },
            provenance,
            graph_fingerprint: graph_fingerprint(graph),
            label_names,
            label_frequencies,
            pair_frequencies,
            follow: FollowMatrix::from_graph(graph),
            drift: None,
        })
    }

    /// Absorbs a graph change **incrementally**: applies `delta` to
    /// `old_graph`, counts the signed selectivity difference over only the
    /// touched paths, merges it into the retained sparse catalog, and
    /// re-derives the ordering and histogram from the merged counts. The
    /// result is bit-identical to a full rebuild on the changed graph
    /// (property-tested in `tests/sparse_equivalence.rs`) at a cost
    /// proportional to the change. Returns the refreshed estimator and the
    /// changed graph (the base for the *next* delta).
    ///
    /// Provenance: the returned estimator keeps this build's id and bumps
    /// its applied-delta count — the v3 snapshot lineage.
    ///
    /// # Errors
    /// [`DeltaError::SparseNotRetained`] unless this estimator was built
    /// with [`EstimatorConfig::retain_sparse`];
    /// [`DeltaError::GraphMismatch`] when `old_graph` is not the graph the
    /// estimator was built from; plus any delta-contract, counting, or
    /// histogram failure.
    pub fn apply_delta(
        &self,
        old_graph: &Graph,
        delta: &GraphDelta,
    ) -> Result<(PathSelectivityEstimator, Graph), DeltaError> {
        let sparse = self.sparse.as_ref().ok_or(DeltaError::SparseNotRetained)?;
        let (names, frequencies) = snapshot_state(old_graph);
        if names != self.label_names || frequencies != self.label_frequencies {
            return Err(DeltaError::GraphMismatch(format!(
                "expected {} labels with the build-time frequencies, got {} labels",
                self.label_names.len(),
                names.len()
            )));
        }
        // Frequencies can collide (same edge counts, rewired endpoints);
        // the edge-set hash cannot. One O(|E|) pass guards against
        // silently merging a delta computed over the wrong base.
        if graph_fingerprint(old_graph) != self.graph_fingerprint {
            return Err(DeltaError::GraphMismatch(
                "edge-set fingerprint differs from the build graph".into(),
            ));
        }
        let _delta = phe_obs::span::stage("delta");
        let t0 = Instant::now();
        let apply_span = phe_obs::span::stage("delta.apply");
        let new_graph = old_graph.apply_delta(delta).map_err(DeltaError::Graph)?;
        drop(apply_span);
        let count_span = phe_obs::span::stage("delta.count");
        let run = compute_delta(old_graph, &new_graph, delta, self.config.k)
            .map_err(DeltaError::Catalog)?;
        drop(count_span);
        let merge_span = phe_obs::span::stage("delta.merge");
        let merged = sparse.merge_delta(&run).map_err(DeltaError::Catalog)?;
        drop(merge_span);
        let catalog_time = t0.elapsed();

        let rederive_span = phe_obs::span::stage("delta.rederive");
        let t1 = Instant::now();
        let ordering = self
            .config
            .ordering
            .build_sparse(&new_graph, &merged, self.config.k);
        // When the delta leaves the permutation unchanged (equal reuse
        // keys — label frequencies rarely reorder under small churn),
        // remap only the |delta| entries and fold them into the previous
        // ordered runs. Bit-identical to the full remap: the permutation
        // is the same bijection, so permuting the merged catalog equals
        // merging the permuted delta.
        let reusable = match (
            self.ordered_runs.as_ref(),
            self.histogram.ordering().reuse_key(),
            ordering.reuse_key(),
        ) {
            (Some(runs), Some(old_key), Some(new_key)) if old_key == new_key => Some(runs),
            _ => None,
        };
        let runs = match reusable {
            Some(old_runs) => {
                let mut ordered_delta: Vec<(u64, i64)> = run
                    .entries()
                    .iter()
                    .map(|&(index, diff)| (ordering.ordered_index(index), diff))
                    .collect();
                ordered_delta.sort_unstable_by_key(|&(index, _)| index);
                // The ordered-space twin of `SparseCatalog::merge_delta`:
                // blocks the delta misses transfer raw. Underflow is
                // impossible here — the canonical-space merge already
                // validated every count, and a permutation maps entries
                // one-to-one.
                old_runs
                    .merge_signed(&ordered_delta)
                    .expect("validated by the canonical merge")
            }
            None => sparse_ordered_frequencies(&merged, ordering.as_ref()),
        };
        let ordering_time = t1.elapsed();

        let mut estimator = Self::assemble(
            &new_graph,
            merged,
            self.config,
            Provenance {
                build_id: self.provenance.build_id,
                applied_deltas: self.provenance.applied_deltas + 1,
            },
            ordering,
            runs,
            catalog_time,
            ordering_time,
        )
        .map_err(DeltaError::Histogram)?;
        drop(rederive_span);
        estimator.drift = Some(DriftReport::sample(&estimator, run.entries()));
        Ok((estimator, new_graph))
    }

    /// Builds from a precomputed **dense** catalog (lets experiment
    /// drivers compute the catalog once and build many estimators over
    /// it). This is the dense reference pipeline — the sparse pipeline is
    /// property-tested to produce bit-identical estimates against it. The
    /// supplied catalog is always retained, regardless of
    /// [`EstimatorConfig::retain_catalog`].
    pub fn from_catalog(
        graph: &Graph,
        catalog: SelectivityCatalog,
        config: EstimatorConfig,
        catalog_time: Duration,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        let t1 = Instant::now();
        let ordering = config.ordering.build(graph, &catalog, config.k);
        let ordered = ordered_frequencies(&catalog, ordering.as_ref());
        let ordering_time = t1.elapsed();

        let t2 = Instant::now();
        let histogram = LabelPathHistogram::from_ordered_frequencies(
            ordering,
            &ordered,
            config.histogram,
            config.beta,
        )?;
        let histogram_time = t2.elapsed();

        let pair_frequencies = pair_frequencies_for(config, graph.label_count(), |l1, l2| {
            catalog.selectivity(&[l1, l2])
        });

        let sparse = config
            .retain_sparse
            .then(|| SparseCatalog::from_dense(&catalog));
        let ordered_runs = config.retain_sparse.then(|| {
            CompressedRuns::from_sorted_iter(
                ordered
                    .iter()
                    .enumerate()
                    .filter(|&(_, &count)| count > 0)
                    .map(|(index, &count)| (index as u64, count)),
            )
        });
        let (label_names, label_frequencies) = snapshot_state(graph);
        let footprint = CatalogFootprint::from_dense(&catalog);
        let provenance = Provenance {
            build_id: fnv_build_id(
                config,
                &label_frequencies,
                footprint.domain_size,
                footprint.nonzero_paths,
                catalog.total_mass(),
            ),
            applied_deltas: 0,
        };
        Ok(PathSelectivityEstimator {
            config,
            footprint,
            catalog: Some(catalog),
            sparse,
            ordered_runs,
            histogram,
            stats: BuildStats {
                catalog_time,
                ordering_time,
                histogram_time,
            },
            provenance,
            graph_fingerprint: graph_fingerprint(graph),
            label_names,
            label_frequencies,
            pair_frequencies,
            follow: FollowMatrix::from_graph(graph),
            drift: None,
        })
    }

    /// Captures the retained state (ordering inputs + histogram) as a
    /// serializable [`crate::snapshot::EstimatorSnapshot`].
    ///
    /// # Errors
    /// [`crate::snapshot::SnapshotError::IdealNotSupported`] for the ideal
    /// reference ordering.
    pub fn snapshot(
        &self,
    ) -> Result<crate::snapshot::EstimatorSnapshot, crate::snapshot::SnapshotError> {
        if self.config.ordering == OrderingKind::Ideal {
            return Err(crate::snapshot::SnapshotError::IdealNotSupported);
        }
        Ok(crate::snapshot::EstimatorSnapshot {
            version: Some(crate::snapshot::SNAPSHOT_VERSION),
            domain_paths: Some(self.footprint.domain_size),
            nonzero_paths: Some(self.footprint.nonzero_paths),
            base_build_id: Some(self.provenance.build_id),
            applied_deltas: Some(self.provenance.applied_deltas),
            k: self.config.k,
            beta: self.config.beta,
            ordering: self.config.ordering,
            histogram_kind: self.config.histogram,
            label_names: self.label_names.clone(),
            label_frequencies: self.label_frequencies.clone(),
            pair_frequencies: self.pair_frequencies.clone(),
            sparse_runs: self
                .sparse
                .as_ref()
                .map(|s| crate::snapshot::CompressedRunsSnapshot::from_runs(s.runs())),
            follow_bits_base64: Some(crate::snapshot::encode_follow_bits(&self.follow)),
            catalog_file: None,
            histogram: self.histogram.histogram().clone(),
        })
    }

    /// Estimated selectivity `e(ℓ)` for a label path.
    ///
    /// # Panics
    /// Panics if the path is empty, longer than `k`, or mentions unknown
    /// labels.
    pub fn estimate(&self, labels: &[LabelId]) -> f64 {
        self.histogram.estimate_labels(labels)
    }

    /// Estimated selectivity for a [`LabelPath`].
    pub fn estimate_path(&self, path: &LabelPath) -> f64 {
        self.histogram.estimate(path)
    }

    /// Number of labels in the statistics' alphabet — the range a query
    /// layer's wildcard step expands over.
    pub fn label_count(&self) -> usize {
        self.label_names.len()
    }

    /// Exact selectivity `f(ℓ)` from the retained catalog.
    ///
    /// # Panics
    /// Panics when the estimator was built without
    /// [`EstimatorConfig::retain_catalog`] — ground truth is a build-time
    /// opt-in under the sparse pipeline.
    pub fn exact(&self, labels: &[LabelId]) -> u64 {
        self.require_catalog().selectivity(labels)
    }

    /// The paper's signed error rate `err(ℓ)` (Formula 6) for one path.
    ///
    /// # Panics
    /// As for [`PathSelectivityEstimator::exact`].
    pub fn error(&self, labels: &[LabelId]) -> f64 {
        error_rate(self.estimate(labels), self.exact(labels))
    }

    /// Accuracy over the whole domain — one Figure 2 data point.
    ///
    /// # Panics
    /// As for [`PathSelectivityEstimator::exact`].
    pub fn accuracy_report(&self) -> AccuracyReport {
        evaluate_configuration(
            self.require_catalog(),
            self.histogram.ordering(),
            self.config.histogram,
            self.config.beta,
        )
        .expect("configuration already built once")
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Construction timing breakdown.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }

    /// Accuracy drift measured over the last applied delta's touched
    /// paths; `None` for fresh builds and snapshot restores.
    pub fn drift(&self) -> Option<&DriftReport> {
        self.drift.as_ref()
    }

    /// The retained ground-truth catalog, if the build kept one
    /// ([`EstimatorConfig::retain_catalog`], or the dense
    /// [`PathSelectivityEstimator::from_catalog`] pipeline).
    pub fn catalog(&self) -> Option<&SelectivityCatalog> {
        self.catalog.as_ref()
    }

    /// The retained sparse catalog, if the build kept one
    /// ([`EstimatorConfig::retain_sparse`]) — the state
    /// [`PathSelectivityEstimator::apply_delta`] maintains.
    pub fn sparse_catalog(&self) -> Option<&SparseCatalog> {
        self.sparse.as_ref()
    }

    /// The build graph's label-follow matrix — what the query layer's
    /// expression expansion prunes impossible branches with, and what
    /// snapshot v5 ships to serving tiers.
    pub fn follow_matrix(&self) -> &FollowMatrix {
        &self.follow
    }

    /// Stable id of the full build this estimator descends from
    /// (unchanged across [`PathSelectivityEstimator::apply_delta`]).
    pub fn build_id(&self) -> u64 {
        self.provenance.build_id
    }

    /// How many incremental deltas have been folded in since the full
    /// build identified by [`PathSelectivityEstimator::build_id`].
    pub fn applied_deltas(&self) -> u64 {
        self.provenance.applied_deltas
    }

    fn require_catalog(&self) -> &SelectivityCatalog {
        self.catalog
            .as_ref()
            .expect("ground-truth catalog not retained; build with EstimatorConfig::retain_catalog")
    }

    /// Memory accounting of the catalog stage (domain size, realized
    /// paths, sparse vs dense bytes) — kept even when the catalog itself
    /// was dropped.
    pub fn footprint(&self) -> &CatalogFootprint {
        &self.footprint
    }

    /// Approximate retained memory of this estimator: histogram buckets +
    /// ordering reconstruction state + the optional dense and sparse
    /// catalogs.
    pub fn size_bytes(&self) -> usize {
        let names: usize = self.label_names.iter().map(String::len).sum();
        self.histogram.size_bytes()
            + names
            + self.label_frequencies.len() * 8
            + self.pair_frequencies.as_ref().map_or(0, |p| p.len() * 8)
            + self.catalog.as_ref().map_or(0, |c| c.len() * 8)
            + self.sparse.as_ref().map_or(0, |s| s.size_bytes())
            + self.ordered_runs.as_ref().map_or(0, |r| r.size_bytes())
    }

    /// The label-path histogram (ordering + buckets).
    pub fn histogram(&self) -> &LabelPathHistogram {
        &self.histogram
    }

    /// Number of label paths in the domain.
    pub fn domain_size(&self) -> usize {
        self.footprint.domain_size as usize
    }

    /// Wraps the estimator in an [`std::sync::Arc`] for cheap sharing
    /// across serving threads (see the `phe-service` crate). The estimator
    /// is immutable after construction, so concurrent readers need no
    /// locking.
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// Decomposes the estimator into what a serving layer retains: the
    /// configuration, the label names (for query-side name → id
    /// resolution), and the label-path histogram. The construction-time
    /// catalog — the large part — is dropped.
    pub fn into_serving_parts(self) -> (EstimatorConfig, Vec<String>, LabelPathHistogram) {
        (self.config, self.label_names, self.histogram)
    }
}

/// The id a fresh full build stamps on its lineage: an FNV-1a hash of the
/// build inputs (configuration, label frequencies, catalog aggregates).
/// Deterministic, so the same graph + configuration always yields the
/// same id, and deltas applied on top inherit it unchanged.
fn build_id(graph: &Graph, sparse: &SparseCatalog, config: EstimatorConfig) -> u64 {
    let frequencies: Vec<u64> = graph
        .label_ids()
        .map(|l| graph.label_frequency(l))
        .collect();
    fnv_build_id(
        config,
        &frequencies,
        sparse.len() as u64,
        sparse.nonzero_count() as u64,
        sparse.total_mass(),
    )
}

/// The one FNV-1a accumulator behind both provenance hashes
/// ([`build_id`] and [`graph_fingerprint`]) — a single definition so the
/// two can never silently desynchronize.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf29ce484222325)
    }

    fn mix(&mut self, value: u64) {
        for byte in value.to_le_bytes() {
            self.0 ^= byte as u64;
            self.0 = self.0.wrapping_mul(0x100000001b3);
        }
    }
}

fn fnv_build_id(
    config: EstimatorConfig,
    label_frequencies: &[u64],
    domain: u64,
    nnz: u64,
    total_mass: u64,
) -> u64 {
    let mut fnv = Fnv::new();
    fnv.mix(config.k as u64);
    fnv.mix(config.beta as u64);
    for byte in config
        .ordering
        .name()
        .bytes()
        .chain(config.histogram.name().bytes())
    {
        fnv.mix(byte as u64);
    }
    for &f in label_frequencies {
        fnv.mix(f);
    }
    fnv.mix(domain);
    fnv.mix(nnz);
    fnv.mix(total_mass);
    fnv.0
}

/// FNV-1a over the graph's vertex count and full edge set (in the
/// deterministic `iter_edges` order) — the identity `apply_delta` checks
/// its base graph against.
fn graph_fingerprint(graph: &Graph) -> u64 {
    let mut fnv = Fnv::new();
    fnv.mix(graph.vertex_count() as u64);
    for (s, l, t) in graph.iter_edges() {
        fnv.mix(s.0 as u64);
        fnv.mix(l.0 as u64);
        fnv.mix(t.0 as u64);
    }
    fnv.0
}

/// Captures the small snapshot reconstruction state from the graph.
fn snapshot_state(graph: &Graph) -> (Vec<String>, Vec<u64>) {
    let label_names: Vec<String> = graph
        .label_ids()
        .map(|l| graph.labels().name(l).unwrap_or_default().to_owned())
        .collect();
    let label_frequencies: Vec<u64> = graph
        .label_ids()
        .map(|l| graph.label_frequency(l))
        .collect();
    (label_names, label_frequencies)
}

/// The `n²` pair selectivities the L2 ordering snapshot needs, from either
/// pipeline's catalog. `None` for every other ordering.
fn pair_frequencies_for(
    config: EstimatorConfig,
    n: usize,
    selectivity: impl Fn(LabelId, LabelId) -> u64,
) -> Option<Vec<u64>> {
    if config.ordering != OrderingKind::SumBasedL2 {
        return None;
    }
    let mut pairs = vec![0u64; n * n];
    // A k = 1 domain never uses pair ranks (see SumBasedL2Ordering);
    // store zeros so the snapshot stays restorable.
    if config.k >= 2 {
        for l1 in 0..n as u16 {
            for l2 in 0..n as u16 {
                pairs[(l1 as usize) * n + l2 as usize] = selectivity(LabelId(l1), LabelId(l2));
            }
        }
    }
    Some(pairs)
}

/// Maps a catalog failure into the estimator's error type: both size
/// refusals become [`HistogramError::DomainTooLarge`] (sizes saturate at
/// `u64::MAX` — past 2⁴⁸ the exact value no longer matters). Alphabet /
/// length violations stay panics: `build` asserts them first, so reaching
/// one here is a caller bug, not an input condition.
fn catalog_to_histogram_error(e: CatalogError) -> HistogramError {
    match e {
        CatalogError::DenseTooLarge { size, limit } => HistogramError::DomainTooLarge {
            domain: size.min(u64::MAX as u128) as u64,
            limit: limit as u64,
        },
        CatalogError::DomainTooLarge { size, limit, .. } => HistogramError::DomainTooLarge {
            domain: size.min(u64::MAX as u128) as u64,
            limit: limit.min(u64::MAX as u128) as u64,
        },
        other => panic!("unexpected catalog conversion failure: {other}"),
    }
}

// Serving audit: the estimator (and everything a serving layer shares
// across threads) must be Send + Sync. `DomainOrdering: Send + Sync`
// guarantees the trait objects inside `LabelPathHistogram` qualify; this
// assertion keeps the property from regressing silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PathSelectivityEstimator>();
    assert_send_sync::<LabelPathHistogram>();
    assert_send_sync::<EstimatorConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use phe_datasets::{erdos_renyi, LabelDistribution};

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    fn graph() -> Graph {
        erdos_renyi(50, 400, 3, LabelDistribution::Zipf { exponent: 1.0 }, 31)
    }

    #[test]
    fn build_and_estimate_every_ordering() {
        let g = graph();
        for ordering in OrderingKind::ALL {
            let est = PathSelectivityEstimator::build(
                &g,
                EstimatorConfig {
                    k: 3,
                    beta: 12,
                    ordering,
                    histogram: HistogramKind::VOptimalGreedy,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: false,
                },
            )
            .unwrap();
            let e = est.estimate(&[l(0), l(1)]);
            assert!(e.is_finite() && e >= 0.0, "{}: {e}", ordering.name());
            assert_eq!(est.domain_size(), 3 + 9 + 27);
        }
    }

    #[test]
    fn exact_matches_catalog_and_error_is_formula6() {
        let g = graph();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: 6,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: true,
                retain_sparse: false,
            },
        )
        .unwrap();
        let path = [l(0), l(2)];
        let f = est.exact(&path);
        let e = est.estimate(&path);
        let err = est.error(&path);
        if (e - f as f64).abs() < f64::EPSILON {
            assert_eq!(err, 0.0);
        } else {
            assert!((err - (e - f as f64) / e.max(f as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn full_budget_is_exact() {
        let g = graph();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: usize::MAX,
                ordering: OrderingKind::NumCard,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: true,
                retain_sparse: false,
            },
        )
        .unwrap();
        let report = est.accuracy_report();
        assert_eq!(report.mean_abs_error_rate, 0.0);
    }

    #[test]
    fn exact_dp_rejected_at_scale_via_error() {
        // A domain exceeding the exact-DP limit must surface as an Err,
        // not a panic.
        let g = erdos_renyi(30, 200, 5, LabelDistribution::Uniform, 3);
        let res = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 6, // 5^1..5^6 = 19530 > 8192 limit
                beta: 64,
                ordering: OrderingKind::NumAlph,
                histogram: HistogramKind::VOptimalExact,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        );
        assert!(matches!(res, Err(HistogramError::ExactTooLarge { .. })));
    }

    #[test]
    fn oversized_domain_is_a_checked_error() {
        // 1000 labels at k = 8 ⇒ ~10^24 paths: past the index space, the
        // build must return an error, not panic in the catalog layer.
        let mut b = phe_graph::GraphBuilder::with_numeric_labels(2, 1000);
        b.add_edge(phe_graph::VertexId(0), l(0), phe_graph::VertexId(1));
        let g = b.build();
        let res = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 8,
                ..EstimatorConfig::default()
            },
        );
        assert!(matches!(res, Err(HistogramError::DomainTooLarge { .. })));
    }

    #[test]
    fn build_stats_are_populated() {
        let g = graph();
        let est = PathSelectivityEstimator::build(&g, EstimatorConfig::default()).unwrap();
        // Durations are non-zero for catalog work at this size... but can
        // round to zero on coarse clocks; just check they are recorded
        // fields and the config echoes back.
        assert_eq!(est.config().k, 3);
        let _ = est.build_stats().catalog_time;
    }

    /// Deterministic churn for the delta tests: removes every 6th edge
    /// and inserts fresh edges derived from an LCG walk.
    fn churn(graph: &Graph, inserts: usize, seed: u64) -> phe_graph::GraphDelta {
        let mut delta = phe_graph::GraphDelta::new();
        let mut removed = std::collections::HashSet::new();
        for (i, (s, lab, t)) in graph.iter_edges().enumerate() {
            if i % 6 == 0 {
                delta.remove(s, lab, t);
                removed.insert((s.0, lab.0, t.0));
            }
        }
        let (n, labels) = (graph.vertex_count() as u32, graph.label_count() as u16);
        let mut x = seed;
        let mut step = || {
            x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
            (x >> 33) as u32
        };
        let mut added = std::collections::HashSet::new();
        let mut remaining = inserts;
        while remaining > 0 {
            let (s, t, lab) = (step() % n, step() % n, (step() as u16) % labels);
            let present = graph.has_edge(phe_graph::VertexId(s), l(lab), phe_graph::VertexId(t))
                && !removed.contains(&(s, lab, t));
            if present || !added.insert((s, lab, t)) {
                continue;
            }
            delta.insert(phe_graph::VertexId(s), l(lab), phe_graph::VertexId(t));
            remaining -= 1;
        }
        delta
    }

    #[test]
    fn apply_delta_chains_and_tracks_lineage() {
        let g0 = graph();
        let config = EstimatorConfig {
            retain_sparse: true,
            threads: 1,
            ..EstimatorConfig::default()
        };
        let base = PathSelectivityEstimator::build(&g0, config).unwrap();
        assert_eq!(base.applied_deltas(), 0);

        let d1 = churn(&g0, 15, 17);
        let (est1, g1) = base.apply_delta(&g0, &d1).unwrap();
        assert_eq!(est1.applied_deltas(), 1);
        assert_eq!(est1.build_id(), base.build_id(), "lineage is inherited");

        // A second delta chains off the first result.
        let d2 = churn(&g1, 10, 99);
        let (est2, g2) = est1.apply_delta(&g1, &d2).unwrap();
        assert_eq!(est2.applied_deltas(), 2);
        assert_eq!(est2.build_id(), base.build_id());

        // The chained result is bit-identical to a full rebuild on g2.
        let fresh = PathSelectivityEstimator::build(&g2, config).unwrap();
        assert_eq!(
            est2.sparse_catalog().unwrap(),
            fresh.sparse_catalog().unwrap()
        );
        for l1 in 0..3u16 {
            for l2 in 0..3u16 {
                let path = [l(l1), l(l2)];
                assert_eq!(
                    est2.estimate(&path).to_bits(),
                    fresh.estimate(&path).to_bits(),
                    "{l1}/{l2}"
                );
            }
        }
        // The v3 snapshot records the lineage.
        let snapshot = est2.snapshot().unwrap();
        assert_eq!(snapshot.base_build_id, Some(base.build_id()));
        assert_eq!(snapshot.applied_deltas, Some(2));
        // A fresh full build starts a new lineage (same id only for the
        // same inputs — g2 differs from g0).
        assert_eq!(fresh.applied_deltas(), 0);
        assert_ne!(fresh.build_id(), base.build_id());
    }

    #[test]
    fn apply_delta_requires_retained_sparse_and_matching_graph() {
        let g = graph();
        let plain = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                threads: 1,
                ..EstimatorConfig::default()
            },
        )
        .unwrap();
        let delta = churn(&g, 4, 5);
        assert!(matches!(
            plain.apply_delta(&g, &delta),
            Err(DeltaError::SparseNotRetained)
        ));

        let maintainable = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                retain_sparse: true,
                threads: 1,
                ..EstimatorConfig::default()
            },
        )
        .unwrap();
        // Wrong base graph: refused before any counting happens.
        let other = erdos_renyi(50, 380, 3, LabelDistribution::Uniform, 99);
        assert!(matches!(
            maintainable.apply_delta(&other, &delta),
            Err(DeltaError::GraphMismatch(_))
        ));
        // A delta violating its contract surfaces as a graph error.
        let mut bad = phe_graph::GraphDelta::new();
        bad.remove(phe_graph::VertexId(0), l(0), phe_graph::VertexId(0));
        if !g.has_edge(phe_graph::VertexId(0), l(0), phe_graph::VertexId(0)) {
            assert!(matches!(
                maintainable.apply_delta(&g, &bad),
                Err(DeltaError::Graph(_))
            ));
        }
    }

    #[test]
    fn apply_delta_rejects_rewired_base_graph() {
        // Same labels, same per-label edge counts, one edge's target
        // moved: label frequencies collide, the edge-set fingerprint
        // must not.
        let g = graph();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                retain_sparse: true,
                threads: 1,
                ..EstimatorConfig::default()
            },
        )
        .unwrap();
        let edges: Vec<_> = g.iter_edges().collect();
        let (rs, rl, rt) = edges[0];
        let new_t = (0..g.vertex_count() as u32)
            .map(phe_graph::VertexId)
            .find(|&t| t != rt && !g.has_edge(rs, rl, t))
            .expect("some absent target exists");
        let mut b = phe_graph::GraphBuilder::with_numeric_labels(
            g.vertex_count() as u32,
            g.label_count() as u16,
        );
        b.add_edge(rs, rl, new_t);
        for &(s, lab, t) in &edges[1..] {
            b.add_edge(s, lab, t);
        }
        let rewired = b.build();
        assert_eq!(g.edge_count(), rewired.edge_count());
        let delta = churn(&g, 3, 21);
        let err = est.apply_delta(&rewired, &delta).map(|_| ()).unwrap_err();
        match err {
            DeltaError::GraphMismatch(msg) => assert!(msg.contains("fingerprint"), "{msg}"),
            other => panic!("expected a fingerprint mismatch, got {other}"),
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_rejected() {
        let g = graph();
        let _ = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 0,
                ..EstimatorConfig::default()
            },
        );
    }
}
