//! The one-stop path selectivity estimator.

use std::time::{Duration, Instant};

use phe_graph::{Graph, LabelId};
use phe_histogram::{error_rate, AccuracyReport, HistogramError};
use phe_pathenum::{CatalogError, SelectivityCatalog, SparseCatalog};

pub use crate::label_histogram::HistogramKind;

use crate::eval::{evaluate_configuration, ordered_frequencies, sparse_ordered_frequencies};
use crate::label_histogram::LabelPathHistogram;
use crate::ordering::OrderingKind;
use crate::path::{LabelPath, MAX_K};

/// Configuration of a [`PathSelectivityEstimator`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EstimatorConfig {
    /// Maximum path length `k` (1..=[`MAX_K`]).
    pub k: usize,
    /// Histogram bucket budget β.
    pub beta: usize,
    /// Domain ordering method.
    pub ordering: OrderingKind,
    /// Histogram family.
    pub histogram: HistogramKind,
    /// Worker threads for catalog computation (0 ⇒ all cores, 1 ⇒
    /// sequential).
    pub threads: usize,
    /// Keep the full **dense** ground-truth catalog on the built
    /// estimator. Off (the default), [`PathSelectivityEstimator::build`]
    /// streams sparse counts straight into the histogram and retains only
    /// buckets + ordering state — the serving footprint. On, the catalog
    /// is materialized for [`PathSelectivityEstimator::exact`] /
    /// [`PathSelectivityEstimator::accuracy_report`], which requires a
    /// dense-feasible domain.
    pub retain_catalog: bool,
}

impl Default for EstimatorConfig {
    /// The paper's headline configuration: sum-based ordering over a
    /// V-optimal (greedy) histogram, `k = 3`, β = 64, sparse build with no
    /// retained catalog.
    fn default() -> Self {
        EstimatorConfig {
            k: 3,
            beta: 64,
            ordering: OrderingKind::SumBased,
            histogram: HistogramKind::VOptimalGreedy,
            threads: 0,
            retain_catalog: false,
        }
    }
}

/// Memory accounting of the catalog stage, captured at build time (cheap
/// to keep even when the catalog itself is dropped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatalogFootprint {
    /// Domain size `|Lk|`, zeros included.
    pub domain_size: u64,
    /// Realized (non-zero) paths.
    pub nonzero_paths: u64,
    /// Bytes of the sparse `(index, count)` representation.
    pub sparse_bytes: u64,
    /// Bytes the dense count vector needs (or would need), in `u128` so
    /// dense-infeasible configurations report instead of wrapping.
    pub dense_bytes: u128,
}

impl CatalogFootprint {
    fn from_sparse(catalog: &SparseCatalog) -> CatalogFootprint {
        CatalogFootprint {
            domain_size: catalog.len() as u64,
            nonzero_paths: catalog.nonzero_count() as u64,
            sparse_bytes: catalog.size_bytes() as u64,
            dense_bytes: catalog.dense_bytes(),
        }
    }

    fn from_dense(catalog: &SelectivityCatalog) -> CatalogFootprint {
        let nonzero = (catalog.len() - catalog.zero_count()) as u64;
        CatalogFootprint {
            domain_size: catalog.len() as u64,
            nonzero_paths: nonzero,
            sparse_bytes: nonzero * 16,
            dense_bytes: catalog.len() as u128 * 8,
        }
    }
}

/// Wall-clock breakdown of estimator construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildStats {
    /// Computing the exact selectivity catalog (the dominant cost).
    pub catalog_time: Duration,
    /// Permuting frequencies into the ordering's index space (exercises
    /// the unranking function |Lk| times).
    pub ordering_time: Duration,
    /// Histogram construction over the ordered sequence.
    pub histogram_time: Duration,
}

/// A built estimator: histogram + ordering, with the construction-time
/// catalog optionally retained for ground-truth queries and accuracy
/// reports ([`EstimatorConfig::retain_catalog`]).
pub struct PathSelectivityEstimator {
    config: EstimatorConfig,
    catalog: Option<SelectivityCatalog>,
    footprint: CatalogFootprint,
    histogram: LabelPathHistogram,
    stats: BuildStats,
    /// Snapshot inputs captured at build time (label names/frequencies,
    /// pair frequencies for the L2 ordering).
    label_names: Vec<String>,
    label_frequencies: Vec<u64>,
    pair_frequencies: Option<Vec<u64>>,
}

impl PathSelectivityEstimator {
    /// Builds the estimator through the **sparse streaming pipeline**:
    /// sharded sparse catalog → combinatorial index remap → sparse
    /// histogram build. The dense path domain is never materialized unless
    /// [`EstimatorConfig::retain_catalog`] asks for the ground-truth
    /// catalog.
    ///
    /// # Errors
    /// Propagates histogram construction failures (e.g. asking for the
    /// exact V-optimal DP on a paper-scale domain), and
    /// [`HistogramError::DomainTooLarge`] when the domain overflows the
    /// canonical index space (2⁴⁸ paths) or when `retain_catalog` (or a
    /// builder with no sparse path) needs a dense domain the machine
    /// cannot hold.
    ///
    /// # Panics
    /// Panics if `k` is 0 or exceeds [`MAX_K`], or the graph has no
    /// labels.
    pub fn build(
        graph: &Graph,
        config: EstimatorConfig,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        assert!(
            config.k >= 1 && config.k <= MAX_K,
            "k = {} out of range 1..={MAX_K}",
            config.k
        );
        assert!(graph.label_count() > 0, "graph has no edge labels");

        let t0 = Instant::now();
        let sparse = SparseCatalog::compute_parallel(graph, config.k, config.threads)
            .map_err(catalog_to_histogram_error)?;
        let catalog_time = t0.elapsed();

        Self::from_sparse_catalog(graph, sparse, config, catalog_time)
    }

    /// Builds from a precomputed **sparse** catalog.
    ///
    /// # Errors
    /// As for [`PathSelectivityEstimator::build`].
    pub fn from_sparse_catalog(
        graph: &Graph,
        sparse: SparseCatalog,
        config: EstimatorConfig,
        catalog_time: Duration,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        // Retaining ground truth needs a dense-feasible domain: fail the
        // precondition now, in microseconds, instead of after the full
        // ordering + histogram build.
        if config.retain_catalog {
            sparse
                .check_dense_feasible()
                .map_err(catalog_to_histogram_error)?;
        }
        let footprint = CatalogFootprint::from_sparse(&sparse);

        let t1 = Instant::now();
        let ordering = config.ordering.build_sparse(graph, &sparse, config.k);
        let runs = sparse_ordered_frequencies(&sparse, ordering.as_ref());
        let ordering_time = t1.elapsed();

        let t2 = Instant::now();
        let histogram = LabelPathHistogram::from_sparse_frequencies(
            ordering,
            &runs,
            config.histogram,
            config.beta,
        )?;
        let histogram_time = t2.elapsed();

        let pair_frequencies = pair_frequencies_for(config, graph.label_count(), |l1, l2| {
            sparse.selectivity(&[l1, l2])
        });
        let catalog = if config.retain_catalog {
            Some(sparse.to_dense().map_err(catalog_to_histogram_error)?)
        } else {
            None
        };

        let (label_names, label_frequencies) = snapshot_state(graph);
        Ok(PathSelectivityEstimator {
            config,
            catalog,
            footprint,
            histogram,
            stats: BuildStats {
                catalog_time,
                ordering_time,
                histogram_time,
            },
            label_names,
            label_frequencies,
            pair_frequencies,
        })
    }

    /// Builds from a precomputed **dense** catalog (lets experiment
    /// drivers compute the catalog once and build many estimators over
    /// it). This is the dense reference pipeline — the sparse pipeline is
    /// property-tested to produce bit-identical estimates against it. The
    /// supplied catalog is always retained, regardless of
    /// [`EstimatorConfig::retain_catalog`].
    pub fn from_catalog(
        graph: &Graph,
        catalog: SelectivityCatalog,
        config: EstimatorConfig,
        catalog_time: Duration,
    ) -> Result<PathSelectivityEstimator, HistogramError> {
        let t1 = Instant::now();
        let ordering = config.ordering.build(graph, &catalog, config.k);
        let ordered = ordered_frequencies(&catalog, ordering.as_ref());
        let ordering_time = t1.elapsed();

        let t2 = Instant::now();
        let histogram = LabelPathHistogram::from_ordered_frequencies(
            ordering,
            &ordered,
            config.histogram,
            config.beta,
        )?;
        let histogram_time = t2.elapsed();

        let pair_frequencies = pair_frequencies_for(config, graph.label_count(), |l1, l2| {
            catalog.selectivity(&[l1, l2])
        });

        let (label_names, label_frequencies) = snapshot_state(graph);
        Ok(PathSelectivityEstimator {
            config,
            footprint: CatalogFootprint::from_dense(&catalog),
            catalog: Some(catalog),
            histogram,
            stats: BuildStats {
                catalog_time,
                ordering_time,
                histogram_time,
            },
            label_names,
            label_frequencies,
            pair_frequencies,
        })
    }

    /// Captures the retained state (ordering inputs + histogram) as a
    /// serializable [`crate::snapshot::EstimatorSnapshot`].
    ///
    /// # Errors
    /// [`crate::snapshot::SnapshotError::IdealNotSupported`] for the ideal
    /// reference ordering.
    pub fn snapshot(
        &self,
    ) -> Result<crate::snapshot::EstimatorSnapshot, crate::snapshot::SnapshotError> {
        if self.config.ordering == OrderingKind::Ideal {
            return Err(crate::snapshot::SnapshotError::IdealNotSupported);
        }
        Ok(crate::snapshot::EstimatorSnapshot {
            version: Some(crate::snapshot::SNAPSHOT_VERSION),
            domain_paths: Some(self.footprint.domain_size),
            nonzero_paths: Some(self.footprint.nonzero_paths),
            k: self.config.k,
            beta: self.config.beta,
            ordering: self.config.ordering,
            histogram_kind: self.config.histogram,
            label_names: self.label_names.clone(),
            label_frequencies: self.label_frequencies.clone(),
            pair_frequencies: self.pair_frequencies.clone(),
            histogram: self.histogram.histogram().clone(),
        })
    }

    /// Estimated selectivity `e(ℓ)` for a label path.
    ///
    /// # Panics
    /// Panics if the path is empty, longer than `k`, or mentions unknown
    /// labels.
    pub fn estimate(&self, labels: &[LabelId]) -> f64 {
        self.histogram.estimate_labels(labels)
    }

    /// Estimated selectivity for a [`LabelPath`].
    pub fn estimate_path(&self, path: &LabelPath) -> f64 {
        self.histogram.estimate(path)
    }

    /// Exact selectivity `f(ℓ)` from the retained catalog.
    ///
    /// # Panics
    /// Panics when the estimator was built without
    /// [`EstimatorConfig::retain_catalog`] — ground truth is a build-time
    /// opt-in under the sparse pipeline.
    pub fn exact(&self, labels: &[LabelId]) -> u64 {
        self.require_catalog().selectivity(labels)
    }

    /// The paper's signed error rate `err(ℓ)` (Formula 6) for one path.
    ///
    /// # Panics
    /// As for [`PathSelectivityEstimator::exact`].
    pub fn error(&self, labels: &[LabelId]) -> f64 {
        error_rate(self.estimate(labels), self.exact(labels))
    }

    /// Accuracy over the whole domain — one Figure 2 data point.
    ///
    /// # Panics
    /// As for [`PathSelectivityEstimator::exact`].
    pub fn accuracy_report(&self) -> AccuracyReport {
        evaluate_configuration(
            self.require_catalog(),
            self.histogram.ordering(),
            self.config.histogram,
            self.config.beta,
        )
        .expect("configuration already built once")
    }

    /// The configuration this estimator was built with.
    pub fn config(&self) -> &EstimatorConfig {
        &self.config
    }

    /// Construction timing breakdown.
    pub fn build_stats(&self) -> &BuildStats {
        &self.stats
    }

    /// The retained ground-truth catalog, if the build kept one
    /// ([`EstimatorConfig::retain_catalog`], or the dense
    /// [`PathSelectivityEstimator::from_catalog`] pipeline).
    pub fn catalog(&self) -> Option<&SelectivityCatalog> {
        self.catalog.as_ref()
    }

    fn require_catalog(&self) -> &SelectivityCatalog {
        self.catalog
            .as_ref()
            .expect("ground-truth catalog not retained; build with EstimatorConfig::retain_catalog")
    }

    /// Memory accounting of the catalog stage (domain size, realized
    /// paths, sparse vs dense bytes) — kept even when the catalog itself
    /// was dropped.
    pub fn footprint(&self) -> &CatalogFootprint {
        &self.footprint
    }

    /// Approximate retained memory of this estimator: histogram buckets +
    /// ordering reconstruction state + the optional dense catalog.
    pub fn size_bytes(&self) -> usize {
        let names: usize = self.label_names.iter().map(String::len).sum();
        self.histogram.size_bytes()
            + names
            + self.label_frequencies.len() * 8
            + self.pair_frequencies.as_ref().map_or(0, |p| p.len() * 8)
            + self.catalog.as_ref().map_or(0, |c| c.len() * 8)
    }

    /// The label-path histogram (ordering + buckets).
    pub fn histogram(&self) -> &LabelPathHistogram {
        &self.histogram
    }

    /// Number of label paths in the domain.
    pub fn domain_size(&self) -> usize {
        self.footprint.domain_size as usize
    }

    /// Wraps the estimator in an [`std::sync::Arc`] for cheap sharing
    /// across serving threads (see the `phe-service` crate). The estimator
    /// is immutable after construction, so concurrent readers need no
    /// locking.
    pub fn into_shared(self) -> std::sync::Arc<Self> {
        std::sync::Arc::new(self)
    }

    /// Decomposes the estimator into what a serving layer retains: the
    /// configuration, the label names (for query-side name → id
    /// resolution), and the label-path histogram. The construction-time
    /// catalog — the large part — is dropped.
    pub fn into_serving_parts(self) -> (EstimatorConfig, Vec<String>, LabelPathHistogram) {
        (self.config, self.label_names, self.histogram)
    }
}

/// Captures the small snapshot reconstruction state from the graph.
fn snapshot_state(graph: &Graph) -> (Vec<String>, Vec<u64>) {
    let label_names: Vec<String> = graph
        .label_ids()
        .map(|l| graph.labels().name(l).unwrap_or_default().to_owned())
        .collect();
    let label_frequencies: Vec<u64> = graph
        .label_ids()
        .map(|l| graph.label_frequency(l))
        .collect();
    (label_names, label_frequencies)
}

/// The `n²` pair selectivities the L2 ordering snapshot needs, from either
/// pipeline's catalog. `None` for every other ordering.
fn pair_frequencies_for(
    config: EstimatorConfig,
    n: usize,
    selectivity: impl Fn(LabelId, LabelId) -> u64,
) -> Option<Vec<u64>> {
    if config.ordering != OrderingKind::SumBasedL2 {
        return None;
    }
    let mut pairs = vec![0u64; n * n];
    // A k = 1 domain never uses pair ranks (see SumBasedL2Ordering);
    // store zeros so the snapshot stays restorable.
    if config.k >= 2 {
        for l1 in 0..n as u16 {
            for l2 in 0..n as u16 {
                pairs[(l1 as usize) * n + l2 as usize] = selectivity(LabelId(l1), LabelId(l2));
            }
        }
    }
    Some(pairs)
}

/// Maps a catalog failure into the estimator's error type: both size
/// refusals become [`HistogramError::DomainTooLarge`] (sizes saturate at
/// `u64::MAX` — past 2⁴⁸ the exact value no longer matters). Alphabet /
/// length violations stay panics: `build` asserts them first, so reaching
/// one here is a caller bug, not an input condition.
fn catalog_to_histogram_error(e: CatalogError) -> HistogramError {
    match e {
        CatalogError::DenseTooLarge { size, limit } => HistogramError::DomainTooLarge {
            domain: size.min(u64::MAX as u128) as u64,
            limit: limit as u64,
        },
        CatalogError::DomainTooLarge { size, limit, .. } => HistogramError::DomainTooLarge {
            domain: size.min(u64::MAX as u128) as u64,
            limit: limit.min(u64::MAX as u128) as u64,
        },
        other => panic!("unexpected catalog conversion failure: {other}"),
    }
}

// Serving audit: the estimator (and everything a serving layer shares
// across threads) must be Send + Sync. `DomainOrdering: Send + Sync`
// guarantees the trait objects inside `LabelPathHistogram` qualify; this
// assertion keeps the property from regressing silently.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<PathSelectivityEstimator>();
    assert_send_sync::<LabelPathHistogram>();
    assert_send_sync::<EstimatorConfig>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use phe_datasets::{erdos_renyi, LabelDistribution};

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }

    fn graph() -> Graph {
        erdos_renyi(50, 400, 3, LabelDistribution::Zipf { exponent: 1.0 }, 31)
    }

    #[test]
    fn build_and_estimate_every_ordering() {
        let g = graph();
        for ordering in OrderingKind::ALL {
            let est = PathSelectivityEstimator::build(
                &g,
                EstimatorConfig {
                    k: 3,
                    beta: 12,
                    ordering,
                    histogram: HistogramKind::VOptimalGreedy,
                    threads: 1,
                    retain_catalog: false,
                },
            )
            .unwrap();
            let e = est.estimate(&[l(0), l(1)]);
            assert!(e.is_finite() && e >= 0.0, "{}: {e}", ordering.name());
            assert_eq!(est.domain_size(), 3 + 9 + 27);
        }
    }

    #[test]
    fn exact_matches_catalog_and_error_is_formula6() {
        let g = graph();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: 6,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: true,
            },
        )
        .unwrap();
        let path = [l(0), l(2)];
        let f = est.exact(&path);
        let e = est.estimate(&path);
        let err = est.error(&path);
        if (e - f as f64).abs() < f64::EPSILON {
            assert_eq!(err, 0.0);
        } else {
            assert!((err - (e - f as f64) / e.max(f as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn full_budget_is_exact() {
        let g = graph();
        let est = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 2,
                beta: usize::MAX,
                ordering: OrderingKind::NumCard,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: true,
            },
        )
        .unwrap();
        let report = est.accuracy_report();
        assert_eq!(report.mean_abs_error_rate, 0.0);
    }

    #[test]
    fn exact_dp_rejected_at_scale_via_error() {
        // A domain exceeding the exact-DP limit must surface as an Err,
        // not a panic.
        let g = erdos_renyi(30, 200, 5, LabelDistribution::Uniform, 3);
        let res = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 6, // 5^1..5^6 = 19530 > 8192 limit
                beta: 64,
                ordering: OrderingKind::NumAlph,
                histogram: HistogramKind::VOptimalExact,
                threads: 1,
                retain_catalog: false,
            },
        );
        assert!(matches!(res, Err(HistogramError::ExactTooLarge { .. })));
    }

    #[test]
    fn oversized_domain_is_a_checked_error() {
        // 1000 labels at k = 8 ⇒ ~10^24 paths: past the index space, the
        // build must return an error, not panic in the catalog layer.
        let mut b = phe_graph::GraphBuilder::with_numeric_labels(2, 1000);
        b.add_edge(phe_graph::VertexId(0), l(0), phe_graph::VertexId(1));
        let g = b.build();
        let res = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 8,
                ..EstimatorConfig::default()
            },
        );
        assert!(matches!(res, Err(HistogramError::DomainTooLarge { .. })));
    }

    #[test]
    fn build_stats_are_populated() {
        let g = graph();
        let est = PathSelectivityEstimator::build(&g, EstimatorConfig::default()).unwrap();
        // Durations are non-zero for catalog work at this size... but can
        // round to zero on coarse clocks; just check they are recorded
        // fields and the config echoes back.
        assert_eq!(est.config().k, 3);
        let _ = est.build_stats().catalog_time;
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn k_zero_rejected() {
        let g = graph();
        let _ = PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: 0,
                ..EstimatorConfig::default()
            },
        );
    }
}
