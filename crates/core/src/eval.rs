//! Whole-domain accuracy evaluation — the machinery behind Figure 2 —
//! plus the sparse permutation step of the streaming build pipeline.

use phe_histogram::{AccuracyReport, HistogramError, PointEstimator};
use phe_pathenum::{CompressedRuns, SelectivityCatalog, SparseCatalog};

use crate::label_histogram::HistogramKind;
use crate::ordering::DomainOrdering;

/// Permutes the catalog's frequencies into an ordering's index space:
/// `result[i] = f(ordering.path_at(i))`.
///
/// This is the construction-time use of the *unranking* function — its
/// cost is what separates sum-based from the native orderings in the
/// paper's Table 4 discussion.
pub fn ordered_frequencies(
    catalog: &SelectivityCatalog,
    ordering: &dyn DomainOrdering,
) -> Vec<u64> {
    let size = ordering.domain_size();
    assert_eq!(
        size as usize,
        catalog.len(),
        "ordering domain and catalog disagree on |Lk|"
    );
    (0..size)
        .map(|i| {
            let path = ordering.path_at(i);
            catalog.selectivity(path.as_label_ids())
        })
        .collect()
}

/// Permutes a **sparse** catalog's non-zero frequencies into an
/// ordering's index space: `(canonical_index, f)` → `(ordered_index, f)`,
/// sorted by ordered index, zeros implicit — and re-compressed into
/// block runs, the form the histogram builders stream from and the
/// estimator retains.
///
/// This replaces the dense [`ordered_frequencies`] permutation in the
/// streaming pipeline: cost is `O(nnz · rank + nnz log nnz)` instead of
/// `O(|Lk| · unrank)` — and, more importantly, no `|Lk|`-sized allocation.
/// The catalog's compressed entries stream through the remap cursor; only
/// the transient sort buffer holds plain pairs.
pub fn sparse_ordered_frequencies(
    catalog: &SparseCatalog,
    ordering: &dyn DomainOrdering,
) -> CompressedRuns {
    assert_eq!(
        ordering.domain_size() as usize,
        catalog.len(),
        "ordering domain and catalog disagree on |Lk|"
    );
    CompressedRuns::from_entries(&ordering.ordered_entries(&mut catalog.iter()))
}

/// Builds a histogram of `kind`/`beta` under `ordering` and evaluates the
/// estimate of **every** path in the domain against the catalog's ground
/// truth. One invocation = one point of the paper's Figure 2.
pub fn evaluate_configuration(
    catalog: &SelectivityCatalog,
    ordering: &dyn DomainOrdering,
    kind: HistogramKind,
    beta: usize,
) -> Result<AccuracyReport, HistogramError> {
    let ordered = ordered_frequencies(catalog, ordering);
    let histogram = kind.build(&ordered, beta)?;
    let estimates: Vec<f64> = (0..ordered.len()).map(|i| histogram.estimate(i)).collect();
    Ok(AccuracyReport::evaluate(&estimates, &ordered))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::PathDomain;
    use crate::ordering::{NumericalOrdering, OrderingKind, SumBasedOrdering};
    use crate::ranking::LabelRanking;
    use phe_datasets::{erdos_renyi, LabelDistribution};
    use phe_graph::LabelId;

    #[test]
    fn ordered_frequencies_is_a_permutation() {
        let g = erdos_renyi(40, 160, 3, LabelDistribution::Zipf { exponent: 1.0 }, 3);
        let catalog = SelectivityCatalog::compute(&g, 3);
        let domain = PathDomain::new(3, 3);
        for kind in OrderingKind::ALL {
            let ordering = kind.build(&g, &catalog, 3);
            let ordered = ordered_frequencies(&catalog, ordering.as_ref());
            let mut a = ordered.clone();
            let mut b = catalog.counts().to_vec();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "{} must permute the catalog", kind.name());
            assert_eq!(ordered.len() as u64, domain.size());
        }
    }

    #[test]
    fn sparse_permutation_matches_dense() {
        let g = erdos_renyi(40, 160, 3, LabelDistribution::Zipf { exponent: 1.0 }, 3);
        let dense = SelectivityCatalog::compute(&g, 3);
        let sparse = phe_pathenum::SparseCatalog::compute(&g, 3).unwrap();
        for kind in OrderingKind::ALL {
            let ordering = kind.build(&g, &dense, 3);
            let ordered = ordered_frequencies(&dense, ordering.as_ref());
            let runs: Vec<(u64, u64)> =
                sparse_ordered_frequencies(&sparse, ordering.as_ref()).to_vec();
            // Runs are sorted, non-zero, and agree with the dense permutation.
            assert!(runs.windows(2).all(|w| w[0].0 < w[1].0), "{}", kind.name());
            let mut reconstructed = vec![0u64; ordered.len()];
            for &(index, count) in &runs {
                reconstructed[index as usize] = count;
            }
            assert_eq!(reconstructed, ordered, "{}", kind.name());
        }
    }

    #[test]
    fn sparse_ordering_builders_agree_with_dense() {
        let g = erdos_renyi(40, 160, 4, LabelDistribution::Zipf { exponent: 1.1 }, 11);
        let dense = SelectivityCatalog::compute(&g, 3);
        let sparse = phe_pathenum::SparseCatalog::compute(&g, 3).unwrap();
        for kind in [OrderingKind::SumBasedL2, OrderingKind::Ideal] {
            let a = kind.build(&g, &dense, 3);
            let b = kind.build_sparse(&g, &sparse, 3);
            for i in 0..a.domain_size() {
                assert_eq!(a.path_at(i), b.path_at(i), "{} at {i}", kind.name());
            }
        }
    }

    #[test]
    fn perfect_histogram_gives_zero_error() {
        let g = erdos_renyi(30, 90, 2, LabelDistribution::Uniform, 9);
        let catalog = SelectivityCatalog::compute(&g, 2);
        let domain = PathDomain::new(2, 2);
        let ordering = NumericalOrdering::new(domain, LabelRanking::identity(2), "num-alph");
        // beta = domain size ⇒ singleton buckets ⇒ exact estimates.
        let report = evaluate_configuration(
            &catalog,
            &ordering,
            crate::label_histogram::HistogramKind::VOptimalExact,
            domain.size() as usize,
        )
        .unwrap();
        assert_eq!(report.mean_abs_error_rate, 0.0);
        assert_eq!(report.median_q_error, 1.0);
    }

    #[test]
    fn sum_based_beats_num_alph_on_skewed_synthetic_data() {
        // The paper's headline claim, in miniature: on a synthetic graph
        // with skewed label frequencies and independent placement, the
        // sum-based ordering yields a lower mean error rate than num-alph
        // under an equal bucket budget.
        let g = erdos_renyi(60, 900, 4, LabelDistribution::Zipf { exponent: 1.2 }, 17);
        let catalog = SelectivityCatalog::compute(&g, 3);
        let domain = PathDomain::new(4, 3);
        let beta = 10;
        let kind = crate::label_histogram::HistogramKind::VOptimalGreedy;

        let num_alph = NumericalOrdering::new(domain, LabelRanking::alphabetical(&g), "num-alph");
        let sum_based = SumBasedOrdering::new(domain, LabelRanking::cardinality(&g));

        let e_na = evaluate_configuration(&catalog, &num_alph, kind, beta)
            .unwrap()
            .mean_abs_error_rate;
        let e_sb = evaluate_configuration(&catalog, &sum_based, kind, beta)
            .unwrap()
            .mean_abs_error_rate;
        assert!(
            e_sb < e_na,
            "sum-based ({e_sb:.4}) should beat num-alph ({e_na:.4})"
        );
    }

    #[test]
    fn more_buckets_reduce_error() {
        let g = erdos_renyi(50, 500, 3, LabelDistribution::Zipf { exponent: 1.0 }, 23);
        let catalog = SelectivityCatalog::compute(&g, 3);
        let domain = PathDomain::new(3, 3);
        let ordering = SumBasedOrdering::new(domain, LabelRanking::cardinality(&g));
        let kind = crate::label_histogram::HistogramKind::VOptimalGreedy;
        let few = evaluate_configuration(&catalog, &ordering, kind, 4)
            .unwrap()
            .mean_abs_error_rate;
        let many = evaluate_configuration(&catalog, &ordering, kind, 30)
            .unwrap()
            .mean_abs_error_rate;
        assert!(
            many <= few + 1e-9,
            "error should shrink with buckets: {few:.4} -> {many:.4}"
        );
    }

    #[test]
    fn zero_paths_count_toward_error() {
        // A domain position with f = 0 estimated non-zero contributes
        // err = +1; verify the report sees the whole domain, zeros included.
        let g = {
            let mut b = phe_graph::GraphBuilder::new();
            b.add_edge(phe_graph::VertexId(0), LabelId(0), phe_graph::VertexId(1));
            // A second label makes the k=2 domain non-trivial (zeros).
            b.intern_label("extra");
            b.build()
        };
        let catalog = SelectivityCatalog::compute(&g, 2);
        assert!(catalog.zero_count() > 0);
        let domain = PathDomain::new(g.label_count(), 2);
        let ordering =
            NumericalOrdering::new(domain, LabelRanking::identity(g.label_count()), "num-alph");
        let report = evaluate_configuration(
            &catalog,
            &ordering,
            crate::label_histogram::HistogramKind::EquiWidth,
            1,
        )
        .unwrap();
        assert_eq!(report.count, catalog.len());
    }
}
