#![warn(missing_docs)]

//! # phe-encoding — shared byte-level encodings
//!
//! Small, dependency-free codecs used by more than one crate in the
//! workspace (the offline build environment has no `base64` or checksum
//! crates):
//!
//! * [`base64_encode`] / [`base64_decode`] — the standard padded base64
//!   alphabet, the text-safe envelope binary payloads need to travel
//!   inside JSON snapshots;
//! * [`fnv1a64`] / [`Fnv64`] — the 64-bit FNV-1a hash, used as the
//!   integrity checksum of on-disk catalog files (and streamable, so a
//!   writer can checksum while emitting);
//! * [`read_u64_le`] / [`write_u64_le`] — fixed-width little-endian
//!   fields for binary file headers.
//!
//! Everything here is a pure function of its input: no IO, no state.

const BASE64_ALPHABET: &[u8; 64] =
    b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard (padded) base64 of `bytes`.
pub fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let word = ((b[0] as u32) << 16) | ((b[1] as u32) << 8) | b[2] as u32;
        for i in 0..4 {
            if i <= chunk.len() {
                out.push(BASE64_ALPHABET[((word >> (18 - 6 * i)) & 0x3f) as usize] as char);
            } else {
                out.push('=');
            }
        }
    }
    out
}

/// Inverse of [`base64_encode`]; `None` on any malformed input (bad
/// length, stray characters, padding in the wrong place).
pub fn base64_decode(text: &str) -> Option<Vec<u8>> {
    let digits: Vec<u8> = text.bytes().take_while(|&b| b != b'=').collect();
    let padding = text.len() - digits.len();
    if !text.len().is_multiple_of(4)
        || padding > 2
        || !text.bytes().skip(digits.len()).all(|b| b == b'=')
    {
        return None;
    }
    let value_of = |b: u8| -> Option<u32> {
        Some(match b {
            b'A'..=b'Z' => (b - b'A') as u32,
            b'a'..=b'z' => (b - b'a' + 26) as u32,
            b'0'..=b'9' => (b - b'0' + 52) as u32,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        })
    };
    let mut out = Vec::with_capacity(digits.len() * 3 / 4);
    for chunk in digits.chunks(4) {
        if chunk.len() == 1 {
            return None; // 6 bits cannot carry a byte
        }
        let mut word = 0u32;
        for &digit in chunk {
            word = (word << 6) | value_of(digit)?;
        }
        word <<= 6 * (4 - chunk.len()) as u32;
        let produced = chunk.len() - 1;
        for i in 0..produced {
            out.push((word >> (16 - 8 * i)) as u8);
        }
    }
    Some(out)
}

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Streaming 64-bit FNV-1a hasher — the checksum of on-disk catalog
/// files. Not cryptographic; it detects corruption, not tampering.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Fnv64 {
        Fnv64(FNV_OFFSET)
    }
}

impl Fnv64 {
    /// A fresh hasher at the FNV-1a offset basis.
    pub fn new() -> Fnv64 {
        Fnv64::default()
    }

    /// Folds `bytes` into the running hash.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// One-shot 64-bit FNV-1a of `bytes`.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hasher = Fnv64::new();
    hasher.update(bytes);
    hasher.finish()
}

/// Reads the little-endian `u64` at `offset`, or `None` past the end.
pub fn read_u64_le(bytes: &[u8], offset: usize) -> Option<u64> {
    let field = bytes.get(offset..offset.checked_add(8)?)?;
    Some(u64::from_le_bytes(field.try_into().expect("8-byte slice")))
}

/// Appends `value` little-endian.
pub fn write_u64_le(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base64_round_trips_every_length_remainder() {
        for len in 0..64usize {
            let bytes: Vec<u8> = (0..len as u8)
                .map(|b| b.wrapping_mul(37).wrapping_add(5))
                .collect();
            let text = base64_encode(&bytes);
            assert!(text.len().is_multiple_of(4));
            assert_eq!(base64_decode(&text), Some(bytes), "length {len}");
        }
    }

    #[test]
    fn base64_matches_known_vectors() {
        // RFC 4648 test vectors.
        assert_eq!(base64_encode(b""), "");
        assert_eq!(base64_encode(b"f"), "Zg==");
        assert_eq!(base64_encode(b"fo"), "Zm8=");
        assert_eq!(base64_encode(b"foo"), "Zm9v");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert_eq!(base64_encode(b"fooba"), "Zm9vYmE=");
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_decode("Zm9vYmFy"), Some(b"foobar".to_vec()));
    }

    #[test]
    fn base64_rejects_corruption() {
        assert_eq!(base64_decode("not base64!"), None, "stray characters");
        assert_eq!(base64_decode("Zm9"), None, "bad length");
        assert_eq!(base64_decode("Zg=="), Some(b"f".to_vec()));
        assert_eq!(base64_decode("Z==="), None, "over-padded");
        assert_eq!(base64_decode("Zg=a"), None, "digit after padding");
        assert_eq!(base64_decode("Zm9vYmFy====="), None, "trailing padding");
        // A flipped digit decodes to *different* bytes, never the same.
        let text = base64_encode(b"payload bytes");
        let mut corrupt = text.clone().into_bytes();
        corrupt[3] = if corrupt[3] == b'A' { b'B' } else { b'A' };
        let corrupt = String::from_utf8(corrupt).unwrap();
        if let Some(decoded) = base64_decode(&corrupt) {
            assert_ne!(decoded, b"payload bytes".to_vec());
        }
    }

    #[test]
    fn fnv_matches_reference_values() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn fnv_streams_identically_to_one_shot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        let mut streamed = Fnv64::new();
        for chunk in data.chunks(17) {
            streamed.update(chunk);
        }
        assert_eq!(streamed.finish(), fnv1a64(&data));
        // Any single flipped byte changes the checksum.
        let mut flipped = data.clone();
        flipped[5000] ^= 0x10;
        assert_ne!(fnv1a64(&flipped), fnv1a64(&data));
    }

    #[test]
    fn u64_le_fields_round_trip() {
        let mut out = Vec::new();
        write_u64_le(&mut out, 0);
        write_u64_le(&mut out, u64::MAX);
        write_u64_le(&mut out, 0x0102_0304_0506_0708);
        assert_eq!(read_u64_le(&out, 0), Some(0));
        assert_eq!(read_u64_le(&out, 8), Some(u64::MAX));
        assert_eq!(read_u64_le(&out, 16), Some(0x0102_0304_0506_0708));
        assert_eq!(read_u64_le(&out, 17), None, "truncated field");
        assert_eq!(read_u64_le(&out, usize::MAX), None, "offset overflow");
    }
}
