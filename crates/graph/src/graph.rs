//! The immutable edge-labeled graph.

use serde::{Deserialize, Serialize};

use crate::csr::Csr;
use crate::ids::{LabelId, VertexId};
use crate::interner::LabelInterner;

/// An immutable directed edge-labeled multigraph `G = (V, L, E)`.
///
/// Storage is one forward and one reverse [`Csr`] per label. All neighbor
/// lists are sorted and duplicate-free. Construct with
/// [`crate::GraphBuilder`] or [`crate::io::read_tsv`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    vertex_count: u32,
    labels: LabelInterner,
    forward: Vec<Csr>,
    reverse: Vec<Csr>,
}

impl Graph {
    /// Assembles a graph from frozen parts. Used by [`crate::GraphBuilder`];
    /// prefer the builder in application code.
    pub fn from_parts(
        vertex_count: u32,
        labels: LabelInterner,
        forward: Vec<Csr>,
        reverse: Vec<Csr>,
    ) -> Graph {
        debug_assert_eq!(forward.len(), reverse.len());
        for csr in forward.iter().chain(reverse.iter()) {
            debug_assert_eq!(csr.row_count(), vertex_count as usize);
        }
        Graph {
            vertex_count,
            labels,
            forward,
            reverse,
        }
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn vertex_count(&self) -> usize {
        self.vertex_count as usize
    }

    /// Number of distinct labels `|L|`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.forward.len()
    }

    /// Total number of edges `|E|` across all labels.
    pub fn edge_count(&self) -> usize {
        self.forward.iter().map(Csr::edge_count).sum()
    }

    /// Number of edges carrying label `l` — the cardinality `f(l)` of the
    /// length-1 label path `l`... *almost*: `f(l)` counts distinct vertex
    /// pairs, and since the per-label relation is duplicate-free they
    /// coincide.
    #[inline]
    pub fn label_frequency(&self, l: LabelId) -> u64 {
        self.forward[l.index()].edge_count() as u64
    }

    /// All label ids, in id order.
    pub fn label_ids(&self) -> impl Iterator<Item = LabelId> + '_ {
        (0..self.forward.len() as u16).map(LabelId)
    }

    /// The label interner (names ⇄ ids).
    pub fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    /// Successors of `v` via label `l`, sorted ascending.
    #[inline]
    pub fn out_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        as_vertex_ids(self.forward[l.index()].neighbors(v.0))
    }

    /// Predecessors of `v` via label `l`, sorted ascending.
    #[inline]
    pub fn in_neighbors(&self, v: VertexId, l: LabelId) -> &[VertexId] {
        as_vertex_ids(self.reverse[l.index()].neighbors(v.0))
    }

    /// Raw `u32` successors — the hot-path variant used by relation
    /// composition in `phe-pathenum`.
    #[inline]
    pub fn out_neighbors_raw(&self, v: u32, l: LabelId) -> &[u32] {
        self.forward[l.index()].neighbors(v)
    }

    /// Raw `u32` predecessors.
    #[inline]
    pub fn in_neighbors_raw(&self, v: u32, l: LabelId) -> &[u32] {
        self.reverse[l.index()].neighbors(v)
    }

    /// The forward CSR of label `l`.
    #[inline]
    pub fn forward_csr(&self, l: LabelId) -> &Csr {
        &self.forward[l.index()]
    }

    /// The reverse CSR of label `l`.
    #[inline]
    pub fn reverse_csr(&self, l: LabelId) -> &Csr {
        &self.reverse[l.index()]
    }

    /// Out-degree of `v` restricted to label `l`.
    #[inline]
    pub fn out_degree(&self, v: VertexId, l: LabelId) -> usize {
        self.forward[l.index()].degree(v.0)
    }

    /// In-degree of `v` restricted to label `l`.
    #[inline]
    pub fn in_degree(&self, v: VertexId, l: LabelId) -> usize {
        self.reverse[l.index()].degree(v.0)
    }

    /// Total out-degree of `v` across all labels.
    pub fn total_out_degree(&self, v: VertexId) -> usize {
        self.forward.iter().map(|csr| csr.degree(v.0)).sum()
    }

    /// Whether edge `(src, l, dst)` exists.
    pub fn has_edge(&self, src: VertexId, l: LabelId, dst: VertexId) -> bool {
        self.forward[l.index()].has_edge(src.0, dst.0)
    }

    /// Iterates every edge as `(src, label, dst)`, grouped by label.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, LabelId, VertexId)> + '_ {
        self.label_ids().flat_map(move |l| {
            self.forward[l.index()]
                .iter_edges()
                .map(move |(s, t)| (s, l, t))
        })
    }

    /// Rebuilds internal lookup indexes after deserialization.
    pub fn rebuild_after_deserialize(&mut self) {
        self.labels.rebuild_index();
    }
}

/// Reinterprets a `&[u32]` as `&[VertexId]`.
///
/// Sound because `VertexId` is `#[repr(transparent)]` over `u32`.
#[inline]
fn as_vertex_ids(raw: &[u32]) -> &[VertexId] {
    // SAFETY: VertexId is repr(transparent) over u32, so layout and
    // alignment are identical and every bit pattern is valid.
    unsafe { std::slice::from_raw_parts(raw.as_ptr().cast::<VertexId>(), raw.len()) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn diamond() -> Graph {
        // 0 -a-> 1 -b-> 3
        // 0 -a-> 2 -b-> 3
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 3);
        b.add_edge_named(2, "b", 3);
        b.build()
    }

    #[test]
    fn counts() {
        let g = diamond();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.label_count(), 2);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.label_frequency(LabelId(0)), 2);
        assert_eq!(g.label_frequency(LabelId(1)), 2);
    }

    #[test]
    fn adjacency_both_directions() {
        let g = diamond();
        let a = g.labels().get("a").unwrap();
        let b = g.labels().get("b").unwrap();
        assert_eq!(g.out_neighbors(VertexId(0), a), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.in_neighbors(VertexId(3), b), &[VertexId(1), VertexId(2)]);
        assert_eq!(g.out_degree(VertexId(0), a), 2);
        assert_eq!(g.in_degree(VertexId(3), b), 2);
        assert_eq!(g.total_out_degree(VertexId(0)), 2);
    }

    #[test]
    fn has_edge_checks_label() {
        let g = diamond();
        let a = g.labels().get("a").unwrap();
        let b = g.labels().get("b").unwrap();
        assert!(g.has_edge(VertexId(0), a, VertexId(1)));
        assert!(!g.has_edge(VertexId(0), b, VertexId(1)));
    }

    #[test]
    fn iter_edges_total() {
        let g = diamond();
        let edges: Vec<(u32, u16, u32)> = g.iter_edges().map(|(s, l, t)| (s.0, l.0, t.0)).collect();
        assert_eq!(edges.len(), 4);
        assert!(edges.contains(&(0, 0, 1)));
        assert!(edges.contains(&(2, 1, 3)));
    }

    #[test]
    fn raw_and_typed_neighbors_agree() {
        let g = diamond();
        let a = g.labels().get("a").unwrap();
        let typed: Vec<u32> = g
            .out_neighbors(VertexId(0), a)
            .iter()
            .map(|v| v.0)
            .collect();
        assert_eq!(typed, g.out_neighbors_raw(0, a));
    }
}
