//! Reading and writing edge lists in tab-separated format.
//!
//! The format is one edge per line, `src <TAB> label <TAB> dst`, where
//! `src`/`dst` are non-negative integers and `label` is an arbitrary
//! tab-free string. Empty lines and lines starting with `#` are skipped.
//! This matches common edge-list exports (KONECT, SNAP) after trivial
//! reshaping, and round-trips through [`write_tsv`] / [`read_tsv`].

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::builder::GraphBuilder;
use crate::error::GraphError;
use crate::graph::Graph;

/// Reads a graph from a TSV edge-list file.
pub fn read_tsv_path(path: impl AsRef<Path>) -> Result<Graph, GraphError> {
    let file = File::open(path)?;
    read_tsv(BufReader::new(file))
}

/// Reads a graph from any buffered reader of TSV edge lines.
pub fn read_tsv(reader: impl Read) -> Result<Graph, GraphError> {
    let reader = BufReader::new(reader);
    let mut builder = GraphBuilder::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let src = parse_vertex(parts.next(), line_no, "source")?;
        let label = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "missing label field".into(),
            })?;
        let dst = parse_vertex(parts.next(), line_no, "target")?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "more than three tab-separated fields".into(),
            });
        }
        builder.add_edge_named(src, label, dst);
    }
    Ok(builder.build())
}

fn parse_vertex(field: Option<&str>, line: usize, what: &str) -> Result<u32, GraphError> {
    let field = field.ok_or_else(|| GraphError::Parse {
        line,
        message: format!("missing {what} field"),
    })?;
    field.parse::<u32>().map_err(|e| GraphError::Parse {
        line,
        message: format!("invalid {what} vertex id {field:?}: {e}"),
    })
}

/// Writes a graph as a TSV edge list to `path`.
pub fn write_tsv_path(graph: &Graph, path: impl AsRef<Path>) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_tsv(graph, BufWriter::new(file))
}

/// Writes a graph as a TSV edge list (one `src\tlabel\tdst` line per edge,
/// grouped by label, sources ascending).
pub fn write_tsv(graph: &Graph, mut writer: impl Write) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# {} vertices, {} edges, {} labels",
        graph.vertex_count(),
        graph.edge_count(),
        graph.label_count()
    )?;
    for (src, label, dst) in graph.iter_edges() {
        let name = graph
            .labels()
            .name(label)
            .expect("edge references uninterned label");
        writeln!(writer, "{}\t{}\t{}", src.0, name, dst.0)?;
    }
    writer.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::{LabelId, VertexId};

    #[test]
    fn read_simple() {
        let input = "0\ta\t1\n1\tb\t2\n";
        let g = read_tsv(input.as_bytes()).unwrap();
        assert_eq!(g.vertex_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.labels().get("a"), Some(LabelId(0)));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let input = "# header\n\n0\ta\t1\n   \n# trailing\n";
        let g = read_tsv(input.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn rejects_missing_fields() {
        let err = read_tsv("0\ta\n".as_bytes()).unwrap_err();
        match err {
            GraphError::Parse { line, message } => {
                assert_eq!(line, 1);
                assert!(message.contains("target"), "{message}");
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn rejects_bad_vertex() {
        let err = read_tsv("x\ta\t1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_extra_fields() {
        let err = read_tsv("0\ta\t1\tjunk\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn rejects_empty_label() {
        let err = read_tsv("0\t\t1\n".as_bytes()).unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn round_trip_preserves_graph() {
        let input = "3\tknows\t1\n0\tlikes\t2\n1\tknows\t3\n0\tknows\t0\n";
        let g = read_tsv(input.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_tsv(&g, &mut out).unwrap();
        let g2 = read_tsv(out.as_slice()).unwrap();
        assert_eq!(g.vertex_count(), g2.vertex_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.label_count(), g2.label_count());
        for (s, l, t) in g.iter_edges() {
            let name = g.labels().name(l).unwrap();
            let l2 = g2.labels().get(name).unwrap();
            assert!(g2.has_edge(s, l2, t), "missing edge {s}-{name}->{t}");
        }
    }

    #[test]
    fn round_trip_via_files() {
        let dir = std::env::temp_dir().join("phe_graph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.tsv");
        let g = read_tsv("0\ta\t1\n1\ta\t0\n".as_bytes()).unwrap();
        write_tsv_path(&g, &path).unwrap();
        let g2 = read_tsv_path(&path).unwrap();
        assert_eq!(g2.edge_count(), 2);
        assert!(g2.has_edge(VertexId(1), LabelId(0), VertexId(0)));
        std::fs::remove_file(&path).ok();
    }
}
