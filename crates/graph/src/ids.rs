//! Typed identifiers for vertices and edge labels.
//!
//! Newtypes keep vertex and label indexes from being mixed up at compile
//! time while compiling down to bare integers. Both types order and hash as
//! their underlying integer, so they can be used directly as sort keys and
//! in hash maps.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a vertex: a dense index in `[0, |V|)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of an edge label: a dense index in `[0, |L|)`.
///
/// `u16` bounds the label alphabet at 65 536 labels, far beyond the 6-8
/// labels of the paper's datasets while keeping label paths compact (a
/// length-8 path packs into 17 bytes, see `phe-core`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct LabelId(pub u16);

impl VertexId {
    /// The vertex index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl LabelId {
    /// The label index as a `usize`, for slice indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u32> for VertexId {
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u16> for LabelId {
    fn from(l: u16) -> Self {
        LabelId(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_orders_by_value() {
        assert!(VertexId(1) < VertexId(2));
        assert_eq!(VertexId(7).index(), 7);
    }

    #[test]
    fn label_id_orders_by_value() {
        assert!(LabelId(0) < LabelId(1));
        assert_eq!(LabelId(3).index(), 3);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(VertexId(42).to_string(), "v42");
        assert_eq!(LabelId(5).to_string(), "l5");
    }

    #[test]
    fn ids_are_word_sized() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<LabelId>(), 2);
    }
}
