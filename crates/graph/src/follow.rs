//! The label-follow matrix: which labels can possibly continue a path.
//!
//! `follows(a, b)` holds when some `a`-edge target has an outgoing
//! `b`-edge. Any path `…/a/b` realized in the graph witnesses exactly
//! that, so the matrix is an **over-approximation** of "a realized path
//! ending in `a` can continue with `b`" — which makes pruning on its
//! complement sound: a label sequence with a non-following adjacent pair
//! has zero occurrences in the graph, for every source and target.
//!
//! Two layers consume it: the delta-counting pipeline in `phe-pathenum`
//! (skipping subtrees that can never reach a dirty label) and the
//! query layer's regular-path-expression expansion in `phe-query`
//! (discarding impossible concrete branches before they are estimated).

use crate::graph::Graph;
use crate::ids::LabelId;

/// A dense `|L| × |L|` boolean matrix of label followability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FollowMatrix {
    label_count: usize,
    bits: Vec<bool>,
}

impl FollowMatrix {
    /// Computes the matrix for one graph.
    pub fn from_graph(graph: &Graph) -> FollowMatrix {
        Self::from_graph_union(graph, graph)
    }

    /// Computes the matrix over the **union** of two graphs' edges (used
    /// by delta counting, where a path realized in either the old or the
    /// new graph must survive pruning). Both graphs must share a label
    /// alphabet.
    ///
    /// # Panics
    /// Panics when the label counts differ.
    pub fn from_graph_union(old: &Graph, new: &Graph) -> FollowMatrix {
        assert_eq!(
            old.label_count(),
            new.label_count(),
            "follow matrix needs a shared label alphabet"
        );
        let label_count = old.label_count();
        let vertex_count = old.vertex_count().max(new.vertex_count());
        let words = vertex_count.div_ceil(64).max(1);

        // target_mask[l]: vertices that are a target of an l-edge.
        // out_mask[l]: vertices with at least one outgoing l-edge.
        let mut target_mask = vec![vec![0u64; words]; label_count];
        let mut out_mask = vec![vec![0u64; words]; label_count];
        for graph in [old, new] {
            for l in graph.label_ids() {
                let csr = graph.forward_csr(l);
                for v in csr.non_empty_rows() {
                    out_mask[l.index()][v as usize / 64] |= 1 << (v % 64);
                    for &t in csr.neighbors(v) {
                        target_mask[l.index()][t as usize / 64] |= 1 << (t % 64);
                    }
                }
            }
        }
        let mut bits = vec![false; label_count * label_count];
        for a in 0..label_count {
            for b in 0..label_count {
                bits[a * label_count + b] = target_mask[a]
                    .iter()
                    .zip(&out_mask[b])
                    .any(|(x, y)| x & y != 0);
            }
        }
        FollowMatrix { label_count, bits }
    }

    /// Builds directly from a bit vector in `a · |L| + b` layout — for
    /// restoring a matrix that traveled without its graph (snapshots,
    /// wire formats).
    ///
    /// # Panics
    /// Panics when `bits.len() != label_count²`.
    pub fn from_bits(label_count: usize, bits: Vec<bool>) -> FollowMatrix {
        assert_eq!(bits.len(), label_count * label_count, "bit matrix shape");
        FollowMatrix { label_count, bits }
    }

    /// Number of labels the matrix covers.
    pub fn label_count(&self) -> usize {
        self.label_count
    }

    /// Whether a `b`-edge can extend a path ending with an `a`-edge.
    #[inline]
    pub fn follows(&self, a: LabelId, b: LabelId) -> bool {
        self.bits[a.index() * self.label_count + b.index()]
    }

    /// Whether every adjacent label pair of `path` follows — a necessary
    /// condition for the path to occur in the graph at all. Singleton and
    /// empty paths trivially pass.
    pub fn allows(&self, path: &[LabelId]) -> bool {
        path.windows(2).all(|w| self.follows(w[0], w[1]))
    }

    /// The raw bit vector in `a · |L| + b` layout.
    pub fn as_bits(&self) -> &[bool] {
        &self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    /// a: 0→1, b: 1→2, c: 3→4 — so a can be followed by b, nothing else.
    fn chain() -> Graph {
        let mut builder = GraphBuilder::new();
        builder.add_edge_named(0, "a", 1);
        builder.add_edge_named(1, "b", 2);
        builder.add_edge_named(3, "c", 4);
        builder.build()
    }

    #[test]
    fn follows_matches_graph_structure() {
        let g = chain();
        let f = FollowMatrix::from_graph(&g);
        let (a, b, c) = (LabelId(0), LabelId(1), LabelId(2));
        assert!(f.follows(a, b));
        assert!(!f.follows(b, a));
        assert!(!f.follows(a, c));
        assert!(!f.follows(c, a));
        assert_eq!(f.label_count(), 3);
    }

    #[test]
    fn allows_checks_every_adjacent_pair() {
        let g = chain();
        let f = FollowMatrix::from_graph(&g);
        let (a, b, c) = (LabelId(0), LabelId(1), LabelId(2));
        assert!(f.allows(&[a, b]));
        assert!(!f.allows(&[a, b, c]));
        assert!(f.allows(&[c]));
        assert!(f.allows(&[]));
    }

    #[test]
    fn union_covers_both_graphs() {
        let g = chain();
        let mut builder = GraphBuilder::new();
        // Same alphabet, but here c (label 2) feeds a (label 0).
        builder.add_edge_named(0, "a", 1);
        builder.add_edge_named(9, "b", 9);
        builder.add_edge_named(5, "c", 0);
        let h = builder.build();
        let f = FollowMatrix::from_graph_union(&g, &h);
        assert!(f.follows(LabelId(0), LabelId(1)), "from g");
        assert!(f.follows(LabelId(2), LabelId(0)), "from h");
        assert!(!f.follows(LabelId(1), LabelId(2)), "in neither");
    }

    #[test]
    fn round_trips_through_bits() {
        let f = FollowMatrix::from_graph(&chain());
        let g = FollowMatrix::from_bits(f.label_count(), f.as_bits().to_vec());
        assert_eq!(f, g);
    }
}
