//! Compressed sparse row adjacency for a single edge label.

use serde::{Deserialize, Serialize};

use crate::ids::VertexId;

/// CSR adjacency: `neighbors(v) = targets[offsets[v] .. offsets[v + 1]]`.
///
/// Neighbor lists are sorted ascending and duplicate-free, which makes merge
/// joins and binary-search membership tests possible without preprocessing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<u32>,
}

impl Csr {
    /// Builds a CSR over `vertex_count` rows from `(src, dst)` pairs.
    ///
    /// Pairs may arrive in any order and may contain duplicates; duplicates
    /// are dropped. The input buffer is consumed (sorted in place).
    pub fn from_pairs(vertex_count: usize, mut pairs: Vec<(u32, u32)>) -> Csr {
        pairs.sort_unstable();
        pairs.dedup();
        let mut offsets = Vec::with_capacity(vertex_count + 1);
        let mut targets = Vec::with_capacity(pairs.len());
        offsets.push(0);
        let mut row = 0usize;
        for (s, t) in pairs {
            let s = s as usize;
            debug_assert!(s < vertex_count, "source {s} out of range");
            while row < s {
                offsets.push(targets.len() as u32);
                row += 1;
            }
            targets.push(t);
        }
        while row < vertex_count {
            offsets.push(targets.len() as u32);
            row += 1;
        }
        debug_assert_eq!(offsets.len(), vertex_count + 1);
        Csr { offsets, targets }
    }

    /// An empty CSR with `vertex_count` rows and no edges.
    pub fn empty(vertex_count: usize) -> Csr {
        Csr {
            offsets: vec![0; vertex_count + 1],
            targets: Vec::new(),
        }
    }

    /// Number of rows (vertices).
    #[inline]
    pub fn row_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total number of stored edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// The sorted, duplicate-free neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u32) -> &[u32] {
        let v = v as usize;
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `v` in this label's relation.
    #[inline]
    pub fn degree(&self, v: u32) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Whether the edge `(src, dst)` is present (binary search).
    pub fn has_edge(&self, src: u32, dst: u32) -> bool {
        self.neighbors(src).binary_search(&dst).is_ok()
    }

    /// Iterates all `(src, dst)` pairs in row-major sorted order.
    pub fn iter_edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.row_count() as u32).flat_map(move |src| {
            self.neighbors(src)
                .iter()
                .map(move |&dst| (VertexId(src), VertexId(dst)))
        })
    }

    /// Rows with at least one neighbor, as vertex ids.
    pub fn non_empty_rows(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.row_count() as u32).filter(move |&v| self.degree(v) > 0)
    }

    /// A copy of this CSR padded (or returned as-is) to `vertex_count`
    /// rows, the tail rows empty — how delta application extends an
    /// untouched label's adjacency when insertions grow the vertex set.
    ///
    /// # Panics
    /// Panics if `vertex_count` is smaller than the current row count
    /// (a CSR never shrinks; rows with edges cannot be dropped).
    pub fn with_rows(&self, vertex_count: usize) -> Csr {
        assert!(
            vertex_count >= self.row_count(),
            "cannot shrink a CSR from {} to {vertex_count} rows",
            self.row_count()
        );
        let mut csr = self.clone();
        csr.offsets
            .resize(vertex_count + 1, self.targets.len() as u32);
        csr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_pairs_sorts_and_dedups() {
        let csr = Csr::from_pairs(4, vec![(2, 1), (0, 3), (0, 1), (0, 3), (2, 0)]);
        assert_eq!(csr.row_count(), 4);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.neighbors(0), &[1, 3]);
        assert_eq!(csr.neighbors(1), &[] as &[u32]);
        assert_eq!(csr.neighbors(2), &[0, 1]);
        assert_eq!(csr.neighbors(3), &[] as &[u32]);
    }

    #[test]
    fn empty_rows_at_the_end() {
        let csr = Csr::from_pairs(5, vec![(1, 1)]);
        assert_eq!(csr.neighbors(4), &[] as &[u32]);
        assert_eq!(csr.degree(1), 1);
        assert_eq!(csr.degree(4), 0);
    }

    #[test]
    fn has_edge_binary_search() {
        let csr = Csr::from_pairs(3, vec![(0, 0), (0, 2), (1, 1)]);
        assert!(csr.has_edge(0, 0));
        assert!(csr.has_edge(0, 2));
        assert!(!csr.has_edge(0, 1));
        assert!(!csr.has_edge(2, 0));
    }

    #[test]
    fn iter_edges_row_major() {
        let csr = Csr::from_pairs(3, vec![(2, 0), (0, 1), (0, 0)]);
        let got: Vec<(u32, u32)> = csr.iter_edges().map(|(s, t)| (s.0, t.0)).collect();
        assert_eq!(got, vec![(0, 0), (0, 1), (2, 0)]);
    }

    #[test]
    fn non_empty_rows_filters() {
        let csr = Csr::from_pairs(4, vec![(1, 0), (3, 3)]);
        let rows: Vec<u32> = csr.non_empty_rows().collect();
        assert_eq!(rows, vec![1, 3]);
    }

    #[test]
    fn empty_constructor() {
        let csr = Csr::empty(3);
        assert_eq!(csr.row_count(), 3);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.neighbors(2), &[] as &[u32]);
    }

    #[test]
    fn zero_vertices() {
        let csr = Csr::from_pairs(0, vec![]);
        assert_eq!(csr.row_count(), 0);
        assert_eq!(csr.edge_count(), 0);
    }
}
