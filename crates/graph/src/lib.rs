#![warn(missing_docs)]

//! # phe-graph — directed edge-labeled graph substrate
//!
//! This crate provides the storage layer used throughout the
//! path-selectivity-estimation workspace: a compact, immutable, directed,
//! edge-labeled multigraph `G = (V, L, E)` with `E ⊆ V × L × V`, exactly the
//! model of the EDBT 2018 paper *"Histogram Domain Ordering for Path
//! Selectivity Estimation"*.
//!
//! Design goals:
//!
//! * **Cache-friendly traversal.** Adjacency is stored as one CSR
//!   (compressed sparse row) structure *per edge label*, in both forward and
//!   reverse direction, with neighbor lists sorted and de-duplicated. Path
//!   evaluation composes relations label-by-label, so per-label CSR puts each
//!   join's working set in one contiguous allocation.
//! * **Cheap identifiers.** Vertices are [`VertexId`] (`u32`) and labels are
//!   [`LabelId`] (`u16`); human-readable label names are kept in a
//!   [`LabelInterner`] on the side.
//! * **No external graph dependencies.** Everything here is written in-tree.
//!
//! ## Quick example
//!
//! ```
//! use phe_graph::{GraphBuilder, VertexId};
//!
//! let mut b = GraphBuilder::new();
//! let knows = b.intern_label("knows");
//! let likes = b.intern_label("likes");
//! b.add_edge(VertexId(0), knows, VertexId(1));
//! b.add_edge(VertexId(1), likes, VertexId(2));
//! let g = b.build();
//!
//! assert_eq!(g.vertex_count(), 3);
//! assert_eq!(g.edge_count(), 2);
//! assert_eq!(g.out_neighbors(VertexId(0), knows), &[VertexId(1)]);
//! ```

pub mod bitset;
pub mod builder;
pub mod csr;
pub mod delta;
pub mod error;
pub mod follow;
pub mod graph;
pub mod ids;
pub mod interner;
pub mod io;
pub mod stats;

pub use bitset::FixedBitSet;
pub use builder::GraphBuilder;
pub use csr::Csr;
pub use delta::GraphDelta;
pub use error::GraphError;
pub use follow::FollowMatrix;
pub use graph::Graph;
pub use ids::{LabelId, VertexId};
pub use interner::LabelInterner;
pub use stats::GraphStats;
