//! Edge-level graph deltas: the unit of incremental maintenance.
//!
//! A [`GraphDelta`] is a batch of edge insertions and removals against a
//! specific [`Graph`]. Applying it ([`Graph::apply_delta`]) produces a new
//! immutable graph, rebuilding only the CSR pairs of the labels the delta
//! touches — the untouched labels' adjacency is reused as-is. The delta is
//! the input the incremental estimator-maintenance pipeline
//! (`phe-pathenum`'s delta counting, `phe-core`'s `apply_delta`) is built
//! around, so its contract is strict by design:
//!
//! * every **removal** must name an edge present in the base graph;
//! * every **insertion** must name an edge absent from the base graph
//!   *after* removals are applied (removing and re-inserting the same
//!   edge is legal and nets out);
//! * labels are resolved against the base graph's alphabet — a delta
//!   **cannot introduce new labels**, because the canonical path encoding
//!   (and with it every sparse catalog entry) is pinned to `|L|`. A
//!   label-set change requires a full rebuild.
//!
//! Violations are reported as [`GraphError::Delta`] instead of silently
//! fixing themselves up, because a forgiving apply would let a delta that
//! was computed against the *wrong* base graph corrupt downstream counts
//! without a trace.
//!
//! The on-disk format mirrors the graph TSV: one change per line,
//! `+<TAB>src<TAB>label<TAB>dst` for insertions and
//! `-<TAB>src<TAB>label<TAB>dst` for removals ([`read_changes`] /
//! [`write_changes`]).

use std::collections::hash_map::Entry;
use std::collections::{HashMap, HashSet};
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::Csr;
use crate::error::GraphError;
use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};

/// One directed labeled edge, as named by a delta.
pub type DeltaEdge = (VertexId, LabelId, VertexId);

/// A batch of edge insertions and removals against a base graph.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    insertions: Vec<DeltaEdge>,
    removals: Vec<DeltaEdge>,
}

impl GraphDelta {
    /// An empty delta.
    pub fn new() -> GraphDelta {
        GraphDelta::default()
    }

    /// Records an edge to insert.
    pub fn insert(&mut self, src: VertexId, label: LabelId, dst: VertexId) {
        self.insertions.push((src, label, dst));
    }

    /// Records an edge to remove.
    pub fn remove(&mut self, src: VertexId, label: LabelId, dst: VertexId) {
        self.removals.push((src, label, dst));
    }

    /// The recorded insertions, in insertion order.
    pub fn insertions(&self) -> &[DeltaEdge] {
        &self.insertions
    }

    /// The recorded removals, in insertion order.
    pub fn removals(&self) -> &[DeltaEdge] {
        &self.removals
    }

    /// Total number of changed edges (insertions + removals).
    pub fn edge_count(&self) -> usize {
        self.insertions.len() + self.removals.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.removals.is_empty()
    }

    /// The labels this delta touches, sorted and duplicate-free.
    pub fn dirty_labels(&self) -> Vec<LabelId> {
        let mut labels: Vec<LabelId> = self
            .insertions
            .iter()
            .chain(&self.removals)
            .map(|&(_, l, _)| l)
            .collect();
        labels.sort_unstable_by_key(|l| l.0);
        labels.dedup();
        labels
    }

    /// Per-label sorted, duplicate-free source vertices of changed edges,
    /// indexed by label id. This is the set the delta path counter tests
    /// relation targets against: a composition `R ∘ E_l` can differ
    /// between the old and new graph only where `targets(R)` meets a
    /// changed `l`-edge source.
    pub fn changed_sources_by_label(&self, label_count: usize) -> Vec<Vec<u32>> {
        let mut sources = vec![Vec::new(); label_count];
        for &(s, l, _) in self.insertions.iter().chain(&self.removals) {
            if let Some(bucket) = sources.get_mut(l.index()) {
                bucket.push(s.0);
            }
        }
        for bucket in &mut sources {
            bucket.sort_unstable();
            bucket.dedup();
        }
        sources
    }

    /// The largest vertex id mentioned by the delta, if any.
    pub fn max_vertex(&self) -> Option<u32> {
        self.insertions
            .iter()
            .chain(&self.removals)
            .flat_map(|&(s, _, t)| [s.0, t.0])
            .max()
    }

    /// Folds a sequence of deltas into the single delta with the same net
    /// effect: applying the result to the base graph produces the same
    /// graph as applying the `batches` one after another (each valid
    /// against the graph the previous one produced).
    ///
    /// This is what turns N queued maintenance batches into **one**
    /// counting pass. Per edge, only the first and last operation in the
    /// combined sequence matter — the contract guarantees operations on
    /// one edge alternate (remove is only legal on a present edge, insert
    /// only on an absent one), so the first op pins the edge's state in
    /// the base graph and the last op pins its final state:
    ///
    /// * first `-`, last `-` → present → absent: net **removal**;
    /// * first `+`, last `+` → absent → present: net **insertion**;
    /// * first `-`, last `+` → present → present: cancels (remove then
    ///   re-insert restores the base edge);
    /// * first `+`, last `-` → absent → absent: cancels (the
    ///   insert-then-remove pair never existed as far as the base graph
    ///   is concerned).
    ///
    /// Edges are emitted in first-touch order, so composition is
    /// deterministic. Composing a sequence that was not sequentially
    /// valid is not detected here — the composed delta simply fails
    /// [`Graph::apply_delta`]'s contract checks the same way the original
    /// sequence would have.
    pub fn compose(batches: &[GraphDelta]) -> GraphDelta {
        // first-touch order of edge keys → (first op, last op).
        let mut order: Vec<(u32, u16, u32)> = Vec::new();
        let mut net: HashMap<(u32, u16, u32), (bool, bool)> = HashMap::new();
        let mut visit = |key: (u32, u16, u32), is_insert: bool| match net.entry(key) {
            Entry::Vacant(slot) => {
                slot.insert((is_insert, is_insert));
                order.push(key);
            }
            Entry::Occupied(mut slot) => slot.get_mut().1 = is_insert,
        };
        for batch in batches {
            // Mirror apply order: removals land before insertions, so a
            // remove-then-reinsert pair within one batch reads `-` first.
            for &(s, l, t) in &batch.removals {
                visit((s.0, l.0, t.0), false);
            }
            for &(s, l, t) in &batch.insertions {
                visit((s.0, l.0, t.0), true);
            }
        }
        let mut composed = GraphDelta::new();
        for key in order {
            let (s, l, t) = (VertexId(key.0), LabelId(key.1), VertexId(key.2));
            match net[&key] {
                (false, false) => composed.remove(s, l, t),
                (true, true) => composed.insert(s, l, t),
                _ => {} // insert-then-remove / remove-then-reinsert cancel
            }
        }
        composed
    }
}

impl Graph {
    /// Applies a delta, producing a new graph. Only the CSR pairs of
    /// labels the delta touches are rebuilt; untouched labels share no
    /// work beyond a row-count extension when insertions grow `|V|`.
    ///
    /// # Errors
    /// [`GraphError::Delta`] when the delta violates its contract: a
    /// removal of an absent edge, an insertion of a present edge, a
    /// duplicate change, or a label id outside this graph's alphabet (a
    /// delta cannot extend the label set — that requires a full rebuild).
    pub fn apply_delta(&self, delta: &GraphDelta) -> Result<Graph, GraphError> {
        let label_count = self.label_count();
        let check_label = |l: LabelId| -> Result<(), GraphError> {
            if l.index() >= label_count {
                return Err(GraphError::Delta {
                    message: format!(
                        "label id {l} outside the graph's alphabet of {label_count} \
                         (a delta cannot introduce labels; full rebuild required)"
                    ),
                });
            }
            Ok(())
        };

        // An edge mentioning a vertex beyond the current set cannot be
        // present (insertions to such vertices are how the graph grows).
        let in_range = |v: VertexId| (v.0 as usize) < self.vertex_count();
        let present = |s: VertexId, l: LabelId, t: VertexId| {
            in_range(s) && in_range(t) && self.has_edge(s, l, t)
        };

        // Validate removals: present and not duplicated.
        let mut removed: HashSet<(u32, u16, u32)> = HashSet::with_capacity(delta.removals.len());
        for &(s, l, t) in &delta.removals {
            check_label(l)?;
            if !present(s, l, t) {
                return Err(GraphError::Delta {
                    message: format!("removal of absent edge {s} -{l}-> {t}"),
                });
            }
            if !removed.insert((s.0, l.0, t.0)) {
                return Err(GraphError::Delta {
                    message: format!("duplicate removal of edge {s} -{l}-> {t}"),
                });
            }
        }
        // Validate insertions: absent after removals and not duplicated.
        let mut inserted: HashSet<(u32, u16, u32)> = HashSet::with_capacity(delta.insertions.len());
        for &(s, l, t) in &delta.insertions {
            check_label(l)?;
            if present(s, l, t) && !removed.contains(&(s.0, l.0, t.0)) {
                return Err(GraphError::Delta {
                    message: format!("insertion of already-present edge {s} -{l}-> {t}"),
                });
            }
            if !inserted.insert((s.0, l.0, t.0)) {
                return Err(GraphError::Delta {
                    message: format!("duplicate insertion of edge {s} -{l}-> {t}"),
                });
            }
        }

        let vertex_count =
            (self.vertex_count() as u32).max(delta.max_vertex().map_or(0, |v| v + 1));
        let mut dirty = vec![false; label_count];
        for l in delta.dirty_labels() {
            dirty[l.index()] = true;
        }

        let mut forward = Vec::with_capacity(label_count);
        let mut reverse = Vec::with_capacity(label_count);
        for l in self.label_ids() {
            if !dirty[l.index()] {
                forward.push(self.forward_csr(l).with_rows(vertex_count as usize));
                reverse.push(self.reverse_csr(l).with_rows(vertex_count as usize));
                continue;
            }
            let mut pairs: Vec<(u32, u32)> = self
                .forward_csr(l)
                .iter_edges()
                .map(|(s, t)| (s.0, t.0))
                .filter(|&(s, t)| !removed.contains(&(s, l.0, t)))
                .collect();
            pairs.extend(
                delta
                    .insertions
                    .iter()
                    .filter(|&&(_, il, _)| il == l)
                    .map(|&(s, _, t)| (s.0, t.0)),
            );
            let rev_pairs: Vec<(u32, u32)> = pairs.iter().map(|&(s, t)| (t, s)).collect();
            forward.push(Csr::from_pairs(vertex_count as usize, pairs));
            reverse.push(Csr::from_pairs(vertex_count as usize, rev_pairs));
        }
        Ok(Graph::from_parts(
            vertex_count,
            self.labels().clone(),
            forward,
            reverse,
        ))
    }
}

/// Reads a changes file against `graph` (whose interner resolves label
/// names). Lines are `+<TAB>src<TAB>label<TAB>dst` or
/// `-<TAB>src<TAB>label<TAB>dst`; blanks and `#` comments are skipped.
///
/// # Errors
/// [`GraphError::Parse`] for malformed lines and for label names absent
/// from the graph's alphabet — a delta cannot introduce labels, because
/// every derived sparse-catalog index is pinned to the current `|L|`.
pub fn read_changes(reader: impl Read, graph: &Graph) -> Result<GraphDelta, GraphError> {
    let reader = BufReader::new(reader);
    let mut delta = GraphDelta::new();
    for (idx, line) in reader.lines().enumerate() {
        let line_no = idx + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('\t');
        let op = parts.next().unwrap_or_default();
        let parse_field = |field: Option<&str>, what: &str| -> Result<u32, GraphError> {
            field
                .ok_or_else(|| GraphError::Parse {
                    line: line_no,
                    message: format!("missing {what} field"),
                })?
                .parse::<u32>()
                .map_err(|e| GraphError::Parse {
                    line: line_no,
                    message: format!("invalid {what} vertex id: {e}"),
                })
        };
        let src = parse_field(parts.next(), "source")?;
        let name = parts
            .next()
            .filter(|s| !s.is_empty())
            .ok_or_else(|| GraphError::Parse {
                line: line_no,
                message: "missing label field".into(),
            })?;
        let dst = parse_field(parts.next(), "target")?;
        if parts.next().is_some() {
            return Err(GraphError::Parse {
                line: line_no,
                message: "more than four tab-separated fields".into(),
            });
        }
        let label = graph.labels().get(name).ok_or_else(|| GraphError::Parse {
            line: line_no,
            message: format!(
                "unknown label {name:?} (a delta cannot introduce labels; \
                 full rebuild required)"
            ),
        })?;
        match op {
            "+" => delta.insert(VertexId(src), label, VertexId(dst)),
            "-" => delta.remove(VertexId(src), label, VertexId(dst)),
            other => {
                return Err(GraphError::Parse {
                    line: line_no,
                    message: format!("change op must be \"+\" or \"-\", got {other:?}"),
                })
            }
        }
    }
    Ok(delta)
}

/// Reads a changes file from `path`. See [`read_changes`].
pub fn read_changes_path(path: impl AsRef<Path>, graph: &Graph) -> Result<GraphDelta, GraphError> {
    let file = File::open(path)?;
    read_changes(BufReader::new(file), graph)
}

/// Writes a delta as a changes file (removals first, matching apply
/// order). Round-trips through [`read_changes`].
pub fn write_changes(
    delta: &GraphDelta,
    graph: &Graph,
    mut writer: impl Write,
) -> Result<(), GraphError> {
    writeln!(
        writer,
        "# {} removals, {} insertions",
        delta.removals().len(),
        delta.insertions().len()
    )?;
    let name = |l: LabelId| {
        graph
            .labels()
            .name(l)
            .expect("delta references uninterned label")
    };
    for &(s, l, t) in delta.removals() {
        writeln!(writer, "-\t{}\t{}\t{}", s.0, name(l), t.0)?;
    }
    for &(s, l, t) in delta.insertions() {
        writeln!(writer, "+\t{}\t{}\t{}", s.0, name(l), t.0)?;
    }
    writer.flush()?;
    Ok(())
}

/// Writes a delta as a changes file at `path`. See [`write_changes`].
pub fn write_changes_path(
    delta: &GraphDelta,
    graph: &Graph,
    path: impl AsRef<Path>,
) -> Result<(), GraphError> {
    let file = File::create(path)?;
    write_changes(delta, graph, BufWriter::new(file))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn l(x: u16) -> LabelId {
        LabelId(x)
    }
    fn v(x: u32) -> VertexId {
        VertexId(x)
    }

    fn base() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 2);
        b.build()
    }

    #[test]
    fn apply_inserts_and_removes() {
        let g = base();
        let mut delta = GraphDelta::new();
        delta.remove(v(0), l(0), v(1));
        delta.insert(v(2), l(1), v(0));
        let g2 = g.apply_delta(&delta).unwrap();
        assert_eq!(g2.edge_count(), 3);
        assert!(!g2.has_edge(v(0), l(0), v(1)));
        assert!(g2.has_edge(v(0), l(0), v(2)), "untouched edge survives");
        assert!(g2.has_edge(v(2), l(1), v(0)));
        // Reverse adjacency is rebuilt consistently.
        assert_eq!(g2.in_neighbors(v(0), l(1)), &[v(2)]);
        // The base graph is untouched.
        assert!(g.has_edge(v(0), l(0), v(1)));
    }

    #[test]
    fn apply_grows_vertex_count() {
        let g = base();
        let mut delta = GraphDelta::new();
        delta.insert(v(1), l(0), v(9));
        let g2 = g.apply_delta(&delta).unwrap();
        assert_eq!(g2.vertex_count(), 10);
        assert!(g2.has_edge(v(1), l(0), v(9)));
        // The untouched label's CSR covers the new rows.
        assert_eq!(g2.out_neighbors(v(9), l(1)), &[] as &[VertexId]);
    }

    #[test]
    fn remove_then_reinsert_is_legal() {
        let g = base();
        let mut delta = GraphDelta::new();
        delta.remove(v(0), l(0), v(1));
        delta.insert(v(0), l(0), v(1));
        let g2 = g.apply_delta(&delta).unwrap();
        assert_eq!(g2.edge_count(), g.edge_count());
        assert!(g2.has_edge(v(0), l(0), v(1)));
    }

    #[test]
    fn contract_violations_are_errors() {
        let g = base();
        let mut removal_of_absent = GraphDelta::new();
        removal_of_absent.remove(v(0), l(1), v(1));
        assert!(matches!(
            g.apply_delta(&removal_of_absent),
            Err(GraphError::Delta { .. })
        ));

        let mut insert_present = GraphDelta::new();
        insert_present.insert(v(0), l(0), v(1));
        assert!(matches!(
            g.apply_delta(&insert_present),
            Err(GraphError::Delta { .. })
        ));

        let mut unknown_label = GraphDelta::new();
        unknown_label.insert(v(0), l(7), v(1));
        let err = g.apply_delta(&unknown_label).unwrap_err();
        assert!(err.to_string().contains("full rebuild"), "{err}");

        let mut duplicate = GraphDelta::new();
        duplicate.insert(v(2), l(0), v(0));
        duplicate.insert(v(2), l(0), v(0));
        assert!(matches!(
            g.apply_delta(&duplicate),
            Err(GraphError::Delta { .. })
        ));
    }

    #[test]
    fn dirty_labels_and_changed_sources() {
        let mut delta = GraphDelta::new();
        delta.insert(v(3), l(1), v(4));
        delta.remove(v(1), l(1), v(2));
        delta.insert(v(0), l(0), v(3));
        assert_eq!(delta.dirty_labels(), vec![l(0), l(1)]);
        let sources = delta.changed_sources_by_label(3);
        assert_eq!(sources[0], vec![0]);
        assert_eq!(sources[1], vec![1, 3]);
        assert!(sources[2].is_empty());
        assert_eq!(delta.edge_count(), 3);
        assert_eq!(delta.max_vertex(), Some(4));
    }

    #[test]
    fn compose_cancels_insert_then_remove() {
        let g = base();
        // Batch 1 inserts a new edge; batch 2 removes it again and also
        // removes a base edge. Net: only the base-edge removal survives.
        let mut b1 = GraphDelta::new();
        b1.insert(v(2), l(1), v(0));
        let mut b2 = GraphDelta::new();
        b2.remove(v(2), l(1), v(0));
        b2.remove(v(1), l(1), v(2));
        let composed = GraphDelta::compose(&[b1.clone(), b2.clone()]);
        let mut expected = GraphDelta::new();
        expected.remove(v(1), l(1), v(2));
        assert_eq!(composed, expected);
        let sequential = g.apply_delta(&b1).unwrap().apply_delta(&b2).unwrap();
        let compacted = g.apply_delta(&composed).unwrap();
        assert_eq!(
            sequential
                .forward_csr(l(1))
                .iter_edges()
                .collect::<Vec<_>>(),
            compacted.forward_csr(l(1)).iter_edges().collect::<Vec<_>>(),
        );
    }

    #[test]
    fn compose_cancels_remove_then_reinsert_across_batches() {
        let g = base();
        let mut b1 = GraphDelta::new();
        b1.remove(v(0), l(0), v(1));
        let mut b2 = GraphDelta::new();
        b2.insert(v(0), l(0), v(1));
        let composed = GraphDelta::compose(&[b1, b2]);
        assert!(composed.is_empty(), "restoring a base edge nets to nothing");
        assert_eq!(g.apply_delta(&composed).unwrap().edge_count(), 3);
    }

    #[test]
    fn compose_keeps_first_and_last_state() {
        // -, +, - over three batches: present → absent. Net removal.
        let mut b1 = GraphDelta::new();
        b1.remove(v(0), l(0), v(1));
        let mut b2 = GraphDelta::new();
        b2.insert(v(0), l(0), v(1));
        let mut b3 = GraphDelta::new();
        b3.remove(v(0), l(0), v(1));
        let composed = GraphDelta::compose(&[b1, b2, b3]);
        let mut expected = GraphDelta::new();
        expected.remove(v(0), l(0), v(1));
        assert_eq!(composed, expected);
        // +, -, + : absent → present. Net insertion.
        let mut c1 = GraphDelta::new();
        c1.insert(v(5), l(1), v(6));
        let mut c2 = GraphDelta::new();
        c2.remove(v(5), l(1), v(6));
        let mut c3 = GraphDelta::new();
        c3.insert(v(5), l(1), v(6));
        let composed = GraphDelta::compose(&[c1, c2, c3]);
        let mut expected = GraphDelta::new();
        expected.insert(v(5), l(1), v(6));
        assert_eq!(composed, expected);
        assert_eq!(GraphDelta::compose(&[]), GraphDelta::new());
    }

    #[test]
    fn changes_round_trip() {
        let g = base();
        let mut delta = GraphDelta::new();
        delta.remove(v(1), l(1), v(2));
        delta.insert(v(2), l(0), v(0));
        let mut out = Vec::new();
        write_changes(&delta, &g, &mut out).unwrap();
        let parsed = read_changes(out.as_slice(), &g).unwrap();
        assert_eq!(parsed, delta);
    }

    #[test]
    fn changes_parse_errors() {
        let g = base();
        for bad in [
            "?\t0\ta\t1\n",       // bad op
            "+\t0\ta\n",          // missing target
            "+\t0\tnope\t1\n",    // unknown label
            "+\tx\ta\t1\n",       // bad vertex
            "+\t0\ta\t1\tjunk\n", // extra field
            "+\t0\t\t1\n",        // empty label
        ] {
            let err = read_changes(bad.as_bytes(), &g).unwrap_err();
            assert!(matches!(err, GraphError::Parse { line: 1, .. }), "{bad:?}");
        }
        // Comments and blanks are fine.
        let delta = read_changes("# nothing\n\n".as_bytes(), &g).unwrap();
        assert!(delta.is_empty());
    }
}
