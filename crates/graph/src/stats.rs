//! Descriptive statistics over a graph.
//!
//! [`GraphStats`] produces the paper's Table 3 row (#labels, #vertices,
//! #edges) plus the structural properties the evaluation discussion leans
//! on: per-label cardinalities (the input to *cardinality ranking*), degree
//! distributions, and the label co-occurrence matrix whose skew is what the
//! paper calls "edge-label cardinality correlations" in real data.

use serde::{Deserialize, Serialize};

use crate::graph::Graph;
use crate::ids::LabelId;

/// Summary statistics for a [`Graph`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GraphStats {
    /// Number of distinct edge labels, `|L|`.
    pub label_count: usize,
    /// Number of vertices, `|V|`.
    pub vertex_count: usize,
    /// Number of edges, `|E|`.
    pub edge_count: usize,
    /// `f(l)` for each label, indexed by label id.
    pub label_frequencies: Vec<u64>,
    /// Maximum total out-degree over all vertices.
    pub max_out_degree: usize,
    /// Mean total out-degree.
    pub mean_out_degree: f64,
    /// Number of vertices with no outgoing edges.
    pub sink_count: usize,
    /// `cooccurrence[l1][l2]` = number of label walks `u -l1-> v -l2-> w`
    /// (2-paths counted with multiplicity over the middle vertex).
    pub cooccurrence: Vec<Vec<u64>>,
}

impl GraphStats {
    /// Computes all statistics in a single pass over the adjacency.
    pub fn compute(graph: &Graph) -> GraphStats {
        let n = graph.vertex_count();
        let l = graph.label_count();
        let label_frequencies: Vec<u64> = graph
            .label_ids()
            .map(|id| graph.label_frequency(id))
            .collect();

        let mut max_out = 0usize;
        let mut total_out = 0usize;
        let mut sinks = 0usize;
        // Walk counts for l1/l2 two-paths: sum over middle vertices v of
        // in_degree_{l1}(v) * out_degree_{l2}(v).
        let mut cooccurrence = vec![vec![0u64; l]; l];
        for v in 0..n as u32 {
            let vid = crate::ids::VertexId(v);
            let out: usize = graph.total_out_degree(vid);
            max_out = max_out.max(out);
            total_out += out;
            if out == 0 {
                sinks += 1;
            }
            for l1 in 0..l as u16 {
                let ind = graph.in_degree(vid, LabelId(l1)) as u64;
                if ind == 0 {
                    continue;
                }
                for l2 in 0..l as u16 {
                    let outd = graph.out_degree(vid, LabelId(l2)) as u64;
                    cooccurrence[l1 as usize][l2 as usize] += ind * outd;
                }
            }
        }

        GraphStats {
            label_count: l,
            vertex_count: n,
            edge_count: graph.edge_count(),
            label_frequencies,
            max_out_degree: max_out,
            mean_out_degree: if n == 0 {
                0.0
            } else {
                total_out as f64 / n as f64
            },
            sink_count: sinks,
            cooccurrence,
        }
    }

    /// Labels sorted by ascending frequency — the *cardinality ranking*
    /// order of the paper (lower cardinality first). Ties break by label id
    /// so the ranking is a total order.
    pub fn labels_by_ascending_frequency(&self) -> Vec<LabelId> {
        let mut ids: Vec<LabelId> = (0..self.label_count as u16).map(LabelId).collect();
        ids.sort_by_key(|id| (self.label_frequencies[id.index()], id.0));
        ids
    }

    /// Independence score of consecutive edge labels, in `[0, 1]`.
    ///
    /// Compares the observed 2-path walk counts against the counts
    /// expected if labels combined proportionally to their frequencies:
    /// `1 − Σ|obs − exp| / 2·Σobs` (one minus the total-variation
    /// distance between the two normalized matrices). 1 ⇒ labels chain
    /// independently (ER-like); values near 0 ⇒ strongly correlated
    /// labels (the "real data" property the paper invokes to explain
    /// Figure 2).
    pub fn label_independence_correlation(&self) -> f64 {
        let l = self.label_count;
        if l == 0 || self.edge_count == 0 {
            return 1.0;
        }
        let total_walks: u64 = self.cooccurrence.iter().flatten().sum();
        if total_walks == 0 {
            return 1.0;
        }
        let total_edges: u64 = self.label_frequencies.iter().sum();
        let mut deviation = 0.0f64;
        for l1 in 0..l {
            for l2 in 0..l {
                let observed = self.cooccurrence[l1][l2] as f64;
                let p = (self.label_frequencies[l1] as f64 / total_edges as f64)
                    * (self.label_frequencies[l2] as f64 / total_edges as f64);
                let expected = p * total_walks as f64;
                deviation += (observed - expected).abs();
            }
        }
        (1.0 - deviation / (2.0 * total_walks as f64)).max(0.0)
    }

    /// One text row in the style of the paper's Table 3.
    pub fn table3_row(&self, name: &str) -> String {
        format!(
            "{name}\t{}\t{}\t{}",
            self.label_count, self.vertex_count, self.edge_count
        )
    }
}

/// Pearson correlation coefficient of two equally long samples.
/// Returns 0.0 when either sample has zero variance.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (&x, &y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> Graph {
        // 0 -a-> 1 -b-> 2, 0 -a-> 2, 3 isolated-ish (only incoming).
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        b.add_edge_named(1, "b", 2);
        b.add_edge_named(1, "b", 3);
        b.add_edge_named(2, "b", 3);
        b.build()
    }

    #[test]
    fn table3_fields() {
        let s = GraphStats::compute(&sample());
        assert_eq!(s.label_count, 2);
        assert_eq!(s.vertex_count, 4);
        assert_eq!(s.edge_count, 5);
        assert_eq!(s.label_frequencies, vec![2, 3]);
        let row = s.table3_row("sample");
        assert_eq!(row, "sample\t2\t4\t5");
    }

    #[test]
    fn degrees() {
        let s = GraphStats::compute(&sample());
        assert_eq!(s.max_out_degree, 2);
        assert_eq!(s.sink_count, 1); // vertex 3
        assert!((s.mean_out_degree - 5.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn cooccurrence_counts_two_paths() {
        let s = GraphStats::compute(&sample());
        // a/b walks: via v=1: in_a(1)=1 * out_b(1)=2 -> 2; via v=2: 1*1 -> 1.
        assert_eq!(s.cooccurrence[0][1], 3);
        // b/b walks: via v=2: in_b(2)=1 * out_b(2)=1 -> 1; via 3: out 0.
        assert_eq!(s.cooccurrence[1][1], 1);
        // a/a walks: via 1: in 1 * out_a(1)=0 -> 0; via 2: 0.
        assert_eq!(s.cooccurrence[0][0], 0);
    }

    #[test]
    fn cardinality_order_ascending_with_tiebreak() {
        let s = GraphStats::compute(&sample());
        assert_eq!(
            s.labels_by_ascending_frequency(),
            vec![LabelId(0), LabelId(1)]
        );
    }

    #[test]
    fn pearson_basic() {
        assert!((pearson(&[1.0, 2.0, 3.0], &[2.0, 4.0, 6.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&[1.0, 1.0], &[1.0, 2.0]), 0.0);
    }

    #[test]
    fn independence_correlation_in_range() {
        let s = GraphStats::compute(&sample());
        let c = s.label_independence_correlation();
        assert!((0.0..=1.0).contains(&c), "score {c} out of range");
    }

    #[test]
    fn independence_score_high_for_uniform_random() {
        // A complete bipartite-ish construction where every label chains
        // into every label proportionally: near-independent.
        let mut b = GraphBuilder::new();
        for v in 0..20u32 {
            b.add_edge_named(v, "a", (v + 1) % 20);
            b.add_edge_named(v, "b", (v + 3) % 20);
        }
        let s = GraphStats::compute(&b.build());
        assert!(
            s.label_independence_correlation() > 0.9,
            "{}",
            s.label_independence_correlation()
        );
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.vertex_count, 0);
        assert_eq!(s.edge_count, 0);
        assert_eq!(s.mean_out_degree, 0.0);
        assert_eq!(s.label_independence_correlation(), 1.0);
    }
}
