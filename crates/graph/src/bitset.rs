//! A fixed-capacity bitset with amortized O(touched) reset.
//!
//! Relation composition (`phe-pathenum`) de-duplicates join outputs with a
//! scratch bitset per source vertex. Those outputs are usually much smaller
//! than `|V|`, so zeroing the whole backing array between sources would
//! dominate. [`FixedBitSet`] tracks which words were touched and clears only
//! those, switching to a bulk `fill(0)` when the touched set grows past half
//! of the backing array (at that point the bulk clear is cheaper and the
//! touched list has stopped paying for itself).

/// A fixed-capacity set of `u32` values backed by a bit array.
#[derive(Debug, Clone)]
pub struct FixedBitSet {
    words: Vec<u64>,
    /// Indexes of words that may be non-zero. May contain duplicates; a word
    /// is pushed at most twice between clears thanks to the `was_zero` check.
    touched: Vec<u32>,
    len: usize,
}

impl FixedBitSet {
    /// Creates a set able to hold values in `[0, capacity)`.
    pub fn new(capacity: usize) -> Self {
        FixedBitSet {
            words: vec![0; capacity.div_ceil(64)],
            touched: Vec::new(),
            len: 0,
        }
    }

    /// Number of values currently in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Capacity in values (a multiple of 64, ≥ the requested capacity).
    #[inline]
    pub fn capacity(&self) -> usize {
        self.words.len() * 64
    }

    /// Inserts `value`; returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics in debug builds if `value` exceeds the capacity.
    #[inline]
    pub fn insert(&mut self, value: u32) -> bool {
        let w = (value / 64) as usize;
        let bit = 1u64 << (value % 64);
        debug_assert!(w < self.words.len(), "bitset value {value} out of range");
        let word = &mut self.words[w];
        if *word & bit != 0 {
            return false;
        }
        if *word == 0 {
            self.touched.push(w as u32);
        }
        *word |= bit;
        self.len += 1;
        true
    }

    /// Whether `value` is in the set.
    #[inline]
    pub fn contains(&self, value: u32) -> bool {
        let w = (value / 64) as usize;
        self.words
            .get(w)
            .is_some_and(|word| word & (1u64 << (value % 64)) != 0)
    }

    /// Removes all values. Cost is proportional to the number of distinct
    /// words touched since the last clear, or `O(capacity/64)` if more than
    /// half the words were touched.
    pub fn clear(&mut self) {
        if self.touched.len() * 2 >= self.words.len() {
            self.words.fill(0);
        } else {
            for &w in &self.touched {
                self.words[w as usize] = 0;
            }
        }
        self.touched.clear();
        self.len = 0;
    }

    /// Iterates the values in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let base = (wi * 64) as u32;
            BitIter { word, base }
        })
    }

    /// Drains the set into `out` in ascending order, then clears it.
    ///
    /// This is the hot path of relation composition: collect the
    /// de-duplicated targets of one source, reset, move to the next source.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<u32>) {
        out.reserve(self.len);
        // Sorting the touched list lets us emit in ascending order while
        // visiting only non-zero words.
        self.touched.sort_unstable();
        self.touched.dedup();
        for &wi in &self.touched {
            let base = wi * 64;
            let mut word = self.words[wi as usize];
            while word != 0 {
                let tz = word.trailing_zeros();
                out.push(base + tz);
                word &= word - 1;
            }
            self.words[wi as usize] = 0;
        }
        self.touched.clear();
        self.len = 0;
    }
}

struct BitIter {
    word: u64,
    base: u32,
}

impl Iterator for BitIter {
    type Item = u32;

    #[inline]
    fn next(&mut self) -> Option<u32> {
        if self.word == 0 {
            return None;
        }
        let tz = self.word.trailing_zeros();
        self.word &= self.word - 1;
        Some(self.base + tz)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = FixedBitSet::new(200);
        assert!(s.insert(0));
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(199));
        assert!(!s.insert(63), "duplicate insert must report false");
        assert_eq!(s.len(), 4);
        assert!(s.contains(0));
        assert!(s.contains(199));
        assert!(!s.contains(100));
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = FixedBitSet::new(1000);
        for v in (0..1000).step_by(7) {
            s.insert(v);
        }
        s.clear();
        assert!(s.is_empty());
        for v in 0..1000 {
            assert!(!s.contains(v));
        }
        // Reusable after clear.
        assert!(s.insert(3));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn clear_bulk_path() {
        // Touch more than half of the words to exercise the fill(0) branch.
        let mut s = FixedBitSet::new(64 * 10);
        for w in 0..8 {
            s.insert(w * 64);
        }
        s.clear();
        assert!(s.is_empty());
        for w in 0..10 {
            assert!(!s.contains(w * 64));
        }
    }

    #[test]
    fn iter_is_sorted_and_complete() {
        let mut s = FixedBitSet::new(300);
        let values = [5u32, 1, 299, 64, 63, 128, 2];
        for &v in &values {
            s.insert(v);
        }
        let got: Vec<u32> = s.iter().collect();
        let mut want = values.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn drain_sorted_into_collects_and_clears() {
        let mut s = FixedBitSet::new(500);
        let values = [400u32, 3, 64, 65, 2, 499];
        for &v in &values {
            s.insert(v);
        }
        let mut out = Vec::new();
        s.drain_sorted_into(&mut out);
        let mut want = values.to_vec();
        want.sort_unstable();
        assert_eq!(out, want);
        assert!(s.is_empty());
        assert!(!s.contains(400));
        // Second drain on the cleared set yields nothing.
        let mut out2 = Vec::new();
        s.drain_sorted_into(&mut out2);
        assert!(out2.is_empty());
    }

    #[test]
    fn capacity_rounds_up_to_word() {
        let s = FixedBitSet::new(65);
        assert_eq!(s.capacity(), 128);
        let s = FixedBitSet::new(0);
        assert_eq!(s.capacity(), 0);
    }

    #[test]
    fn many_inserts_same_word_touch_once() {
        let mut s = FixedBitSet::new(64);
        for v in 0..64 {
            s.insert(v);
        }
        assert_eq!(s.len(), 64);
        let got: Vec<u32> = s.iter().collect();
        assert_eq!(got, (0..64).collect::<Vec<_>>());
    }
}
