//! Error type for graph construction and I/O.

use std::fmt;
use std::io;

/// Errors produced while building, loading, or saving graphs.
#[derive(Debug)]
pub enum GraphError {
    /// An underlying I/O failure while reading or writing an edge list.
    Io(io::Error),
    /// A malformed line in a TSV edge list. Carries the 1-based line number
    /// and a description of what failed to parse.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
    /// A vertex id that exceeds the declared vertex count.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: u32,
        /// The declared number of vertices.
        vertex_count: u32,
    },
    /// The label alphabet exceeded the `u16` capacity of [`crate::LabelId`].
    TooManyLabels,
    /// A [`crate::GraphDelta`] violated its contract against the base
    /// graph (absent removal, present insertion, duplicate change, or a
    /// label outside the alphabet).
    Delta {
        /// Human-readable description of the violation.
        message: String,
    },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::VertexOutOfRange {
                vertex,
                vertex_count,
            } => write!(
                f,
                "vertex id {vertex} out of range (graph declares {vertex_count} vertices)"
            ),
            GraphError::TooManyLabels => {
                write!(
                    f,
                    "label alphabet exceeds the 65536-label capacity of LabelId"
                )
            }
            GraphError::Delta { message } => write!(f, "invalid graph delta: {message}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for GraphError {
    fn from(e: io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_line_number() {
        let e = GraphError::Parse {
            line: 17,
            message: "bad vertex".into(),
        };
        let s = e.to_string();
        assert!(s.contains("17"), "{s}");
        assert!(s.contains("bad vertex"), "{s}");
    }

    #[test]
    fn io_error_converts() {
        let e: GraphError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, GraphError::Io(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn out_of_range_display() {
        let e = GraphError::VertexOutOfRange {
            vertex: 10,
            vertex_count: 5,
        };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains("5"));
    }
}
