//! Bidirectional label-name interning.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::error::GraphError;
use crate::ids::LabelId;

/// Maps label names to dense [`LabelId`]s and back.
///
/// Ids are handed out in first-seen order, so loading the same edge list
/// always produces the same id assignment. The *alphabetical* ranking used
/// by the ordering framework sorts by name separately — the interner itself
/// makes no ordering promises beyond stability.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LabelInterner {
    names: Vec<String>,
    #[serde(skip)]
    by_name: HashMap<String, LabelId>,
}

impl LabelInterner {
    /// An empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its existing or freshly assigned id.
    ///
    /// # Errors
    /// Returns [`GraphError::TooManyLabels`] if the `u16` id space would
    /// overflow.
    pub fn intern(&mut self, name: &str) -> Result<LabelId, GraphError> {
        if let Some(&id) = self.by_name.get(name) {
            return Ok(id);
        }
        if self.names.len() > u16::MAX as usize {
            return Err(GraphError::TooManyLabels);
        }
        let id = LabelId(self.names.len() as u16);
        self.names.push(name.to_owned());
        self.by_name.insert(name.to_owned(), id);
        Ok(id)
    }

    /// Looks up an already-interned name.
    pub fn get(&self, name: &str) -> Option<LabelId> {
        self.by_name.get(name).copied()
    }

    /// The name of `id`, if assigned.
    pub fn name(&self, id: LabelId) -> Option<&str> {
        self.names.get(id.index()).map(String::as_str)
    }

    /// Number of interned labels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no labels are interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (LabelId(i as u16), n.as_str()))
    }

    /// Label ids sorted by name — the *alphabetical* total order of the
    /// ordering framework.
    pub fn ids_sorted_by_name(&self) -> Vec<LabelId> {
        let mut ids: Vec<LabelId> = (0..self.names.len() as u16).map(LabelId).collect();
        ids.sort_by(|a, b| self.names[a.index()].cmp(&self.names[b.index()]));
        ids
    }

    /// Rebuilds the name→id map. Needed after deserialization because the
    /// map is skipped by serde (it is derivable from `names`).
    pub fn rebuild_index(&mut self) {
        self.by_name = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), LabelId(i as u16)))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = LabelInterner::new();
        let a = i.intern("knows").unwrap();
        let b = i.intern("likes").unwrap();
        assert_ne!(a, b);
        assert_eq!(i.intern("knows").unwrap(), a);
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn ids_in_first_seen_order() {
        let mut i = LabelInterner::new();
        assert_eq!(i.intern("c").unwrap(), LabelId(0));
        assert_eq!(i.intern("a").unwrap(), LabelId(1));
        assert_eq!(i.intern("b").unwrap(), LabelId(2));
        assert_eq!(i.name(LabelId(1)), Some("a"));
        assert_eq!(i.get("b"), Some(LabelId(2)));
        assert_eq!(i.get("zzz"), None);
    }

    #[test]
    fn sorted_by_name_is_alphabetical() {
        let mut i = LabelInterner::new();
        i.intern("c").unwrap();
        i.intern("a").unwrap();
        i.intern("b").unwrap();
        let sorted = i.ids_sorted_by_name();
        let names: Vec<&str> = sorted.iter().map(|&id| i.name(id).unwrap()).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn iter_pairs() {
        let mut i = LabelInterner::new();
        i.intern("x").unwrap();
        i.intern("y").unwrap();
        let pairs: Vec<(u16, &str)> = i.iter().map(|(id, n)| (id.0, n)).collect();
        assert_eq!(pairs, vec![(0, "x"), (1, "y")]);
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut i = LabelInterner::new();
        i.intern("m").unwrap();
        i.intern("n").unwrap();
        let mut copy = LabelInterner {
            names: i.names.clone(),
            by_name: HashMap::new(),
        };
        assert_eq!(copy.get("m"), None, "index empty before rebuild");
        copy.rebuild_index();
        assert_eq!(copy.get("m"), Some(LabelId(0)));
        assert_eq!(copy.get("n"), Some(LabelId(1)));
    }
}
