//! Mutable accumulation of edges, frozen into an immutable [`Graph`].

use crate::csr::Csr;
use crate::graph::Graph;
use crate::ids::{LabelId, VertexId};
use crate::interner::LabelInterner;

/// Accumulates `(src, label, dst)` triples and freezes them into a [`Graph`].
///
/// The builder is forgiving: vertices are created implicitly (the vertex
/// count is `max id + 1` unless raised with [`GraphBuilder::ensure_vertices`]),
/// duplicate edges are dropped at `build()` time, and labels can be referred
/// to by name or by pre-interned id.
#[derive(Debug, Default)]
pub struct GraphBuilder {
    interner: LabelInterner,
    /// Per-label pair lists; index = label id.
    edges: Vec<Vec<(u32, u32)>>,
    vertex_count: u32,
}

impl GraphBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// A builder pre-sized for `vertices` vertices and `labels` labels named
    /// `"0", "1", …` — the anonymous-label convention used by the synthetic
    /// generators and by the paper's figures.
    pub fn with_numeric_labels(vertices: u32, labels: u16) -> Self {
        let mut b = GraphBuilder::new();
        b.ensure_vertices(vertices);
        for l in 0..labels {
            b.intern_label(&l.to_string());
        }
        b
    }

    /// Interns a label name, returning its id.
    ///
    /// # Panics
    /// Panics if the label alphabet overflows `u16` (65 536 labels). Use the
    /// interner directly via [`Graph::labels`] if you need fallible interning.
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        let id = self
            .interner
            .intern(name)
            .expect("label alphabet exceeds u16 capacity");
        while self.edges.len() <= id.index() {
            self.edges.push(Vec::new());
        }
        id
    }

    /// Raises the declared vertex count to at least `n`.
    pub fn ensure_vertices(&mut self, n: u32) {
        self.vertex_count = self.vertex_count.max(n);
    }

    /// Adds a directed edge `src --label--> dst`.
    pub fn add_edge(&mut self, src: VertexId, label: LabelId, dst: VertexId) {
        while self.edges.len() <= label.index() {
            self.edges.push(Vec::new());
        }
        self.edges[label.index()].push((src.0, dst.0));
        self.vertex_count = self.vertex_count.max(src.0 + 1).max(dst.0 + 1);
    }

    /// Adds a directed edge, interning the label name on the fly.
    pub fn add_edge_named(&mut self, src: u32, label: &str, dst: u32) {
        let l = self.intern_label(label);
        self.add_edge(VertexId(src), l, VertexId(dst));
    }

    /// Number of edges added so far (before de-duplication).
    pub fn pending_edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// Number of labels interned so far.
    pub fn label_count(&self) -> usize {
        self.interner.len()
    }

    /// Access to the interner (e.g. to look up ids while generating).
    pub fn interner(&self) -> &LabelInterner {
        &self.interner
    }

    /// Freezes into an immutable [`Graph`]: builds forward and reverse CSR
    /// per label, sorting and de-duplicating edges.
    pub fn build(self) -> Graph {
        let n = self.vertex_count as usize;
        let mut forward = Vec::with_capacity(self.edges.len());
        let mut reverse = Vec::with_capacity(self.edges.len());
        for pairs in self.edges {
            let rev_pairs: Vec<(u32, u32)> = pairs.iter().map(|&(s, t)| (t, s)).collect();
            forward.push(Csr::from_pairs(n, pairs));
            reverse.push(Csr::from_pairs(n, rev_pairs));
        }
        Graph::from_parts(self.vertex_count, self.interner, forward, reverse)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn implicit_vertex_count() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 9);
        let g = b.build();
        assert_eq!(g.vertex_count(), 10);
    }

    #[test]
    fn ensure_vertices_allows_isolated_tail() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.ensure_vertices(100);
        let g = b.build();
        assert_eq!(g.vertex_count(), 100);
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn duplicate_edges_dropped_at_build() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "a", 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn parallel_edges_with_distinct_labels_kept() {
        let mut b = GraphBuilder::new();
        b.add_edge_named(0, "a", 1);
        b.add_edge_named(0, "b", 1);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.label_count(), 2);
    }

    #[test]
    fn numeric_labels_convention() {
        let b = GraphBuilder::with_numeric_labels(5, 3);
        assert_eq!(b.label_count(), 3);
        assert_eq!(b.interner().get("0"), Some(LabelId(0)));
        assert_eq!(b.interner().get("2"), Some(LabelId(2)));
        let g = b.build();
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.label_count(), 3);
    }

    #[test]
    fn reverse_adjacency_mirrors_forward() {
        let mut b = GraphBuilder::new();
        let a = b.intern_label("a");
        b.add_edge(VertexId(0), a, VertexId(2));
        b.add_edge(VertexId(1), a, VertexId(2));
        let g = b.build();
        assert_eq!(g.in_neighbors(VertexId(2), a), &[VertexId(0), VertexId(1)]);
        assert_eq!(g.out_neighbors(VertexId(2), a), &[] as &[VertexId]);
    }
}
