//! Property tests for the graph substrate: CSR invariants, builder
//! determinism, bitset behaviour against a reference set, TSV round-trips,
//! and delta-composition equivalence.

use std::collections::{BTreeSet, HashSet};

use phe_graph::{Csr, FixedBitSet, GraphBuilder, GraphDelta, LabelId, VertexId};
use proptest::prelude::*;

/// Strategy: an arbitrary edge list over small id spaces.
fn edges_strategy() -> impl Strategy<Value = Vec<(u32, u16, u32)>> {
    prop::collection::vec((0u32..40, 0u16..5, 0u32..40), 0..200)
}

proptest! {
    #[test]
    fn csr_neighbors_sorted_and_deduped(pairs in prop::collection::vec((0u32..30, 0u32..30), 0..150)) {
        let csr = Csr::from_pairs(30, pairs.clone());
        let unique: HashSet<(u32, u32)> = pairs.into_iter().collect();
        prop_assert_eq!(csr.edge_count(), unique.len());
        for v in 0..30u32 {
            let ns = csr.neighbors(v);
            prop_assert!(ns.windows(2).all(|w| w[0] < w[1]), "row {} not strictly sorted", v);
            for &t in ns {
                prop_assert!(unique.contains(&(v, t)));
            }
        }
        // Every input pair is findable.
        for (s, t) in unique {
            prop_assert!(csr.has_edge(s, t));
        }
    }

    #[test]
    fn graph_forward_reverse_are_inverses(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for l in 0..5u16 {
            b.intern_label(&format!("L{l}"));
        }
        for &(s, l, t) in &edges {
            b.add_edge(VertexId(s), LabelId(l), VertexId(t));
        }
        b.ensure_vertices(40);
        let g = b.build();
        for l in 0..5u16 {
            let l = LabelId(l);
            for v in 0..40u32 {
                for &t in g.out_neighbors_raw(v, l) {
                    prop_assert!(g.in_neighbors_raw(t, l).binary_search(&v).is_ok(),
                        "forward edge ({v},{l:?},{t}) missing from reverse");
                }
                for &s in g.in_neighbors_raw(v, l) {
                    prop_assert!(g.out_neighbors_raw(s, l).binary_search(&v).is_ok(),
                        "reverse edge ({s},{l:?},{v}) missing from forward");
                }
            }
        }
    }

    #[test]
    fn edge_count_equals_distinct_triples(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for l in 0..5u16 {
            b.intern_label(&format!("L{l}"));
        }
        for &(s, l, t) in &edges {
            b.add_edge(VertexId(s), LabelId(l), VertexId(t));
        }
        let g = b.build();
        let distinct: HashSet<(u32, u16, u32)> = edges.into_iter().collect();
        prop_assert_eq!(g.edge_count(), distinct.len());
        let freq_sum: u64 = g.label_ids().map(|l| g.label_frequency(l)).sum();
        prop_assert_eq!(freq_sum as usize, g.edge_count());
    }

    #[test]
    fn bitset_matches_btreeset(values in prop::collection::vec(0u32..500, 0..300)) {
        let mut bs = FixedBitSet::new(500);
        let mut reference = BTreeSet::new();
        for &v in &values {
            let newly_bs = bs.insert(v);
            let newly_ref = reference.insert(v);
            prop_assert_eq!(newly_bs, newly_ref);
        }
        prop_assert_eq!(bs.len(), reference.len());
        let got: Vec<u32> = bs.iter().collect();
        let want: Vec<u32> = reference.iter().copied().collect();
        prop_assert_eq!(&got, &want);
        let mut drained = Vec::new();
        bs.drain_sorted_into(&mut drained);
        prop_assert_eq!(&drained, &want);
        prop_assert!(bs.is_empty());
    }

    #[test]
    fn tsv_round_trip(edges in edges_strategy()) {
        let mut b = GraphBuilder::new();
        for l in 0..5u16 {
            b.intern_label(&format!("L{l}"));
        }
        for &(s, l, t) in &edges {
            b.add_edge(VertexId(s), LabelId(l), VertexId(t));
        }
        let g = b.build();
        let mut buf = Vec::new();
        phe_graph::io::write_tsv(&g, &mut buf).unwrap();
        let g2 = phe_graph::io::read_tsv(buf.as_slice()).unwrap();
        prop_assert_eq!(g.edge_count(), g2.edge_count());
        for (s, l, t) in g.iter_edges() {
            let name = g.labels().name(l).unwrap();
            if let Some(l2) = g2.labels().get(name) {
                prop_assert!(g2.has_edge(s, l2, t));
            } else {
                prop_assert!(false, "label {} lost in round trip", name);
            }
        }
    }
}

// Compacting a queue of sequentially-valid batches into one delta
// (`GraphDelta::compose`) must reach exactly the graph the batches reach
// one at a time — across random churn, cross-batch insert-then-remove
// cancellation, and growth onto new vertices.
proptest! {
    #[test]
    fn composed_delta_equals_sequential_application(
        edges in edges_strategy(),
        proposals in prop::collection::vec(
            // Vertex ids run past the base graph's 40 so batches grow |V|.
            prop::collection::vec((0u32..48, 0u16..5, 0u32..48), 0..40),
            1..8,
        ),
    ) {
        let mut b = GraphBuilder::new();
        for l in 0..5u16 {
            b.intern_label(&format!("L{l}"));
        }
        for &(s, l, t) in &edges {
            b.add_edge(VertexId(s), LabelId(l), VertexId(t));
        }
        b.ensure_vertices(40);
        let base = b.build();

        // Turn raw proposals into sequentially-valid batches: an edge
        // present in the evolving graph becomes a removal, an absent one
        // an insertion. Triples recur across batches, so compositions
        // routinely contain insert-then-remove and remove-then-reinsert
        // pairs that must cancel.
        let mut current: HashSet<(u32, u16, u32)> = base
            .iter_edges()
            .map(|(s, l, t)| (s.0, l.0, t.0))
            .collect();
        let mut batches: Vec<GraphDelta> = Vec::new();
        for batch_proposals in &proposals {
            let mut batch = GraphDelta::new();
            let mut touched: HashSet<(u32, u16, u32)> = HashSet::new();
            for &(s, l, t) in batch_proposals {
                if !touched.insert((s, l, t)) {
                    continue;
                }
                if current.remove(&(s, l, t)) {
                    batch.remove(VertexId(s), LabelId(l), VertexId(t));
                } else {
                    batch.insert(VertexId(s), LabelId(l), VertexId(t));
                    current.insert((s, l, t));
                }
            }
            batches.push(batch);
        }

        let mut sequential = base.clone();
        for batch in &batches {
            sequential = sequential.apply_delta(batch).unwrap();
        }
        let composed = GraphDelta::compose(&batches);
        let compacted = base.apply_delta(&composed).unwrap();

        let seq_edges: BTreeSet<(u32, u16, u32)> = sequential
            .iter_edges()
            .map(|(s, l, t)| (s.0, l.0, t.0))
            .collect();
        let comp_edges: BTreeSet<(u32, u16, u32)> = compacted
            .iter_edges()
            .map(|(s, l, t)| (s.0, l.0, t.0))
            .collect();
        prop_assert_eq!(&seq_edges, &comp_edges);
        prop_assert_eq!(seq_edges, current.into_iter().collect::<BTreeSet<_>>());
        // Cancellation can only shrink the composed batch, never grow it.
        let total_ops: usize = batches.iter().map(GraphDelta::edge_count).sum();
        prop_assert!(composed.edge_count() <= total_ops);
        // Cancelled growth means the compacted graph may allocate fewer
        // vertex rows, never more.
        prop_assert!(compacted.vertex_count() <= sequential.vertex_count());
    }
}
