//! Downstream experiment — the paper's *motivation*, measured: better
//! path selectivity estimates should produce cheaper query plans.
//!
//! For a selectivity-stratified workload of path queries over each
//! dataset, the join-order optimizer runs with five estimators: the
//! independence baseline (no path statistics), a sampling estimator (the
//! no-precomputation alternative), histogram estimators under num-alph
//! and sum-based orderings (equal β budget), and the exact oracle (the
//! floor). Every chosen plan is *executed* and its actual
//! intermediate-result total reported, normalized to the oracle's plan.

use phe_bench::{emit, timed, RunConfig};
use phe_core::ordering::OrderingKind;
use phe_core::{EstimatorConfig, HistogramKind, PathSelectivityEstimator};
use phe_pathenum::parallel::compute_parallel;
use phe_pathenum::{SamplingConfig, SamplingEstimator};
use phe_query::{
    execute, optimize, stratified_workload, CardinalityEstimator, ExactOracle, HistogramEstimator,
    IndependenceBaseline, SamplingAdapter,
};

fn main() {
    let config = RunConfig::from_args();
    let k = config.k().min(5);
    let beta_fraction = 32; // β = N/32 for the histogram estimators

    let mut rows = Vec::new();
    for dataset in config.datasets() {
        let graph = &dataset.graph;
        let (catalog, secs) = timed(|| compute_parallel(graph, k, 0));
        eprintln!("{}: catalog in {secs:.1}s", dataset.name);
        let beta = (catalog.len() / beta_fraction).max(4);

        let build = |ordering: OrderingKind| {
            PathSelectivityEstimator::from_catalog(
                graph,
                catalog.clone(),
                EstimatorConfig {
                    k,
                    beta,
                    ordering,
                    histogram: HistogramKind::VOptimalGreedy,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: false,
                },
                std::time::Duration::ZERO,
            )
            .expect("estimator build")
        };
        let est_na = build(OrderingKind::NumAlph);
        let est_sb = build(OrderingKind::SumBased);

        let oracle = ExactOracle::new(&catalog);
        let hist_na = HistogramEstimator::new(&est_na);
        let hist_sb = HistogramEstimator::new(&est_sb);
        let indep = IndependenceBaseline::from_graph(graph);
        let sampling = SamplingAdapter::new(SamplingEstimator::new(
            graph,
            SamplingConfig {
                sample_size: 64,
                seed: config.seed,
            },
        ));

        let workload = stratified_workload(&catalog, k, 40, config.seed);
        eprintln!(
            "  {} stratified queries of length {k}",
            workload.queries.len()
        );

        let estimators: [(&str, &dyn CardinalityEstimator); 5] = [
            ("exact-oracle", &oracle),
            ("independence", &indep),
            ("sampling-64", &sampling),
            ("hist/num-alph", &hist_na),
            ("hist/sum-based", &hist_sb),
        ];

        let mut totals = vec![0u64; estimators.len()];
        for q in &workload.queries {
            for (i, (_, est)) in estimators.iter().enumerate() {
                let plan = optimize(q, *est);
                totals[i] += execute(graph, &plan).actual_cost();
            }
        }

        let oracle_total = totals[0].max(1);
        for ((name, _), &total) in estimators.iter().zip(&totals) {
            rows.push(vec![
                dataset.name.to_string(),
                name.to_string(),
                total.to_string(),
                format!("{:.3}", total as f64 / oracle_total as f64),
            ]);
        }
    }

    emit(
        &format!(
            "Downstream plan quality — actual intermediate pairs of optimizer-chosen \
             plans (k = {k}, β = N/{beta_fraction}); lower is better, oracle = 1.0"
        ),
        &["dataset", "estimator", "intermediate pairs", "vs oracle"],
        &rows,
        config.csv,
    );

    println!(
        "\nReading guide: the sum-based histogram should sit closest to the oracle \
         among the retained-statistics estimators; sampling pays no build cost but \
         each optimizer probe is a graph traversal (and at 64 sources it can still \
         mis-rank plans on skewed data)."
    );
}
