//! `decode_throughput` — the block codec's decode speed and the spill
//! build's memory envelope, asserted in-bin.
//!
//! Two measurements, each with a hard acceptance gate:
//!
//! 1. **Codec throughput**: the same entry stream compressed twice — by
//!    the per-block chooser (frame-of-reference bit-packed lanes where
//!    they win) and by the forced per-entry LEB128 varint baseline —
//!    then decoded end to end repeatedly. Gate: the chooser stream
//!    decodes at **≥ 2× entries/s** of the varint baseline at **≤ 110%**
//!    of its bytes/entry.
//! 2. **Spill build envelope**: the same catalog built fully in memory
//!    and with a spill budget, under a live-bytes-tracking allocator.
//!    Gate: the spilling build's **peak heap stays below the catalog's
//!    plain (16 B/entry) size** — the bound the in-RAM pipeline cannot
//!    make once the realized-path count outgrows memory.
//!
//! Output: an aligned table plus one JSON line per measurement
//! (`"bench": "decode_throughput"` / `"spill_build"`), collected by CI
//! into the `BENCH_decode.json` artifact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use phe_bench::{emit, RunConfig, Scale};
use phe_datasets::schema::{narrow_chained_schema, schema_graph};
use phe_pathenum::{CompressedRuns, RunsBuilder, SparseCatalog};
use serde_json::{Number, Value};

// ------------------------------------------------------- peak-heap meter

/// Live-bytes high-water allocator: every measurement below reads the
/// peak between two [`reset_peak`] calls. Alignment padding is ignored —
/// close enough for an envelope that must hold by a wide margin.
struct TrackingAlloc;

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System` — every contract (layout
// validity, pointer provenance) is delegated unchanged; the atomic
// bookkeeping allocates nothing and cannot re-enter the allocator.
unsafe impl GlobalAlloc for TrackingAlloc {
    // SAFETY: same contract as `System.alloc`, which receives `layout`
    // untouched.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            // ORDERING: the meter only needs each thread's own adds to
            // count; `fetch_add`/`fetch_max` are atomic RMWs, and the
            // single-threaded measurement loop reads the peak on the
            // same thread that allocated.
            let live = LIVE.fetch_add(layout.size(), Ordering::Relaxed) + layout.size();
            // ORDERING: see above — same-thread meter, atomic RMW.
            PEAK.fetch_max(live, Ordering::Relaxed);
        }
        p
    }

    // SAFETY: same contract as `System.dealloc`; `p`/`layout` are
    // forwarded exactly as received.
    unsafe fn dealloc(&self, p: *mut u8, layout: Layout) {
        System.dealloc(p, layout);
        // ORDERING: atomic RMW on a counter nothing synchronizes with.
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }
}

#[global_allocator]
static ALLOC: TrackingAlloc = TrackingAlloc;

fn reset_peak() {
    // ORDERING: called between measurement phases on the only measuring
    // thread; no cross-thread ordering is involved.
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

fn peak_bytes() -> usize {
    // ORDERING: read on the measuring thread after its own allocations.
    PEAK.load(Ordering::Relaxed)
}

// ------------------------------------------------------------ measurement

/// Synthetic run shaped like a real catalog: clustered indexes (small,
/// varied gaps) and **locally correlated** counts — lexicographically
/// adjacent path ids share prefixes, so their cardinalities drift rather
/// than jump. Frame-of-reference packing thrives on that (a block's
/// residuals span ~11 bits) while the varint baseline must spell every
/// absolute count out at 3 bytes — the honest cost it pays on real data.
fn catalog_shaped_entries(n: usize, seed: u64) -> Vec<(u64, u64)> {
    let mut state = seed | 1;
    let mut next = move || {
        // xorshift64* — deterministic, dependency-free.
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state.wrapping_mul(0x2545_f491_4f6c_dd1d)
    };
    let mut entries = Vec::with_capacity(n);
    let mut index = 0u64;
    let mut base = 200_000i64;
    for _ in 0..n {
        let r = next();
        // Mostly dense clusters (gap 1..16), occasional longer skips.
        index += 1
            + (r & 0xf)
            + if r & 0xff00 == 0 {
                (r >> 16) & 0xffff
            } else {
                0
            };
        // Counts random-walk around a prefix-local level, small noise on
        // top; clamped so the walk can never reach zero.
        base = (base + (((r >> 32) & 0xff) as i64 - 127)).max(1_000);
        let count = base as u64 + ((r >> 40) & 0xff);
        entries.push((index, count));
    }
    entries
}

/// Decodes the whole stream `rounds` times through the cursor's
/// block-wise `fold` — the bulk path histogram builds and merges drive —
/// returning (entries/s, checksum). The checksum defeats dead-code
/// elimination and doubles as a cross-codec equality check.
fn decode_rate(runs: &CompressedRuns, rounds: usize) -> (f64, u64) {
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for _ in 0..rounds {
        checksum = runs.iter().fold(checksum, |acc, (index, count)| {
            acc.wrapping_add(index ^ count.rotate_left(17))
        });
    }
    let secs = t0.elapsed().as_secs_f64();
    ((runs.len() * rounds) as f64 / secs.max(1e-9), checksum)
}

fn main() {
    let config = RunConfig::from_args();
    // Codec race size/rounds, then the spill workload: a follow window
    // wide enough that the realized path set dwarfs the graph — the
    // beyond-RAM regime the spill gate is about (11 MB of plain entries
    // from a < 1 MB graph at CI scale).
    let (entries_n, rounds, labels, vertices, edges_per_label, window) = match config.scale {
        Scale::Ci => (400_000usize, 24usize, 48u16, 800u32, 220u64, 0.35),
        Scale::Paper => (4_000_000, 24, 64, 800, 250, 0.40),
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_lines: Vec<String> = Vec::new();

    // ---- 1. codec decode race -----------------------------------------
    let entries = catalog_shaped_entries(entries_n, config.seed);
    let packed = CompressedRuns::from_entries(&entries);
    let baseline = {
        let mut b = RunsBuilder::new().varint_only();
        for &(index, count) in &entries {
            b.push(index, count);
        }
        b.finish()
    };
    let (varint_blocks, packed_blocks) = packed.block_codec_counts();

    let (packed_rate, packed_sum) = decode_rate(&packed, rounds);
    let (varint_rate, varint_sum) = decode_rate(&baseline, rounds);
    assert_eq!(
        packed_sum, varint_sum,
        "codecs must decode identical streams"
    );
    let speedup = packed_rate / varint_rate;
    let packed_bpe = packed.payload_bytes() as f64 / entries_n as f64;
    let varint_bpe = baseline.payload_bytes() as f64 / entries_n as f64;
    let size_ratio = packed_bpe / varint_bpe;

    // The tentpole's acceptance gate, enforced where the numbers are made.
    assert!(
        speedup >= 2.0,
        "packed codec must decode ≥ 2x the varint baseline, got {speedup:.2}x \
         ({packed_rate:.0} vs {varint_rate:.0} entries/s)"
    );
    assert!(
        size_ratio <= 1.10,
        "packed codec must cost ≤ 110% of varint bytes/entry, got {:.1}% \
         ({packed_bpe:.3} vs {varint_bpe:.3})",
        size_ratio * 100.0
    );

    for (codec, rate, bpe, blocks) in [
        ("packed", packed_rate, packed_bpe, packed_blocks),
        (
            "varint",
            varint_rate,
            varint_bpe,
            baseline.block_codec_counts().0,
        ),
    ] {
        rows.push(vec![
            codec.into(),
            entries_n.to_string(),
            format!("{:.1}", rate / 1e6),
            format!("{bpe:.3}"),
            blocks.to_string(),
        ]);
    }
    json_lines.push(
        serde_json::to_string(&Value::Object(vec![
            ("bench".into(), Value::string("decode_throughput")),
            (
                "entries".into(),
                Value::Number(Number::PosInt(entries_n as u64)),
            ),
            (
                "packed_entries_per_sec".into(),
                Value::Number(Number::Float(packed_rate)),
            ),
            (
                "varint_entries_per_sec".into(),
                Value::Number(Number::Float(varint_rate)),
            ),
            ("speedup".into(), Value::Number(Number::Float(speedup))),
            (
                "packed_bytes_per_entry".into(),
                Value::Number(Number::Float(packed_bpe)),
            ),
            (
                "varint_bytes_per_entry".into(),
                Value::Number(Number::Float(varint_bpe)),
            ),
            (
                "size_ratio".into(),
                Value::Number(Number::Float(size_ratio)),
            ),
            (
                "packed_blocks".into(),
                Value::Number(Number::PosInt(packed_blocks as u64)),
            ),
            (
                "varint_blocks".into(),
                Value::Number(Number::PosInt(varint_blocks as u64)),
            ),
        ]))
        .expect("flat object"),
    );

    // Part 1's buffers must not be alive while part 2 meters the heap.
    drop(entries);
    drop(packed);
    drop(baseline);

    // ---- 2. spill build envelope --------------------------------------
    let k = 4usize;
    let schema = narrow_chained_schema(labels, labels as u64 * edges_per_label, window);
    let graph = schema_graph(vertices, &schema, config.seed);

    // Fingerprint of a catalog's full entry stream — order-dependent, so
    // equal fingerprints + counts mean the builds produced the same
    // entries without keeping both catalogs alive to compare.
    let fingerprint = |catalog: &SparseCatalog| {
        catalog.iter().fold(0u64, |acc, (index, count)| {
            acc.wrapping_mul(0x100_0000_01b3)
                .wrapping_add(index ^ count.rotate_left(17))
        })
    };

    reset_peak();
    let t0 = Instant::now();
    let in_memory = SparseCatalog::compute_parallel(&graph, k, 0).expect("domain fits u48");
    let in_memory_secs = t0.elapsed().as_secs_f64();
    let in_memory_peak = peak_bytes();

    let plain_bytes = in_memory.plain_bytes() as u64;
    let nonzero_paths = in_memory.nonzero_count() as u64;
    let total_mass = in_memory.total_mass();
    let in_memory_sum = fingerprint(&in_memory);
    // Dropped so the spill run's peak meters only its own working set —
    // the point of the gate is what the budgeted build needs, alone.
    drop(in_memory);

    // A budget well under the plain size forces real shard IO.
    let budget = (plain_bytes / 8).max(4096) as usize;
    reset_peak();
    let t0 = Instant::now();
    let (spilled, stats) =
        SparseCatalog::compute_parallel_spilling(&graph, k, 0, Some(budget)).expect("spill build");
    let spill_secs = t0.elapsed().as_secs_f64();
    let spill_peak = peak_bytes();
    assert_eq!(spilled.nonzero_count() as u64, nonzero_paths);
    assert_eq!(spilled.total_mass(), total_mass);
    assert_eq!(
        fingerprint(&spilled),
        in_memory_sum,
        "spill build must produce the in-memory build's exact entries"
    );
    assert!(stats.shards > 0, "budget {budget} B never spilled");

    // The beyond-RAM gate: counting under a budget must keep peak heap
    // below what the *uncompressed* catalog alone would occupy. (The
    // graph itself is resident and counts against the peak, so a pass
    // here holds with room to spare.)
    assert!(
        (spill_peak as u64) < plain_bytes,
        "spilling build peaked at {spill_peak} B — not below the catalog's \
         plain {plain_bytes} B"
    );

    rows.push(vec![
        "build:in-memory".into(),
        nonzero_paths.to_string(),
        format!("{in_memory_secs:.3}s"),
        format!("{} peak B", in_memory_peak),
        "0 shards".into(),
    ]);
    rows.push(vec![
        "build:spill".into(),
        spilled.nonzero_count().to_string(),
        format!("{spill_secs:.3}s"),
        format!("{} peak B", spill_peak),
        format!("{} shards ({} B)", stats.shards, stats.bytes),
    ]);
    json_lines.push(
        serde_json::to_string(&Value::Object(vec![
            ("bench".into(), Value::string("spill_build")),
            (
                "nonzero_paths".into(),
                Value::Number(Number::PosInt(nonzero_paths)),
            ),
            (
                "plain_bytes".into(),
                Value::Number(Number::PosInt(plain_bytes)),
            ),
            (
                "budget_bytes".into(),
                Value::Number(Number::PosInt(budget as u64)),
            ),
            (
                "in_memory_seconds".into(),
                Value::Number(Number::Float(in_memory_secs)),
            ),
            (
                "spill_seconds".into(),
                Value::Number(Number::Float(spill_secs)),
            ),
            (
                "in_memory_peak_bytes".into(),
                Value::Number(Number::PosInt(in_memory_peak as u64)),
            ),
            (
                "spill_peak_bytes".into(),
                Value::Number(Number::PosInt(spill_peak as u64)),
            ),
            (
                "spill_shards".into(),
                Value::Number(Number::PosInt(stats.shards as u64)),
            ),
            (
                "spill_shard_bytes".into(),
                Value::Number(Number::PosInt(stats.bytes)),
            ),
        ]))
        .expect("flat object"),
    );

    emit(
        "Block codec decode throughput + spill build envelope",
        &[
            "what",
            "entries",
            "M entries/s | time",
            "B/entry | peak",
            "blocks | shards",
        ],
        &rows,
        config.csv,
    );
    println!("\n--- JSON ---");
    for line in &json_lines {
        println!("{line}");
    }
}
