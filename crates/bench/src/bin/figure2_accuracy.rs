//! Reproduces the paper's **Figure 2**: mean error rate of estimation for
//! each domain ordering on a V-optimal `k`-path histogram, across the four
//! datasets, for varying `k` and β.
//!
//! One output table per dataset; rows are `(k, β)` configurations and
//! columns the five ordering methods (plus the future-work `sum-based-L2`
//! extension as an extra column). The error metric is the mean of
//! `|err(ℓ)|` over *every* path in the domain, with `err` as in the
//! paper's Formula 6.
//!
//! Expected shape vs the paper: sum-based has the lowest error almost
//! everywhere, with the largest margins on the synthetic datasets
//! (SNAP-ER/SNAP-FF) at small β; on the correlated "real-like" datasets
//! the gap narrows (the paper attributes this to edge-label cardinality
//! correlations, which rank-sum composition cannot see — and which the
//! L2 extension partially recovers).

use phe_bench::{beta_sweep, emit, timed, RunConfig};
use phe_core::eval::evaluate_configuration;
use phe_core::ordering::OrderingKind;
use phe_core::HistogramKind;
use phe_pathenum::parallel::compute_parallel;

fn main() {
    let config = RunConfig::from_args();
    let k_max = config.k();
    let k_values: Vec<usize> = (2..=k_max).collect();
    let datasets = config.datasets();

    let orderings: Vec<OrderingKind> = OrderingKind::ALL.to_vec();
    let mut headers: Vec<&str> = vec!["k", "β"];
    headers.extend(orderings.iter().map(|o| o.name()));

    for dataset in &datasets {
        let graph = &dataset.graph;
        let (catalog_full, secs) = timed(|| compute_parallel(graph, k_max, 0));
        eprintln!(
            "{}: catalog of {} paths in {secs:.1}s",
            dataset.name,
            catalog_full.len()
        );

        let mut rows = Vec::new();
        for &k in &k_values {
            let catalog = catalog_full.truncated(k);
            let built: Vec<_> = orderings
                .iter()
                .map(|kind| kind.build(graph, &catalog, k))
                .collect();
            for &beta in &beta_sweep(catalog.len(), 6) {
                if beta < 2 {
                    continue;
                }
                let mut row = vec![k.to_string(), beta.to_string()];
                for ordering in &built {
                    let report = evaluate_configuration(
                        &catalog,
                        ordering.as_ref(),
                        HistogramKind::VOptimalGreedy,
                        beta,
                    )
                    .expect("non-empty domain");
                    row.push(format!("{:.4}", report.mean_abs_error_rate));
                }
                rows.push(row);
            }
        }
        emit(
            &format!(
                "Figure 2 — mean |err| on V-optimal histograms, {} ({} vertices, {} edges)",
                dataset.name,
                graph.vertex_count(),
                graph.edge_count()
            ),
            &headers,
            &rows,
            config.csv,
        );

        // Per-dataset summary: how often each ordering wins.
        let mut wins = vec![0usize; orderings.len()];
        for row in &rows {
            let errs: Vec<f64> = row[2..].iter().map(|c| c.parse().unwrap()).collect();
            let best = errs.iter().cloned().fold(f64::INFINITY, f64::min);
            for (i, &e) in errs.iter().enumerate() {
                if (e - best).abs() < 1e-9 {
                    wins[i] += 1;
                }
            }
        }
        println!("\nwins per ordering (lowest error, ties shared):");
        for (kind, w) in orderings.iter().zip(&wins) {
            println!("  {:<14} {w}/{}", kind.name(), rows.len());
        }
    }
}
