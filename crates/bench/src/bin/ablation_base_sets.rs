//! Ablation B — the paper's future-work direction: does a richer base set
//! (`B = L²`, ranked by true 2-path selectivities) beat the plain
//! sum-based ordering, especially on label-correlated data?
//!
//! Compares mean error rates of sum-based vs sum-based-L2 (and num-card
//! as the native reference) on all four datasets. The L2 ordering sees
//! pair correlations that per-label rank sums cannot, so the hypothesis
//! is that its advantage concentrates on the correlated "real-like"
//! datasets — the ones where the paper found plain sum-based gains muted.

use phe_bench::{beta_sweep, emit, timed, RunConfig};
use phe_core::eval::evaluate_configuration;
use phe_core::ordering::OrderingKind;
use phe_core::HistogramKind;
use phe_pathenum::parallel::compute_parallel;

fn main() {
    let config = RunConfig::from_args();
    let k = config.k();
    let orderings = [
        OrderingKind::NumCard,
        OrderingKind::SumBased,
        OrderingKind::SumBasedL2,
        OrderingKind::Ideal, // infeasible reference: the floor any ordering can reach
    ];

    let mut headers: Vec<&str> = vec!["dataset", "β"];
    headers.extend(orderings.iter().map(|o| o.name()));
    let mut rows = Vec::new();

    for dataset in config.datasets() {
        let graph = &dataset.graph;
        let (catalog, secs) = timed(|| compute_parallel(graph, k, 0));
        eprintln!("{}: catalog in {secs:.1}s", dataset.name);
        let built: Vec<_> = orderings
            .iter()
            .map(|kind| kind.build(graph, &catalog, k))
            .collect();
        for beta in beta_sweep(catalog.len(), 5) {
            if beta < 2 {
                continue;
            }
            let mut row = vec![dataset.name.to_string(), beta.to_string()];
            for ordering in &built {
                let report = evaluate_configuration(
                    &catalog,
                    ordering.as_ref(),
                    HistogramKind::VOptimalGreedy,
                    beta,
                )
                .unwrap();
                row.push(format!("{:.4}", report.mean_abs_error_rate));
            }
            rows.push(row);
        }
    }

    emit(
        &format!("Ablation B — base set L vs L² (mean |err|, V-optimal greedy, k = {k})"),
        &headers,
        &rows,
        config.csv,
    );

    println!(
        "\nReading guide: sum-based-L2 ranks pieces by true f(l1/l2), so it can \
         exploit label correlations; compare its margin over sum-based on the \
         real-like datasets (correlated) vs SNAP-ER (independent labels). The \
         'ideal' column is the selectivity-sorted reference the paper rules out \
         on memory grounds — the floor for any ordering at this β."
    );
}
