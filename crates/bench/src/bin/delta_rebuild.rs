//! `delta_rebuild` — incremental maintenance vs full rebuild.
//!
//! Simulates the serving-system maintenance loop: statistics exist for a
//! graph, a batch of edge changes arrives (1% of the edges by default),
//! and the estimator must be refreshed. The incremental path
//! ([`PathSelectivityEstimator::apply_delta`]: delta counting over only
//! the touched paths → k-way merge into the retained sparse catalog →
//! ordering/histogram re-derivation) is timed against a from-scratch
//! rebuild of the changed graph, and its merged catalog is verified
//! **bit-identical** to the recount — the run aborts on any mismatch.
//!
//! The churn model matches how graph updates arrive in practice: a batch
//! refreshes one relation family (a 2-label band starting mid-ring), not
//! a uniform sprinkle over every label — a batch that touched *every*
//! relation would leave every path's count in doubt and defeat any
//! incremental scheme. That locality is exactly what the delta counter's
//! dirty-label and changed-row pruning convert into work proportional to
//! |delta|. Insertions are sampled from the dirty labels' existing
//! endpoint communities, so the churn respects the schema instead of
//! rewiring it.
//!
//! The full rebuild is timed both single-threaded — the like-for-like
//! comparison (delta counting is single-threaded), and what a serving
//! host actually runs: the background `rebuild` op defaults to one
//! thread so it cannot starve the serving workers — and with all cores.
//!
//! Output: an aligned table plus one JSON line per point (`"bench":
//! "delta_rebuild"`), machine-readable for the benchmark trajectory.

use phe_bench::{emit, timed, RunConfig, Scale};
use phe_core::{EstimatorConfig, PathSelectivityEstimator};
use phe_datasets::schema::{narrow_chained_schema, schema_graph};
use phe_graph::{Graph, GraphDelta, LabelId, VertexId};
use phe_pathenum::compute_delta;
use serde_json::{Number, Value};

/// Fraction of all edges replaced per maintenance batch.
const CHURN_FRACTION: f64 = 0.01;
/// The labels the churn is concentrated on: a band of adjacent relations
/// starting mid-ring — the "refresh one relation family" update model.
/// (A batch spread uniformly over every label would defeat *any*
/// incremental scheme: each label's relation would be touched and every
/// path's count would need re-verification.)
const DIRTY_BAND_START: u16 = 16;
const DIRTY_BAND: u16 = 2;

struct Point {
    labels: u16,
    k: usize,
    headline: bool,
}

/// Builds a schema-respecting churn batch: removes `m/2` edges of the
/// dirty band and inserts `m/2` fresh band edges whose endpoints are
/// drawn from the band labels' existing source/target communities.
fn churn_delta(graph: &Graph, fraction: f64, band: u16, seed: u64) -> GraphDelta {
    let budget = ((graph.edge_count() as f64 * fraction).round() as usize).max(2);
    let (removals, insertions) = (budget / 2, budget - budget / 2);

    let mut x = seed
        .wrapping_mul(2862933555777941757)
        .wrapping_add(3037000493);
    let mut step = || {
        x = x.wrapping_mul(2862933555777941757).wrapping_add(3037000493);
        (x >> 33) as usize
    };

    let mut delta = GraphDelta::new();
    let mut removed = std::collections::HashSet::new();
    let mut added = std::collections::HashSet::new();
    let label_count = graph.label_count() as u16;
    for label in DIRTY_BAND_START..(DIRTY_BAND_START + band).min(label_count) {
        let label = LabelId(label);
        let edges: Vec<(u32, u32)> = graph
            .forward_csr(label)
            .iter_edges()
            .map(|(s, t)| (s.0, t.0))
            .collect();
        if edges.is_empty() {
            continue;
        }
        let share_r = removals / (band as usize);
        let share_i = insertions / (band as usize);
        // Removals: distinct random edges of this label (attempt-bounded,
        // like the insertion loop — `removed` spans the whole band, so it
        // cannot double as a per-label exhaustion test).
        let mut taken = 0;
        let mut attempts = 0;
        while taken < share_r && attempts < share_r * 200 {
            attempts += 1;
            let (s, t) = edges[step() % edges.len()];
            if removed.insert((s, label.0, t)) {
                delta.remove(VertexId(s), label, VertexId(t));
                taken += 1;
            }
        }
        // Insertions: recombine existing sources × targets of the same
        // label (absent combinations only), staying inside the schema's
        // communities.
        let mut taken = 0;
        let mut attempts = 0;
        while taken < share_i && attempts < share_i * 200 {
            attempts += 1;
            let (s, _) = edges[step() % edges.len()];
            let (_, t) = edges[step() % edges.len()];
            let present = graph.has_edge(VertexId(s), label, VertexId(t))
                && !removed.contains(&(s, label.0, t));
            if present || !added.insert((s, label.0, t)) {
                continue;
            }
            delta.insert(VertexId(s), label, VertexId(t));
            taken += 1;
        }
    }
    delta
}

fn main() {
    let config = RunConfig::from_args();
    // Denser than `build_scaling`'s sweep (4× the vertices and edges per
    // label at CI scale): the maintenance question only matters when the
    // full recount is genuinely expensive.
    let (vertices, edges_per_label) = match config.scale {
        Scale::Ci => (6_000u32, 640u64),
        Scale::Paper => (50_000u32, 4_000u64),
    };

    let mut points: Vec<Point> = vec![
        Point {
            labels: 32,
            k: 4,
            headline: false,
        },
        // The CI headline configuration of `build_scaling`: a domain the
        // dense pipeline cannot even allocate.
        Point {
            labels: 64,
            k: match config.scale {
                Scale::Ci => 5,
                Scale::Paper => 6,
            },
            headline: true,
        },
    ];
    if config.scale == Scale::Paper {
        points.insert(
            0,
            Point {
                labels: 64,
                k: 5,
                headline: false,
            },
        );
    }

    let estimator_config = EstimatorConfig {
        beta: 256,
        retain_catalog: false,
        retain_sparse: true,
        ..EstimatorConfig::default()
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_lines: Vec<String> = Vec::new();
    for point in &points {
        let schema =
            narrow_chained_schema(point.labels, point.labels as u64 * edges_per_label, 0.08);
        let old_graph = schema_graph(vertices, &schema, config.seed);
        let k = point.k;
        let delta = churn_delta(&old_graph, CHURN_FRACTION, DIRTY_BAND, config.seed + 1);
        let new_graph = old_graph.apply_delta(&delta).expect("churn is valid");

        // The maintained base: built once, outside the timed region (a
        // serving system amortizes this over every delta it absorbs).
        let base = PathSelectivityEstimator::build(
            &old_graph,
            EstimatorConfig {
                k,
                ..estimator_config
            },
        )
        .expect("base build");

        // Full rebuilds of the changed graph: single-threaded (what the
        // service's background rebuild runs, and the like-for-like
        // comparison) and all-cores.
        let (full_1t, full_1t_secs) = timed(|| {
            PathSelectivityEstimator::build(
                &new_graph,
                EstimatorConfig {
                    k,
                    threads: 1,
                    ..estimator_config
                },
            )
            .expect("full rebuild")
        });
        let (_, full_mt_secs) = timed(|| {
            PathSelectivityEstimator::build(
                &new_graph,
                EstimatorConfig {
                    k,
                    ..estimator_config
                },
            )
            .expect("full rebuild")
        });

        // The incremental path under test.
        let (applied, delta_secs) = timed(|| base.apply_delta(&old_graph, &delta).expect("delta"));
        let (refreshed, _) = applied;

        // Correctness gate: the merged catalog must be bit-identical to
        // the recount. A bench that silently drifts is worse than none.
        let merged = refreshed.sparse_catalog().expect("retain_sparse");
        let recounted = full_1t.sparse_catalog().expect("retain_sparse");
        assert_eq!(
            merged, recounted,
            "incremental catalog diverged from the full recount"
        );

        // Touched-path count, for the |delta|-proportionality story, and
        // the isolated block-merge step: folding the signed run into the
        // compressed catalog (untouched blocks copy wholesale), timed
        // apart from counting so the merge throughput is its own number.
        let run = compute_delta(&old_graph, &new_graph, &delta, k).expect("delta counting");
        let touched = run.len();
        let base_catalog = base.sparse_catalog().expect("retain_sparse");
        let (merged_alone, merge_secs) = timed(|| base_catalog.merge_delta(&run).expect("merge"));
        assert_eq!(
            &merged_alone, recounted,
            "isolated block merge diverged from the full recount"
        );
        let merge_entries_per_sec = base_catalog.nonzero_count() as f64 / merge_secs.max(1e-9);

        let nnz = refreshed.footprint().nonzero_paths;
        let bytes_per_entry = refreshed.footprint().bytes_per_entry();
        let speedup_1t = full_1t_secs / delta_secs.max(1e-9);
        let speedup_mt = full_mt_secs / delta_secs.max(1e-9);
        rows.push(vec![
            format!("{}{}", point.labels, if point.headline { "*" } else { "" }),
            k.to_string(),
            new_graph.edge_count().to_string(),
            delta.edge_count().to_string(),
            nnz.to_string(),
            touched.to_string(),
            format!("{full_1t_secs:.3}"),
            format!("{full_mt_secs:.3}"),
            format!("{delta_secs:.3}"),
            format!("{speedup_1t:.1}x"),
            format!("{speedup_mt:.1}x"),
        ]);
        let obj = Value::Object(vec![
            ("bench".into(), Value::string("delta_rebuild")),
            (
                "labels".into(),
                Value::Number(Number::PosInt(point.labels as u64)),
            ),
            ("k".into(), Value::Number(Number::PosInt(k as u64))),
            (
                "edges".into(),
                Value::Number(Number::PosInt(new_graph.edge_count() as u64)),
            ),
            (
                "churn_edges".into(),
                Value::Number(Number::PosInt(delta.edge_count() as u64)),
            ),
            (
                "churn_fraction".into(),
                Value::Number(Number::Float(CHURN_FRACTION)),
            ),
            ("nonzero_paths".into(), Value::Number(Number::PosInt(nnz))),
            (
                "bytes_per_entry".into(),
                Value::Number(Number::Float(bytes_per_entry)),
            ),
            (
                "catalog_bytes".into(),
                Value::Number(Number::PosInt(refreshed.footprint().sparse_bytes)),
            ),
            (
                "catalog_plain_bytes".into(),
                Value::Number(Number::PosInt(refreshed.footprint().sparse_plain_bytes)),
            ),
            (
                "touched_paths".into(),
                Value::Number(Number::PosInt(touched as u64)),
            ),
            (
                "block_merge_seconds".into(),
                Value::Number(Number::Float(merge_secs)),
            ),
            (
                "block_merge_entries_per_sec".into(),
                Value::Number(Number::Float(merge_entries_per_sec)),
            ),
            (
                "full_build_seconds".into(),
                Value::Number(Number::Float(full_1t_secs)),
            ),
            (
                "full_build_parallel_seconds".into(),
                Value::Number(Number::Float(full_mt_secs)),
            ),
            (
                "delta_seconds".into(),
                Value::Number(Number::Float(delta_secs)),
            ),
            (
                "delta_counting_seconds".into(),
                Value::Number(Number::Float(
                    refreshed.build_stats().catalog_time.as_secs_f64(),
                )),
            ),
            (
                "delta_ordering_seconds".into(),
                Value::Number(Number::Float(
                    refreshed.build_stats().ordering_time.as_secs_f64(),
                )),
            ),
            (
                "delta_histogram_seconds".into(),
                Value::Number(Number::Float(
                    refreshed.build_stats().histogram_time.as_secs_f64(),
                )),
            ),
            ("speedup".into(), Value::Number(Number::Float(speedup_1t))),
            (
                "speedup_parallel".into(),
                Value::Number(Number::Float(speedup_mt)),
            ),
            ("verified".into(), Value::Bool(true)),
        ]);
        json_lines.push(serde_json::to_string(&obj).expect("flat object"));
    }

    // --- Maintenance compaction: the queue the service's maintenance
    // loop folds per publish interval. N small batches arrive between
    // publishes; the pre-compaction behavior pays N counting passes,
    // the compactor composes them (`GraphDelta::compose`, cancelling
    // insert-then-remove churn) and pays one. Correctness is gated the
    // same way as the delta path above: the compacted catalog must be
    // bit-identical to sequential application, and the single pass must
    // be decisively faster — this is the speedup the maintenance loop's
    // publish interval buys.
    const COMPACTION_BATCHES: usize = 16;
    const COMPACTION_CHURN: f64 = 0.0025;
    let compaction_labels = 32u16;
    let compaction_k = 4usize;
    let schema = narrow_chained_schema(
        compaction_labels,
        compaction_labels as u64 * edges_per_label,
        0.08,
    );
    let graph0 = schema_graph(vertices, &schema, config.seed);
    let base = PathSelectivityEstimator::build(
        &graph0,
        EstimatorConfig {
            k: compaction_k,
            ..estimator_config
        },
    )
    .expect("compaction base build");

    // The queue: each batch is valid against the graph its predecessors
    // left, exactly how `delta` ops arrive at the service.
    let mut batches = Vec::with_capacity(COMPACTION_BATCHES);
    {
        let mut current = graph0.clone();
        for i in 0..COMPACTION_BATCHES {
            let delta = churn_delta(
                &current,
                COMPACTION_CHURN,
                DIRTY_BAND,
                config.seed + 100 + i as u64,
            );
            current = current.apply_delta(&delta).expect("queued batch applies");
            batches.push(delta);
        }
    }

    // Sequential: one counting pass per batch (pre-compaction service).
    let (sequential_final, sequential_secs) = timed(|| {
        let mut state: Option<(PathSelectivityEstimator, Graph)> = None;
        for delta in &batches {
            let next = match &state {
                None => base.apply_delta(&graph0, delta),
                Some((est, graph)) => est.apply_delta(graph, delta),
            }
            .expect("sequential delta");
            state = Some(next);
        }
        state.expect("at least one batch").0
    });

    // Compacted: compose the whole queue, count once.
    let (compacted, compacted_secs) = timed(|| {
        let composed = GraphDelta::compose(&batches);
        base.apply_delta(&graph0, &composed)
            .expect("compacted delta")
            .0
    });

    let composed = GraphDelta::compose(&batches);
    assert_eq!(
        compacted.sparse_catalog().expect("compacted catalog"),
        sequential_final
            .sparse_catalog()
            .expect("sequential catalog"),
        "compacted catalog diverged from sequential application"
    );
    let compaction_speedup = sequential_secs / compacted_secs.max(1e-9);
    assert!(
        compaction_speedup >= 3.0,
        "compaction must beat sequential application >= 3x, got {compaction_speedup:.1}x \
         ({sequential_secs:.3}s sequential vs {compacted_secs:.3}s compacted)"
    );
    let queued_edges: usize = batches.iter().map(|d| d.edge_count()).sum();
    json_lines.push(
        serde_json::to_string(&Value::Object(vec![
            ("bench".into(), Value::string("maintenance_compaction")),
            (
                "labels".into(),
                Value::Number(Number::PosInt(compaction_labels as u64)),
            ),
            (
                "k".into(),
                Value::Number(Number::PosInt(compaction_k as u64)),
            ),
            (
                "edges".into(),
                Value::Number(Number::PosInt(graph0.edge_count() as u64)),
            ),
            (
                "queued_batches".into(),
                Value::Number(Number::PosInt(COMPACTION_BATCHES as u64)),
            ),
            (
                "batch_churn_fraction".into(),
                Value::Number(Number::Float(COMPACTION_CHURN)),
            ),
            (
                "queued_edges".into(),
                Value::Number(Number::PosInt(queued_edges as u64)),
            ),
            (
                "composed_edges".into(),
                Value::Number(Number::PosInt(composed.edge_count() as u64)),
            ),
            (
                "sequential_seconds".into(),
                Value::Number(Number::Float(sequential_secs)),
            ),
            (
                "compacted_seconds".into(),
                Value::Number(Number::Float(compacted_secs)),
            ),
            (
                "speedup".into(),
                Value::Number(Number::Float(compaction_speedup)),
            ),
            ("verified".into(), Value::Bool(true)),
        ]))
        .expect("flat object"),
    );
    emit(
        &format!(
            "Incremental delta rebuild at {:.0}% churn (* = dense-infeasible headline; \
             full-rebuild times single-threaded and all-cores)",
            CHURN_FRACTION * 100.0
        ),
        &[
            "|L|",
            "k",
            "edges",
            "churn",
            "nnz",
            "touched",
            "full 1t s",
            "full mt s",
            "delta s",
            "vs 1t",
            "vs mt",
        ],
        &rows,
        config.csv,
    );
    println!(
        "\nmaintenance compaction: {COMPACTION_BATCHES} batches x {:.2}% churn -> one pass \
         ({queued_edges} queued edges compose to {}): {sequential_secs:.3}s sequential vs \
         {compacted_secs:.3}s compacted = {compaction_speedup:.1}x (catalog bit-identical)",
        COMPACTION_CHURN * 100.0,
        composed.edge_count(),
    );

    println!("\n--- JSON ---");
    for line in &json_lines {
        println!("{line}");
    }
}
