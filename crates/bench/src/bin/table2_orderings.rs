//! Reproduces the paper's **Table 1** (summed ranks) and **Table 2**
//! (ordered label paths per ordering method) on the Section 3.4 artificial
//! dataset: 3 labels "1","2","3" with cardinalities 20, 100, 80, `k = 2`.
//!
//! This experiment is scale-independent; `--scale` is accepted but
//! ignored.

use phe_bench::{emit, RunConfig};
use phe_core::base_set::SumBasedL2Ordering;
use phe_core::ordering::{
    DomainOrdering, LexicographicalOrdering, NumericalOrdering, SumBasedOrdering,
};
use phe_core::{LabelRanking, PathDomain};

fn main() {
    let config = RunConfig::from_args();
    let domain = PathDomain::new(3, 2);
    let freqs = [20u64, 100, 80];
    let alph = LabelRanking::identity(3);
    let card = LabelRanking::cardinality_from_frequencies(&freqs);

    // Human-readable path rendering: label id i is named (i+1).
    let show = |p: &phe_core::LabelPath| -> String {
        p.iter()
            .map(|l| (l.0 + 1).to_string())
            .collect::<Vec<_>>()
            .join(",")
    };

    // Table 1: summed ranks under cardinality ranking.
    let sum_based = SumBasedOrdering::new(domain, card.clone());
    let mut t1_rows = Vec::new();
    for p in domain.iter() {
        t1_rows.push(vec![show(&p), sum_based.summed_rank(&p).to_string()]);
    }
    emit(
        "Table 1 — summed ranks (cardinality ranking; labels 1,2,3 with f = 20,100,80)",
        &["label path", "summed rank"],
        &t1_rows,
        config.csv,
    );

    // Table 2: the five orderings (+ the L2 extension as an extra row).
    let orderings: Vec<Box<dyn DomainOrdering>> = vec![
        Box::new(NumericalOrdering::new(domain, alph.clone(), "num-alph")),
        Box::new(NumericalOrdering::new(domain, card.clone(), "num-card")),
        Box::new(LexicographicalOrdering::new(domain, alph, "lex-alph")),
        Box::new(LexicographicalOrdering::new(
            domain,
            card.clone(),
            "lex-card",
        )),
        Box::new(SumBasedOrdering::new(domain, card)),
        Box::new(SumBasedL2Ordering::from_frequencies(
            domain,
            &freqs,
            // Independence-product pair frequencies for the illustration.
            &{
                let mut pairs = Vec::new();
                for a in 0..3 {
                    for b in 0..3 {
                        pairs.push(freqs[a] * freqs[b] / 10);
                    }
                }
                pairs
            },
        )),
    ];

    let headers: Vec<String> = std::iter::once("index".to_string())
        .chain((0..domain.size()).map(|i| i.to_string()))
        .collect();
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut t2_rows = Vec::new();
    for o in &orderings {
        let mut row = vec![o.name().to_string()];
        for i in 0..domain.size() {
            row.push(show(&o.path_at(i)));
        }
        t2_rows.push(row);
    }
    emit(
        "Table 2 — ordered label paths per ordering method",
        &header_refs,
        &t2_rows,
        config.csv,
    );

    // Assert the published rows (the binary doubles as a check).
    let expected_sum_based = [
        "1", "3", "2", "1,1", "1,3", "3,1", "3,3", "1,2", "2,1", "3,2", "2,3", "2,2",
    ];
    let got: Vec<String> = (0..12).map(|i| show(&orderings[4].path_at(i))).collect();
    assert_eq!(
        got, expected_sum_based,
        "sum-based row diverged from the paper"
    );
    println!("\nsum-based row matches the published Table 2 exactly.");
}
