//! Reproduces the paper's **Figure 1**: the label-path selectivity
//! distribution of the Moreno dataset for `k = 3` (258 paths over 6
//! labels) together with an equi-width histogram over it, in num-alph
//! ordering. Emits the two series (truth and bucket means) as a table /
//! CSV ready for plotting.

use phe_bench::{emit, RunConfig};
use phe_core::eval::ordered_frequencies;
use phe_core::ordering::OrderingKind;
use phe_histogram::builder::{EquiWidth, HistogramBuilder};
use phe_histogram::PointEstimator;
use phe_pathenum::parallel::compute_parallel;

fn main() {
    let config = RunConfig::from_args();
    // Figure 1 is defined at k = 3 regardless of scale.
    let k = config.k_override.unwrap_or(3);
    let graph = config.moreno();
    let catalog = compute_parallel(&graph, k, 0);
    let ordering = OrderingKind::NumAlph.build(&graph, &catalog, k);
    let ordered = ordered_frequencies(&catalog, ordering.as_ref());

    // The paper's figure shows an equi-width histogram; its bucket count
    // is not stated, so we use domain/16 which matches the plot's visual
    // granularity.
    let beta = (ordered.len() / 16).max(1);
    let histogram = EquiWidth.build(&ordered, beta).expect("non-empty domain");

    let interner = graph.labels();
    let rows: Vec<Vec<String>> = (0..ordered.len())
        .map(|i| {
            let path = ordering.path_at(i as u64);
            let name = path.display_with(interner).to_string();
            vec![
                i.to_string(),
                name,
                ordered[i].to_string(),
                format!("{:.2}", histogram.estimate(i)),
            ]
        })
        .collect();

    emit(
        &format!(
            "Figure 1 — Moreno-like distribution and equi-width histogram \
             (k = {k}, {} paths, β = {beta}, num-alph ordering)",
            ordered.len()
        ),
        &["index", "label path", "f(path)", "equi-width estimate"],
        &rows,
        config.csv,
    );

    // Reproduce the figure's headline observations.
    let n = graph.label_count();
    let singles = &ordered[..n];
    let max_single = singles.iter().enumerate().max_by_key(|&(_, f)| *f).unwrap();
    let min_single = singles.iter().enumerate().min_by_key(|&(_, f)| *f).unwrap();
    println!(
        "\nlength-1 block: label {} has the highest cardinality ({}), label {} the lowest ({})",
        max_single.0 + 1,
        max_single.1,
        min_single.0 + 1,
        min_single.1
    );
    println!(
        "(the paper observes label 1 highest and label 5 lowest, with the same \
         trend repeating inside every same-prefix group — the motivation for \
         composing ranks)"
    );
}
