//! `rpq_estimation` — the expression layer's performance envelope.
//!
//! Four measurements over a schema-constrained graph (sparse label
//! adjacency, so follow-matrix pruning has something to bite on):
//!
//! * **width vs latency** — `estimate_expr` cost as the expansion width
//!   grows (alternations of 1, 2, 4, 8, 16 realized chains);
//! * **prune effectiveness** — wildcard-chain expansion with and without
//!   the follow matrix: candidate branches vs survivors, and the latency
//!   both ways;
//! * **expression-cache hit rate** — commuted alternations against a
//!   serving slot: every syntactic variant after the first hits the
//!   normalized key;
//! * **TCP batching** — one `estimate_expr` op carrying an
//!   alternation-of-8 vs eight single-path `estimate` requests over a
//!   real loopback connection. The acceptance floor is **≥ 3×** (the op
//!   saves seven syscall round trips; quiet runs measure ~5.6×),
//!   recorded in the JSON and warned about — never wall-clock-asserted,
//!   matching the other CI benches — while the answer totals *are*
//!   asserted equal.
//!
//! Output: an aligned table plus one JSON line per measurement
//! (`"bench": "rpq_estimation"`), collected into the `BENCH_rpq.json`
//! artifact.

use std::sync::Arc;
use std::time::Instant;

use phe_bench::{emit, timed, RunConfig, Scale};
use phe_core::{EstimatorConfig, PathSelectivityEstimator};
use phe_datasets::schema::{narrow_chained_schema, schema_graph};
use phe_graph::FollowMatrix;
use phe_pathenum::SelectivityCatalog;
use phe_query::{
    stratified_workload, CardinalityEstimator, ExpandOptions, HistogramEstimator, PathExpr,
};
use phe_service::protocol::PathStep;
use phe_service::{
    EstimatorRegistry, ServableEstimator, Server, ServerConfig, ServiceClient, ServiceMetrics,
};
use serde_json::{Number, Value};

fn main() {
    let config = RunConfig::from_args();
    let (vertices, edges_per_label, iterations) = match config.scale {
        Scale::Ci => (1_200u32, 140u64, 200u32),
        Scale::Paper => (20_000u32, 1_500u64, 1_000u32),
    };
    let labels = 16u16;
    let k = 3usize;

    let schema = narrow_chained_schema(labels, labels as u64 * edges_per_label, 0.08);
    let graph = schema_graph(vertices, &schema, config.seed);
    let catalog = SelectivityCatalog::compute(&graph, k);
    let follow = FollowMatrix::from_graph(&graph);
    let built = PathSelectivityEstimator::build(
        &graph,
        EstimatorConfig {
            k,
            beta: 64,
            threads: 1,
            retain_catalog: false,
            retain_sparse: false,
            ..EstimatorConfig::default()
        },
    )
    .expect("build");
    let estimator = HistogramEstimator::new(&built).with_follow(follow.clone());

    // Realized chains to alternate over.
    let chains = stratified_workload(&catalog, k, 64, config.seed).queries;
    assert!(chains.len() >= 16, "graph too sparse for the width sweep");

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_lines: Vec<String> = Vec::new();
    let mut push_json = |fields: Vec<(String, Value)>| {
        let mut all = vec![("bench".to_string(), Value::string("rpq_estimation"))];
        all.extend(fields);
        json_lines.push(serde_json::to_string(&Value::Object(all)).expect("flat object"));
    };

    // ---------------------------------------------------- width vs latency
    for width in [1usize, 2, 4, 8, 16] {
        let expr =
            PathExpr::Alt(chains[..width].iter().map(|c| PathExpr::path(c)).collect()).normalize();
        let (result, secs) = timed(|| {
            let mut last = None;
            for _ in 0..iterations {
                last = Some(estimator.estimate_expr(&expr).expect("estimate"));
            }
            last.expect("iterations > 0")
        });
        let micros = secs * 1e6 / iterations as f64;
        rows.push(vec![
            "width-latency".into(),
            width.to_string(),
            format!("{micros:.2} µs/expr"),
            format!("{} branch(es)", result.width()),
        ]);
        push_json(vec![
            ("metric".into(), Value::string("width_latency")),
            ("width".into(), Value::Number(Number::PosInt(width as u64))),
            (
                "branches".into(),
                Value::Number(Number::PosInt(result.width() as u64)),
            ),
            (
                "micros_per_expr".into(),
                Value::Number(Number::Float(micros)),
            ),
        ]);
    }

    // --------------------------------------------------- prune effectiveness
    // Wildcard chains: every label pair/triple is a candidate; the follow
    // matrix discards the combinations the schema never realizes.
    let wild = PathExpr::Concat(vec![
        PathExpr::Wildcard,
        PathExpr::Wildcard,
        PathExpr::Wildcard,
    ]);
    let plain_opts = ExpandOptions::new(labels as usize, k);
    let pruned_opts = plain_opts.with_follow(&follow);
    let (unpruned, unpruned_secs) = timed(|| {
        let mut x = None;
        for _ in 0..iterations {
            x = Some(wild.expand(&plain_opts).expect("expand"));
        }
        x.expect("iterations > 0")
    });
    let (pruned, pruned_secs) = timed(|| {
        let mut x = None;
        for _ in 0..iterations {
            x = Some(wild.expand(&pruned_opts).expect("expand"));
        }
        x.expect("iterations > 0")
    });
    let survivors = pruned.paths.len();
    let candidates = unpruned.paths.len();
    rows.push(vec![
        "prune".into(),
        format!("{candidates} candidates"),
        format!("{survivors} survive"),
        format!(
            "{:.1}% pruned; {:.0} µs vs {:.0} µs unpruned",
            100.0 * (candidates - survivors) as f64 / candidates as f64,
            pruned_secs * 1e6 / iterations as f64,
            unpruned_secs * 1e6 / iterations as f64
        ),
    ]);
    push_json(vec![
        ("metric".into(), Value::string("prune")),
        (
            "candidates".into(),
            Value::Number(Number::PosInt(candidates as u64)),
        ),
        (
            "survivors".into(),
            Value::Number(Number::PosInt(survivors as u64)),
        ),
        (
            "pruned_branches".into(),
            Value::Number(Number::PosInt(pruned.pruned)),
        ),
        (
            "micros_pruned".into(),
            Value::Number(Number::Float(pruned_secs * 1e6 / iterations as f64)),
        ),
        (
            "micros_unpruned".into(),
            Value::Number(Number::Float(unpruned_secs * 1e6 / iterations as f64)),
        ),
    ]);

    // -------------------------------------------- expression-cache hit rate
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(
        metrics.cache_counters(),
        EstimatorRegistry::DEFAULT_CACHE_CAPACITY,
    ));
    let servable = |g: &phe_graph::Graph| {
        ServableEstimator::from_estimator(
            PathSelectivityEstimator::build(
                g,
                EstimatorConfig {
                    k,
                    beta: 64,
                    threads: 1,
                    retain_catalog: false,
                    retain_sparse: false,
                    ..EstimatorConfig::default()
                },
            )
            .expect("build"),
        )
    };
    registry.register("main", servable(&graph));
    let generation = registry.get("main").expect("registered");
    let name_of = |c: &[phe_graph::LabelId]| -> String {
        c.iter()
            .map(|l| graph.labels().name(*l).unwrap_or("?").to_owned())
            .collect::<Vec<_>>()
            .join("/")
    };
    // 32 base alternations, each issued in 4 commuted variants.
    let commutations = 4usize;
    let bases: Vec<(String, String)> = chains
        .chunks(2)
        .take(32)
        .filter(|pair| pair.len() == 2)
        .map(|pair| (name_of(&pair[0]), name_of(&pair[1])))
        .collect();
    for (a, b) in &bases {
        for variant in 0..commutations {
            let source = if variant % 2 == 0 {
                format!("({a}|{b})")
            } else {
                format!("({b}|{a})")
            };
            generation.estimate_expr(&source, false).expect("expr");
        }
    }
    let info = &registry.list()[0];
    let (hits, misses) = info.expr_cache;
    let hit_rate = hits as f64 / (hits + misses) as f64;
    rows.push(vec![
        "expr-cache".into(),
        format!("{} lookups", hits + misses),
        format!("{hits} normalized-key hits"),
        format!("{:.1}% hit rate on commuted expressions", hit_rate * 100.0),
    ]);
    push_json(vec![
        ("metric".into(), Value::string("expr_cache")),
        ("hits".into(), Value::Number(Number::PosInt(hits))),
        ("misses".into(), Value::Number(Number::PosInt(misses))),
        ("hit_rate".into(), Value::Number(Number::Float(hit_rate))),
    ]);
    assert!(
        hit_rate >= (commutations - 1) as f64 / commutations as f64 - 1e-9,
        "commuted variants must hit the normalized key"
    );

    // ----------------------------------------------------- TCP: alt-8 vs 8×
    let server = Server::start(
        Arc::clone(&registry),
        Arc::clone(&metrics),
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: 2,
            allow_load: false,
            ..ServerConfig::default()
        },
    )
    .expect("server");
    let addr = server.local_addr();
    let mut client = ServiceClient::connect(addr).expect("connect");

    let alt8: Vec<Vec<phe_graph::LabelId>> = chains[..8].to_vec();
    let alt8_expr = format!(
        "({})",
        alt8.iter()
            .map(|c| name_of(c))
            .collect::<Vec<_>>()
            .join("|")
    );
    let single_paths: Vec<Vec<Vec<PathStep>>> = alt8
        .iter()
        .map(|c| vec![c.iter().map(|l| PathStep::Id(l.0)).collect()])
        .collect();

    // Warm both paths (caches, connection).
    client
        .estimate_expr("main", std::slice::from_ref(&alt8_expr), false)
        .expect("warm expr");
    for paths in &single_paths {
        client.estimate("main", paths.clone()).expect("warm single");
    }

    let t0 = Instant::now();
    for _ in 0..iterations {
        for paths in &single_paths {
            client.estimate("main", paths.clone()).expect("single");
        }
    }
    let singles_secs = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let mut expr_total = 0.0f64;
    for _ in 0..iterations {
        let batch = client
            .estimate_expr("main", std::slice::from_ref(&alt8_expr), false)
            .expect("expr op");
        expr_total = batch.results[0].estimate;
    }
    let expr_secs = t1.elapsed().as_secs_f64();

    // Consistency: the one-op answer equals the sum of the eight singles.
    let mut singles_total = 0.0f64;
    for paths in &single_paths {
        singles_total += client
            .estimate("main", paths.clone())
            .expect("single")
            .estimates[0];
    }
    assert!(
        (expr_total - singles_total).abs() <= 1e-9 * singles_total.abs().max(1.0),
        "alt-8 total {expr_total} != sum of singles {singles_total}"
    );

    let speedup = singles_secs / expr_secs.max(1e-12);
    rows.push(vec![
        "tcp-alt8".into(),
        format!("{:.1} µs 8×single", singles_secs * 1e6 / iterations as f64),
        format!("{:.1} µs one expr op", expr_secs * 1e6 / iterations as f64),
        format!("{speedup:.1}x (floor 3x)"),
    ]);
    push_json(vec![
        ("metric".into(), Value::string("tcp_alt8")),
        (
            "micros_8_single_requests".into(),
            Value::Number(Number::Float(singles_secs * 1e6 / iterations as f64)),
        ),
        (
            "micros_one_expr_op".into(),
            Value::Number(Number::Float(expr_secs * 1e6 / iterations as f64)),
        ),
        ("speedup".into(), Value::Number(Number::Float(speedup))),
        (
            "iterations".into(),
            Value::Number(Number::PosInt(iterations as u64)),
        ),
    ]);

    server.shutdown();

    emit(
        "RPQ estimation (expression expansion, pruning, caching, protocol batching)",
        &["measurement", "input", "output", "result"],
        &rows,
        config.csv,
    );
    println!("\n--- JSON ---");
    for line in &json_lines {
        println!("{line}");
    }

    // Like the other CI benches, correctness is asserted (the totals
    // check above) and timing is *recorded*: the 3× acceptance floor
    // lives in BENCH_rpq.json, with a loud warning instead of a flaky
    // wall-clock assert on loaded shared runners (quiet runs measure
    // ~5.6×).
    if speedup < 3.0 {
        eprintln!(
            "WARNING: tcp_alt8 speedup {speedup:.2}x is below the 3x acceptance \
             floor — expected only under heavy machine load"
        );
    }
}
