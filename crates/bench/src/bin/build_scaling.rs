//! `build_scaling` — the sparse-first pipeline's scaling envelope.
//!
//! Sweeps `(|L|, k)` over schema-constrained graphs (real-world label
//! alphabets are schema-sparse: most label sequences never occur) and
//! records, per point:
//!
//! * sparse catalog build time and realized-path count;
//! * sparse vs dense catalog bytes (the dense side computed in `u128`,
//!   because past the dense limit it *cannot* be allocated);
//! * the dense build time where the dense representation is feasible, or
//!   `"infeasible"` where it is not — the configurations only the sparse
//!   pipeline can reach.
//!
//! Output: an aligned table, one per-stage timing line per observed
//! build span (`"bench": "build_stages"`, collected into the
//! `BENCH_obs.json` artifact), and one JSON line per point (`"bench":
//! "build_scaling"`), machine-readable for the benchmark trajectory.

use phe_bench::{emit, timed, RunConfig, Scale};
use phe_core::{EstimatorConfig, PathSelectivityEstimator};
use phe_datasets::schema::{narrow_chained_schema, schema_graph};
use phe_obs::span::{capture, TraceNode};
use phe_pathenum::catalog::DENSE_DOMAIN_LIMIT;
use phe_pathenum::{SelectivityCatalog, SparseCatalog};
use serde_json::{Number, Value};

struct Point {
    labels: u16,
    k: usize,
    headline: bool,
}

fn main() {
    let config = RunConfig::from_args();
    let (vertices, edges_per_label) = match config.scale {
        Scale::Ci => (1_500u32, 160u64),
        Scale::Paper => (50_000u32, 4_000u64),
    };

    let mut points: Vec<Point> = Vec::new();
    for &labels in &[8u16, 16, 32] {
        for &k in &[3usize, 4] {
            points.push(Point {
                labels,
                k,
                headline: false,
            });
        }
    }
    // The headline: a domain the dense pipeline cannot even allocate
    // (both are past DENSE_DOMAIN_LIMIT; paper scale pushes to the
    // paper's k = 6, CI keeps the sweep inside the smoke budget).
    points.push(Point {
        labels: 64,
        k: match config.scale {
            Scale::Ci => 5,
            Scale::Paper => 6,
        },
        headline: true,
    });

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_lines: Vec<String> = Vec::new();
    let mut obs_lines: Vec<String> = Vec::new();
    for point in &points {
        let schema =
            narrow_chained_schema(point.labels, point.labels as u64 * edges_per_label, 0.08);
        let graph = schema_graph(vertices, &schema, config.seed);
        let k = point.k;

        let ((sparse, sparse_secs), sparse_spans) = capture(|| {
            timed(|| SparseCatalog::compute_parallel(&graph, k, 0).expect("domain fits u48"))
        });
        let domain = sparse.len() as u64;
        let nnz = sparse.nonzero_count() as u64;
        let sparse_bytes = sparse.size_bytes() as u64;
        let plain_bytes = sparse.plain_bytes() as u64;
        let bytes_per_entry = sparse_bytes as f64 / (nnz as f64).max(1.0);
        let compression = plain_bytes as f64 / (sparse_bytes as f64).max(1.0);
        let dense_bytes = sparse.dense_bytes();
        let ratio = dense_bytes as f64 / (sparse_bytes as f64).max(1.0);

        let dense_feasible = sparse.len() <= DENSE_DOMAIN_LIMIT;
        let dense_secs = if dense_feasible {
            let (_, secs) = timed(|| SelectivityCatalog::compute(&graph, k));
            Some(secs)
        } else {
            None
        };

        // End-to-end sparse estimator build (catalog → remap → histogram),
        // with its stage spans collected for the per-stage JSON lines.
        let ((estimator, pipeline_secs), pipeline_spans) = capture(|| {
            timed(|| {
                PathSelectivityEstimator::from_sparse_catalog(
                    &graph,
                    sparse.clone(),
                    EstimatorConfig {
                        k,
                        beta: 256,
                        threads: 1,
                        retain_catalog: false,
                        retain_sparse: false,
                        ..EstimatorConfig::default()
                    },
                    std::time::Duration::ZERO,
                )
                .expect("sparse build")
            })
        });

        // One JSON line per observed stage span (`"bench": "build_stages"`),
        // collected by CI into the BENCH_obs.json artifact.
        let roots: Vec<&TraceNode> = sparse_spans.iter().chain(pipeline_spans.iter()).collect();
        for root in roots {
            for (depth, stage, duration) in root.flatten() {
                let obj = Value::Object(vec![
                    ("bench".into(), Value::string("build_stages")),
                    (
                        "labels".into(),
                        Value::Number(Number::PosInt(point.labels as u64)),
                    ),
                    ("k".into(), Value::Number(Number::PosInt(k as u64))),
                    ("stage".into(), Value::string(stage)),
                    ("depth".into(), Value::Number(Number::PosInt(depth as u64))),
                    (
                        "seconds".into(),
                        Value::Number(Number::Float(duration.as_secs_f64())),
                    ),
                ]);
                obs_lines.push(serde_json::to_string(&obj).expect("flat object"));
            }
        }

        rows.push(vec![
            format!("{}{}", point.labels, if point.headline { "*" } else { "" }),
            k.to_string(),
            domain.to_string(),
            nnz.to_string(),
            format!("{sparse_bytes}"),
            format!("{bytes_per_entry:.2}"),
            format!("{compression:.1}x"),
            format!("{dense_bytes}"),
            format!("{ratio:.1}x"),
            format!("{sparse_secs:.3}"),
            dense_secs
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "infeasible".into()),
            format!("{pipeline_secs:.3}"),
        ]);
        let obj = Value::Object(vec![
            ("bench".into(), Value::string("build_scaling")),
            (
                "labels".into(),
                Value::Number(Number::PosInt(point.labels as u64)),
            ),
            ("k".into(), Value::Number(Number::PosInt(k as u64))),
            ("domain_paths".into(), Value::Number(Number::PosInt(domain))),
            ("nonzero_paths".into(), Value::Number(Number::PosInt(nnz))),
            (
                "sparse_bytes".into(),
                Value::Number(Number::PosInt(sparse_bytes)),
            ),
            (
                "sparse_plain_bytes".into(),
                Value::Number(Number::PosInt(plain_bytes)),
            ),
            (
                "bytes_per_entry".into(),
                Value::Number(Number::Float(bytes_per_entry)),
            ),
            (
                "plain_over_compressed".into(),
                Value::Number(Number::Float(compression)),
            ),
            (
                "dense_bytes".into(),
                Value::Number(Number::PosInt(dense_bytes.min(u64::MAX as u128) as u64)),
            ),
            (
                "dense_over_sparse".into(),
                Value::Number(Number::Float(ratio)),
            ),
            (
                "sparse_build_seconds".into(),
                Value::Number(Number::Float(sparse_secs)),
            ),
            (
                "dense_build_seconds".into(),
                dense_secs.map_or(Value::Null, |s| Value::Number(Number::Float(s))),
            ),
            ("dense_feasible".into(), Value::Bool(dense_feasible)),
            (
                "pipeline_seconds".into(),
                Value::Number(Number::Float(pipeline_secs)),
            ),
            (
                "ordering_seconds".into(),
                Value::Number(Number::Float(
                    estimator.build_stats().ordering_time.as_secs_f64(),
                )),
            ),
            (
                "histogram_seconds".into(),
                Value::Number(Number::Float(
                    estimator.build_stats().histogram_time.as_secs_f64(),
                )),
            ),
            (
                "retained_bytes".into(),
                Value::Number(Number::PosInt(estimator.size_bytes() as u64)),
            ),
        ]);
        json_lines.push(serde_json::to_string(&obj).expect("flat object"));
    }

    emit(
        "Sparse-first build scaling (* = dense-infeasible headline)",
        &[
            "|L|",
            "k",
            "domain",
            "nnz",
            "sparse B",
            "B/entry",
            "vs plain",
            "dense B",
            "ratio",
            "sparse s",
            "dense s",
            "pipeline s",
        ],
        &rows,
        config.csv,
    );
    // Per-stage timings first, in their own section, so the trajectory
    // collectors can split the two streams with a line-oriented filter.
    println!("\n--- OBS JSON ---");
    for line in &obs_lines {
        println!("{line}");
    }
    println!("\n--- JSON ---");
    for line in &json_lines {
        println!("{line}");
    }
}
