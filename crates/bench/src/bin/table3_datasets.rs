//! Reproduces the paper's **Table 3** (dataset statistics) from the
//! facsimile generators, plus the structural diagnostics that justify the
//! real-data substitutions (per-label skew and label-correlation score —
//! see `DESIGN.md` §1.5).

use phe_bench::{emit, timed, RunConfig, Scale};
use phe_graph::GraphStats;

fn main() {
    let config = RunConfig::from_args();
    let ((datasets, stats), secs) = timed(|| {
        let datasets = config.datasets();
        let stats: Vec<GraphStats> = datasets
            .iter()
            .map(|d| GraphStats::compute(&d.graph))
            .collect();
        (datasets, stats)
    });

    let rows: Vec<Vec<String>> = datasets
        .iter()
        .zip(&stats)
        .map(|(d, s)| {
            vec![
                d.name.to_string(),
                s.label_count.to_string(),
                s.vertex_count.to_string(),
                s.edge_count.to_string(),
                if d.real_world { "yes" } else { "no" }.to_string(),
                format!("{:.2}", s.mean_out_degree),
                format!("{:.3}", s.label_independence_correlation()),
            ]
        })
        .collect();

    emit(
        &format!(
            "Table 3 — datasets ({:?} scale, generated in {secs:.1}s)",
            config.scale
        ),
        &[
            "Dataset",
            "#Edge Labels",
            "#Vertices",
            "#Edges",
            "Real world data",
            "mean out-deg",
            "label-indep corr",
        ],
        &rows,
        config.csv,
    );

    println!();
    println!("Per-label cardinalities f(l) (the input to cardinality ranking):");
    for (d, s) in datasets.iter().zip(&stats) {
        println!("  {:<20} {:?}", d.name, s.label_frequencies);
    }

    if config.scale == Scale::Paper {
        // The facsimiles must hit the published numbers exactly.
        let expect = [
            (6, 2539, 12969),
            (8, 37374, 209068),
            (6, 12333, 147996),
            (8, 50000, 132673),
        ];
        for ((l, v, e), s) in expect.iter().zip(&stats) {
            assert_eq!((s.label_count, s.vertex_count, s.edge_count), (*l, *v, *e));
        }
        println!("\nAll four datasets match the published Table 3 sizes exactly.");
    }
}
