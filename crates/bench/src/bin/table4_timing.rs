//! Reproduces the paper's **Table 4**: average estimation execution time
//! for a V-optimal histogram under each of the five ordering methods, over
//! a halving β sweep.
//!
//! Workload: the Moreno-like dataset (6 labels; the paper's `k = 6` gives
//! the 55 986-path domain whose halving sweep is exactly the published β
//! column 27993…437). One *estimation* = ranking the query path into the
//! ordering's index space + the bucket lookup; we time the estimate of
//! every path in the domain and report the mean per-call latency.
//!
//! Expected shape vs the paper: sum-based is the slowest column (the
//! paper reports ≈ +20%; exact ratios differ — Rust vs Java, ns vs ms),
//! and β barely matters (bucket lookup is O(log β)).

use std::time::Instant;

use phe_bench::{beta_sweep, emit, timed, RunConfig};
use phe_core::eval::ordered_frequencies;
use phe_core::ordering::OrderingKind;
use phe_core::{HistogramKind, LabelPath};
use phe_histogram::PointEstimator;
use phe_pathenum::parallel::compute_parallel;

fn main() {
    let config = RunConfig::from_args();
    let k = config.k();
    let graph = config.moreno();
    eprintln!(
        "dataset: Moreno-like, {} vertices, {} edges, k = {k}",
        graph.vertex_count(),
        graph.edge_count()
    );

    let (catalog, secs) = timed(|| compute_parallel(&graph, k, 0));
    let n = catalog.len();
    eprintln!("catalog: {n} label paths in {secs:.1}s");

    // Pre-decode every query path once; the timed loop then measures pure
    // estimation (ranking + lookup), not decode overhead.
    let queries: Vec<LabelPath> = (0..n)
        .map(|i| {
            let ids = catalog.encoding().decode(i);
            LabelPath::new(&ids)
        })
        .collect();

    let betas = beta_sweep(n, 7);
    let orderings: Vec<_> = OrderingKind::PAPER_FIVE
        .iter()
        .map(|kind| (kind.name(), kind.build(&graph, &catalog, k)))
        .collect();

    let mut rows = Vec::new();
    for &beta in &betas {
        let mut row = vec![beta.to_string()];
        for (_, ordering) in &orderings {
            let ordered = ordered_frequencies(&catalog, ordering.as_ref());
            let histogram = HistogramKind::VOptimalGreedy
                .build(&ordered, beta)
                .expect("non-empty domain");
            // Warm up, then time enough rounds for ≥ ~2M estimates so the
            // per-call figure is stable.
            let rounds = (2_000_000 / queries.len()).max(1);
            let mut sink = 0.0f64;
            for q in queries.iter().take(1000) {
                sink += histogram.estimate(ordering.index_of(q) as usize);
            }
            let start = Instant::now();
            for _ in 0..rounds {
                for q in &queries {
                    sink += histogram.estimate(ordering.index_of(q) as usize);
                }
            }
            let elapsed = start.elapsed();
            std::hint::black_box(sink);
            let ns_per_call = elapsed.as_nanos() as f64 / (queries.len() * rounds) as f64;
            row.push(format!("{ns_per_call:.0}"));
        }
        rows.push(row);
    }

    let headers: Vec<&str> = std::iter::once("β")
        .chain(orderings.iter().map(|(name, _)| *name))
        .collect();
    emit(
        &format!(
            "Table 4 — average estimation time (ns per estimate; paper reports ms in Java), \
             V-optimal(greedy), {n} label paths"
        ),
        &headers,
        &rows,
        config.csv,
    );

    // Summarize the headline ratio.
    let mean_col = |col: usize| -> f64 {
        rows.iter()
            .map(|r| r[col].parse::<f64>().unwrap())
            .sum::<f64>()
            / rows.len() as f64
    };
    let native_mean: f64 = (1..=4).map(mean_col).sum::<f64>() / 4.0;
    let sum_based_mean = mean_col(5);
    println!(
        "\nsum-based mean {:.0} ns vs native orderings mean {:.0} ns → {:+.0}% \
         (paper: sum-based ≈ +20-25% slower)",
        sum_based_mean,
        native_mean,
        (sum_based_mean / native_mean - 1.0) * 100.0
    );
}
