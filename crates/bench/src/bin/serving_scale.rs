//! `serving_scale` — connection-scale serving throughput, asserted
//! in-bin.
//!
//! Three measurements over a warm-cache estimate workload on loopback:
//!
//! 1. **Connection sweep**: the event-loop server driven closed-loop at
//!    1 → 512 concurrent connections, reporting µs/request and
//!    aggregate qps per point — the scaling curve the readiness-driven
//!    rewrite exists for.
//! 2. **256-connection throughput race**: the event loop vs the
//!    thread-pool baseline (both with the same two CPU workers), each
//!    driven by 256 **open-loop** fixed-rate clients — the honest
//!    serving comparison: a closed-loop drive on a small machine is
//!    CPU-bound on the estimator and hides the fact that the pool
//!    strands every connection beyond its worker count. Gate: the
//!    event loop completes **≥ 4×** the pool's requests.
//! 3. **Single-connection batch-256 latency**: interleaved min-of-N
//!    round trips against both servers. Gate: the event loop stays
//!    within **10%** of the thread-pool baseline — connection scale
//!    must not tax the single-client path.
//!
//! Output: an aligned table plus one JSON line per measurement
//! (`"bench": "serving_scale" | "serving_scale_gate" |
//! "serving_scale_latency"`), collected by CI into the
//! `BENCH_serving_scale.json` artifact.

use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use phe_bench::{emit, RunConfig, Scale};
use phe_core::{EstimatorConfig, HistogramKind, OrderingKind, PathSelectivityEstimator};
use phe_datasets::{erdos_renyi, LabelDistribution};
use phe_graph::LabelId;
use phe_service::protocol::{PathStep, Request};
use phe_service::{
    EstimatorRegistry, ServableEstimator, Server, ServerConfig, ServiceMetrics, ThreadPoolServer,
};
use serde_json::{Number, Value};

const LABELS: u16 = 5;
const K: usize = 4;
/// Paths per request in the connection-scale drives: small enough that
/// connection handling, not estimation, dominates.
const SWEEP_BATCH: usize = 16;
/// The PR 1 latency-comparison batch.
const LATENCY_BATCH: usize = 256;

fn build_servable() -> ServableEstimator {
    let g = erdos_renyi(
        120,
        1_500,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        42,
    );
    ServableEstimator::from_estimator(
        PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: K,
                beta: 64,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap(),
    )
}

fn registry_with_warm_cache() -> Arc<EstimatorRegistry> {
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(metrics.cache_counters(), 64 * 1024));
    registry.register("main", build_servable());
    // Warm the LRU with every path any request below will ask.
    let generation = registry.get("main").unwrap();
    let warm: Vec<Vec<LabelId>> = (0..LATENCY_BATCH.max(SWEEP_BATCH))
        .map(query_path)
        .collect();
    generation.estimate_id_batch(&warm).unwrap();
    registry
}

fn query_path(i: usize) -> Vec<LabelId> {
    let len = 1 + i % K;
    (0..len)
        .map(|j| LabelId(((i * 7 + j * 13) % LABELS as usize) as u16))
        .collect()
}

fn request_line(batch: usize) -> String {
    Request::Estimate {
        estimator: "main".to_owned(),
        paths: (0..batch)
            .map(|i| query_path(i).iter().map(|l| PathStep::Id(l.0)).collect())
            .collect(),
    }
    .to_line()
}

/// The server configuration both backends race under: two CPU workers,
/// headroom everywhere else (every client shares 127.0.0.1, so the
/// per-peer quota must not see the whole drive as one throttled
/// client).
fn race_config(addr_port: u16) -> ServerConfig {
    ServerConfig {
        addr: format!("127.0.0.1:{addr_port}"),
        workers: 2,
        allow_load: false,
        shards: 2,
        max_connections: 2048,
        max_inflight_per_client: 8192,
        ..ServerConfig::default()
    }
}

/// What one request attempt came back with.
enum Outcome {
    /// An `"ok":true` response line.
    Served,
    /// An `"ok":false` line — e.g. the thread pool's backlog refusal.
    Refused,
    /// No response within the read timeout.
    TimedOut,
}

/// One blocking NDJSON round trip: sends `line`, reads one response line.
fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> std::io::Result<Outcome> {
    writer.write_all(line.as_bytes())?;
    writer.write_all(b"\n")?;
    let mut response = String::new();
    match reader.read_line(&mut response) {
        Ok(0) => Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "server closed the connection",
        )),
        Ok(_) if response.contains("\"ok\":true") => Ok(Outcome::Served),
        Ok(_) => Ok(Outcome::Refused),
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            Ok(Outcome::TimedOut)
        }
        Err(e) => Err(e),
    }
}

fn connect(
    addr: std::net::SocketAddr,
    read_timeout: Duration,
) -> (BufReader<TcpStream>, TcpStream) {
    let stream = TcpStream::connect(addr).expect("bench client connects");
    stream
        .set_read_timeout(Some(read_timeout))
        .expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    let writer = stream.try_clone().expect("clone stream");
    (BufReader::new(stream), writer)
}

/// Closed-loop drive: `connections` clients each fire
/// `total / connections` requests back to back; returns wall seconds.
fn closed_loop(addr: std::net::SocketAddr, connections: usize, total: usize) -> f64 {
    let line = Arc::new(request_line(SWEEP_BATCH));
    let per_client = total / connections;
    let barrier = Arc::new(Barrier::new(connections + 1));
    // The scope joins every client before returning, so elapsed-at-exit
    // is the wall time for the whole drive.
    let t0 = std::thread::scope(|scope| {
        for _ in 0..connections {
            let line = Arc::clone(&line);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let (mut reader, mut writer) = connect(addr, Duration::from_secs(30));
                barrier.wait(); // everyone connected
                barrier.wait(); // clock started
                for _ in 0..per_client {
                    assert!(
                        matches!(
                            roundtrip(&mut reader, &mut writer, &line)
                                .expect("closed-loop roundtrip"),
                            Outcome::Served
                        ),
                        "closed-loop request refused or timed out"
                    );
                }
            });
        }
        barrier.wait();
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    t0.elapsed().as_secs_f64()
}

/// Open-loop drive: `connections` clients each pace requests at
/// `interval` for `window`, never sending a new request before the
/// previous response arrived (one in flight per connection, like a real
/// optimizer client), giving up on a connection whose response does not
/// arrive within the window. Returns completed requests.
fn open_loop(
    addr: std::net::SocketAddr,
    connections: usize,
    interval: Duration,
    window: Duration,
) -> u64 {
    let line = Arc::new(request_line(SWEEP_BATCH));
    let completed = Arc::new(AtomicU64::new(0));
    let barrier = Arc::new(Barrier::new(connections));
    std::thread::scope(|scope| {
        for _ in 0..connections {
            let line = Arc::clone(&line);
            let completed = Arc::clone(&completed);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                // The read timeout doubles as the give-up horizon for a
                // stranded connection (thread-pool backlog).
                let (mut reader, mut writer) = connect(addr, window);
                barrier.wait();
                let start = Instant::now();
                let mut tick = 0u32;
                loop {
                    let due = start + interval * tick;
                    let now = Instant::now();
                    if now >= start + window {
                        break;
                    }
                    if due > now {
                        std::thread::sleep(due - now);
                    }
                    match roundtrip(&mut reader, &mut writer, &line) {
                        Ok(Outcome::Served) => {
                            if Instant::now() < start + window {
                                // ORDERING: statistics counter read only
                                // after scope join (which synchronizes).
                                completed.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // Refused at the backlog, stranded past the
                        // window, or hung up on: this connection is out
                        // of the race — exactly the capacity difference
                        // the gate measures.
                        Ok(Outcome::Refused) | Ok(Outcome::TimedOut) | Err(_) => break,
                    }
                    tick += 1;
                }
            });
        }
    });
    // ORDERING: thread::scope joined every incrementing worker above.
    completed.load(Ordering::Relaxed)
}

fn main() {
    let config = RunConfig::from_args();
    let (sweep, race_connections, window) = match config.scale {
        Scale::Ci => (
            vec![1usize, 4, 16, 64, 256, 512],
            256usize,
            Duration::from_millis(1500),
        ),
        Scale::Paper => (
            vec![1, 4, 16, 64, 256, 512, 1024],
            256,
            Duration::from_secs(5),
        ),
    };

    let mut rows: Vec<Vec<String>> = Vec::new();
    let mut json_lines: Vec<String> = Vec::new();

    // ---- 1. connection sweep (event loop, closed loop) ----------------
    let registry = registry_with_warm_cache();
    let metrics = Arc::new(ServiceMetrics::new());
    let server = Server::start(Arc::clone(&registry), Arc::clone(&metrics), race_config(0))
        .expect("event-loop server starts");
    let addr = server.local_addr();
    for &connections in &sweep {
        let total = 2048usize.max(connections * 4) / connections * connections;
        let secs = closed_loop(addr, connections, total);
        let qps = total as f64 / secs.max(1e-9);
        let us_per_request = secs * 1e6 / total as f64;
        rows.push(vec![
            format!("sweep:{connections}"),
            total.to_string(),
            format!("{us_per_request:.1}"),
            format!("{qps:.0}"),
        ]);
        json_lines.push(
            serde_json::to_string(&Value::Object(vec![
                ("bench".into(), Value::string("serving_scale")),
                (
                    "connections".into(),
                    Value::Number(Number::PosInt(connections as u64)),
                ),
                (
                    "requests".into(),
                    Value::Number(Number::PosInt(total as u64)),
                ),
                (
                    "us_per_request".into(),
                    Value::Number(Number::Float(us_per_request)),
                ),
                ("qps".into(), Value::Number(Number::Float(qps))),
            ]))
            .expect("flat object"),
        );
    }
    server.shutdown();

    // ---- 2. 256-connection open-loop race ------------------------------
    // ~100 req/s per client; completions are what count.
    let interval = Duration::from_millis(10);
    let event_registry = registry_with_warm_cache();
    let event_server = Server::start(
        event_registry,
        Arc::new(ServiceMetrics::new()),
        race_config(0),
    )
    .expect("event-loop server starts");
    let event_completed = open_loop(
        event_server.local_addr(),
        race_connections,
        interval,
        window,
    );
    event_server.shutdown();

    let pool_registry = registry_with_warm_cache();
    let pool_server = ThreadPoolServer::start_with(
        pool_registry,
        Arc::new(ServiceMetrics::new()),
        None,
        race_config(0),
    )
    .expect("thread-pool server starts");
    let pool_completed = open_loop(pool_server.local_addr(), race_connections, interval, window);
    pool_server.shutdown();

    let window_secs = window.as_secs_f64();
    let event_qps = event_completed as f64 / window_secs;
    let pool_qps = pool_completed as f64 / window_secs;
    let speedup = event_completed as f64 / (pool_completed as f64).max(1.0);
    // The tentpole's acceptance gate, enforced where the numbers are
    // made: at 256 connections the event loop must complete ≥ 4× the
    // thread-pool baseline's requests.
    assert!(
        speedup >= 4.0,
        "event loop must complete ≥ 4x the thread pool at {race_connections} \
         connections, got {speedup:.2}x ({event_completed} vs {pool_completed})"
    );
    rows.push(vec![
        format!("race:event:{race_connections}"),
        event_completed.to_string(),
        String::new(),
        format!("{event_qps:.0}"),
    ]);
    rows.push(vec![
        format!("race:pool:{race_connections}"),
        pool_completed.to_string(),
        String::new(),
        format!("{pool_qps:.0}"),
    ]);
    json_lines.push(
        serde_json::to_string(&Value::Object(vec![
            ("bench".into(), Value::string("serving_scale_gate")),
            (
                "connections".into(),
                Value::Number(Number::PosInt(race_connections as u64)),
            ),
            (
                "event_completed".into(),
                Value::Number(Number::PosInt(event_completed)),
            ),
            (
                "pool_completed".into(),
                Value::Number(Number::PosInt(pool_completed)),
            ),
            ("event_qps".into(), Value::Number(Number::Float(event_qps))),
            ("pool_qps".into(), Value::Number(Number::Float(pool_qps))),
            ("speedup".into(), Value::Number(Number::Float(speedup))),
        ]))
        .expect("flat object"),
    );

    // ---- 3. single-connection batch-256 latency ------------------------
    let event_registry = registry_with_warm_cache();
    let event_server = Server::start(
        event_registry,
        Arc::new(ServiceMetrics::new()),
        race_config(0),
    )
    .expect("event-loop server starts");
    let pool_registry = registry_with_warm_cache();
    let pool_server = ThreadPoolServer::start_with(
        pool_registry,
        Arc::new(ServiceMetrics::new()),
        None,
        race_config(0),
    )
    .expect("thread-pool server starts");

    let line = request_line(LATENCY_BATCH);
    let (mut event_reader, mut event_writer) =
        connect(event_server.local_addr(), Duration::from_secs(10));
    let (mut pool_reader, mut pool_writer) =
        connect(pool_server.local_addr(), Duration::from_secs(10));
    let one = |reader: &mut BufReader<TcpStream>, writer: &mut TcpStream| {
        let t0 = Instant::now();
        assert!(matches!(
            roundtrip(reader, writer, &line).expect("latency roundtrip"),
            Outcome::Served
        ));
        t0.elapsed()
    };
    for _ in 0..5 {
        one(&mut event_reader, &mut event_writer);
        one(&mut pool_reader, &mut pool_writer);
    }
    // Interleaved min-of-N: the minimum of many short trials converges
    // on each backend's true cost, robust to scheduler noise.
    let mut event_min = Duration::MAX;
    let mut pool_min = Duration::MAX;
    for _ in 0..60 {
        event_min = event_min.min(one(&mut event_reader, &mut event_writer));
        pool_min = pool_min.min(one(&mut pool_reader, &mut pool_writer));
    }
    drop((event_reader, event_writer, pool_reader, pool_writer));
    event_server.shutdown();
    pool_server.shutdown();

    let event_us = event_min.as_secs_f64() * 1e6;
    let pool_us = pool_min.as_secs_f64() * 1e6;
    let ratio = event_us / pool_us.max(1e-9);
    // The regression gate: connection scale must not tax the
    // single-client batch path by more than 10%.
    assert!(
        ratio <= 1.10,
        "event-loop batch-{LATENCY_BATCH} latency must stay within 10% of the \
         thread pool, got {:.1}% ({event_us:.1} vs {pool_us:.1} µs)",
        ratio * 100.0
    );
    rows.push(vec![
        format!("latency:event:batch-{LATENCY_BATCH}"),
        "1".into(),
        format!("{event_us:.1}"),
        String::new(),
    ]);
    rows.push(vec![
        format!("latency:pool:batch-{LATENCY_BATCH}"),
        "1".into(),
        format!("{pool_us:.1}"),
        String::new(),
    ]);
    json_lines.push(
        serde_json::to_string(&Value::Object(vec![
            ("bench".into(), Value::string("serving_scale_latency")),
            (
                "batch".into(),
                Value::Number(Number::PosInt(LATENCY_BATCH as u64)),
            ),
            ("event_us".into(), Value::Number(Number::Float(event_us))),
            ("pool_us".into(), Value::Number(Number::Float(pool_us))),
            ("ratio".into(), Value::Number(Number::Float(ratio))),
        ]))
        .expect("flat object"),
    );

    emit(
        "Connection-scale serving (event loop vs thread pool)",
        &["what", "requests | conns", "µs/request", "qps"],
        &rows,
        config.csv,
    );
    println!("\n--- JSON ---");
    for line in &json_lines {
        println!("{line}");
    }
}
