//! Ablation A — how much does the V-optimal construction mode matter?
//!
//! The paper says "V-optimal histogram" without an algorithm; the exact
//! dynamic program is `O(N²β)` and cannot have run at the paper's scale
//! (see `DESIGN.md` §1.3). This experiment quantifies what our choice of
//! the greedy-merge approximation costs: on a domain where the exact DP
//! *is* feasible, it compares SSE and mean error rate of every histogram
//! family under the sum-based ordering, plus construction time.

use phe_bench::{beta_sweep, emit, timed, RunConfig};
use phe_core::eval::{evaluate_configuration, ordered_frequencies};
use phe_core::ordering::OrderingKind;
use phe_core::HistogramKind;
use phe_histogram::builder::{EquiDepth, EquiWidth, HistogramBuilder, VOptimal};
use phe_pathenum::parallel::compute_parallel;

fn main() {
    let config = RunConfig::from_args();
    // Cap k so the exact DP stays feasible (domain ≤ 8192).
    let k = config.k_override.unwrap_or(4).min(4);
    let graph = config.moreno();
    let catalog = compute_parallel(&graph, k, 0);
    let ordering = OrderingKind::SumBased.build(&graph, &catalog, k);
    let ordered = ordered_frequencies(&catalog, ordering.as_ref());
    let n = ordered.len();
    eprintln!("domain: {n} paths (k = {k}), sum-based ordering");

    let kinds: [(HistogramKind, &dyn HistogramBuilder); 5] = [
        (
            HistogramKind::VOptimalExact,
            &VOptimal {
                mode: phe_histogram::VOptimalMode::Exact { limit: 8192 },
            },
        ),
        (HistogramKind::VOptimalGreedy, &VOptimal::greedy()),
        (HistogramKind::VOptimalMaxDiff, &VOptimal::maxdiff()),
        (HistogramKind::EquiWidth, &EquiWidth),
        (HistogramKind::EquiDepth, &EquiDepth),
    ];

    let mut rows = Vec::new();
    for beta in beta_sweep(n, 5) {
        for (kind, builder) in &kinds {
            let (histogram, build_secs) = timed(|| builder.build(&ordered, beta));
            let histogram = match histogram {
                Ok(h) => h,
                Err(e) => {
                    eprintln!("{}: skipped at β={beta}: {e}", kind.name());
                    continue;
                }
            };
            let sse = histogram.sse(&ordered);
            let report = evaluate_configuration(&catalog, ordering.as_ref(), *kind, beta).unwrap();
            rows.push(vec![
                beta.to_string(),
                kind.name().to_string(),
                format!("{sse:.0}"),
                format!("{:.4}", report.mean_abs_error_rate),
                format!("{:.3}", report.median_q_error),
                format!("{:.1}", build_secs * 1e3),
            ]);
        }
    }

    emit(
        "Ablation A — V-optimal construction modes (sum-based ordering, Moreno-like)",
        &[
            "β",
            "histogram",
            "SSE",
            "mean |err|",
            "median q-err",
            "build ms",
        ],
        &rows,
        config.csv,
    );

    println!(
        "\nReading guide: v-optimal-exact lower-bounds SSE by definition; the gap \
         to v-optimal-greedy is the price of the paper-scale approximation."
    );
}
