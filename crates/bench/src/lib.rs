#![warn(missing_docs)]

//! # phe-bench — shared harness for the experiment binaries
//!
//! Each binary under `src/bin/` regenerates one table or figure of the
//! paper (see `DESIGN.md` §2 for the full index). This library holds what
//! they share: scale handling, dataset loading, β sweeps, and text/CSV
//! table output.
//!
//! All binaries accept:
//!
//! * `--scale ci|paper` — `ci` (default) runs reduced dataset sizes and
//!   `k` so a full sweep finishes in seconds; `paper` uses the exact
//!   Table 3 sizes and `k = 6` (minutes to hours for the larger sweeps);
//! * `--seed N` — RNG seed for dataset generation (default 42);
//! * `--csv` — additionally emit machine-readable CSV to stdout;
//! * `--k N` — override the maximum path length.

use std::time::Instant;

use phe_datasets::Dataset;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced sizes for smoke runs and CI.
    Ci,
    /// The paper's exact configuration.
    Paper,
}

/// Parsed command-line configuration shared by all binaries.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Selected scale.
    pub scale: Scale,
    /// Dataset seed.
    pub seed: u64,
    /// Whether to emit CSV alongside the text table.
    pub csv: bool,
    /// Optional `k` override.
    pub k_override: Option<usize>,
}

impl RunConfig {
    /// Parses `std::env::args`, exiting with usage text on error.
    pub fn from_args() -> RunConfig {
        let mut config = RunConfig {
            scale: Scale::Ci,
            seed: 42,
            csv: false,
            k_override: None,
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    match args.get(i).map(String::as_str) {
                        Some("ci") => config.scale = Scale::Ci,
                        Some("paper") => config.scale = Scale::Paper,
                        other => usage(&format!("bad --scale value {other:?}")),
                    }
                }
                "--seed" => {
                    i += 1;
                    config.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("bad --seed value"));
                }
                "--k" => {
                    i += 1;
                    let k = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("bad --k value"));
                    config.k_override = Some(k);
                }
                "--csv" => config.csv = true,
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown argument {other:?}")),
            }
            i += 1;
        }
        config
    }

    /// The default maximum path length at this scale (paper: 6).
    pub fn k(&self) -> usize {
        self.k_override.unwrap_or(match self.scale {
            Scale::Ci => 4,
            Scale::Paper => 6,
        })
    }

    /// Loads the four paper datasets at this configuration's scale.
    ///
    /// CI scales are chosen so the densest dataset's catalog stays cheap:
    /// relation sizes in the ER graph approach `|V|²` at depth `k`, so ER
    /// is scaled hardest.
    pub fn datasets(&self) -> Vec<Dataset> {
        match self.scale {
            Scale::Paper => phe_datasets::paper_datasets(1.0, self.seed),
            Scale::Ci => vec![
                named(
                    "Moreno health",
                    true,
                    phe_datasets::moreno_health_like_scaled(0.25, self.seed),
                ),
                named(
                    "DBpedia (subgraph)",
                    true,
                    phe_datasets::dbpedia_like_scaled(0.04, self.seed + 1),
                ),
                named(
                    "SNAP-ER",
                    false,
                    phe_datasets::snap_er_scaled(0.03, self.seed + 2),
                ),
                named(
                    "SNAP-FF",
                    false,
                    phe_datasets::snap_ff_scaled(0.03, self.seed + 3),
                ),
            ],
        }
    }

    /// The Moreno-like dataset alone (Table 4 / Figure 1 workloads).
    pub fn moreno(&self) -> phe_graph::Graph {
        match self.scale {
            Scale::Paper => phe_datasets::moreno_health_like(self.seed),
            Scale::Ci => phe_datasets::moreno_health_like_scaled(0.25, self.seed),
        }
    }
}

fn named(name: &'static str, real_world: bool, graph: phe_graph::Graph) -> Dataset {
    Dataset {
        name,
        real_world,
        graph,
    }
}

fn usage(error: &str) -> ! {
    if !error.is_empty() {
        eprintln!("error: {error}\n");
    }
    eprintln!(
        "usage: <binary> [--scale ci|paper] [--seed N] [--k N] [--csv]\n\
         \n\
         --scale ci     reduced datasets, k=4 (default; seconds)\n\
         --scale paper  Table 3 sizes, k=6 (minutes or more)\n\
         --seed N       dataset generation seed (default 42)\n\
         --k N          override maximum path length\n\
         --csv          also print CSV rows"
    );
    std::process::exit(2)
}

/// The paper's Table 4 β sweep: halving from `n/2` for `levels` levels
/// (paper: 27993 down to 437 over a 55 996-path domain).
pub fn beta_sweep(domain_size: usize, levels: usize) -> Vec<usize> {
    (1..=levels).map(|i| (domain_size >> i).max(1)).collect()
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders CSV (quoting only what needs it).
pub fn render_csv(headers: &[&str], rows: &[Vec<String>]) -> String {
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_owned()
        }
    };
    let mut out = String::new();
    out.push_str(
        &headers
            .iter()
            .map(|h| quote(h))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push('\n');
    for row in rows {
        out.push_str(&row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(","));
        out.push('\n');
    }
    out
}

/// Prints a titled table, optionally followed by CSV.
pub fn emit(title: &str, headers: &[&str], rows: &[Vec<String>], csv: bool) {
    println!("\n== {title} ==\n");
    print!("{}", render_table(headers, rows));
    if csv {
        println!("\n--- CSV ---");
        print!("{}", render_csv(headers, rows));
    }
}

/// Times a closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let result = f();
    (result, start.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_sweep_reproduces_table4_budgets() {
        // Σ_{i=1..6} 6^i = 55 986; halving it seven times yields *exactly*
        // the paper's Table 4 β column (27993 … 437) — strong evidence the
        // paper's "55996 label paths" is a typo for 55 986.
        assert_eq!(
            beta_sweep(55_986, 7),
            vec![27993, 13996, 6998, 3499, 1749, 874, 437]
        );
        assert_eq!(beta_sweep(10, 5), vec![5, 2, 1, 1, 1]);
    }

    #[test]
    fn table_rendering_aligns() {
        let rows = vec![
            vec!["a".into(), "1".into()],
            vec!["bbbb".into(), "22".into()],
        ];
        let t = render_table(&["name", "value"], &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].ends_with("22"));
    }

    #[test]
    fn csv_quotes_commas() {
        let rows = vec![vec!["a,b".into(), "x\"y".into()]];
        let c = render_csv(&["h1", "h2"], &rows);
        assert!(c.contains("\"a,b\""));
        assert!(c.contains("\"x\"\"y\""));
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
