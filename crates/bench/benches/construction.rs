//! Histogram construction cost per builder — supports the Ablation A
//! discussion (exact DP vs greedy merge vs the cheap heuristics).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phe_core::eval::ordered_frequencies;
use phe_core::ordering::OrderingKind;
use phe_histogram::builder::{EquiDepth, EquiWidth, HistogramBuilder, VOptimal};
use phe_pathenum::SelectivityCatalog;

fn bench_construction(c: &mut Criterion) {
    let graph = phe_datasets::moreno_health_like_scaled(0.25, 42);
    let k = 4;
    let catalog = SelectivityCatalog::compute(&graph, k);
    let ordering = OrderingKind::SumBased.build(&graph, &catalog, k);
    let ordered = ordered_frequencies(&catalog, ordering.as_ref());
    let beta = ordered.len() / 16;

    let builders: Vec<(&str, Box<dyn HistogramBuilder>)> = vec![
        ("equi-width", Box::new(EquiWidth)),
        ("equi-depth", Box::new(EquiDepth)),
        ("v-optimal-greedy", Box::new(VOptimal::greedy())),
        ("v-optimal-maxdiff", Box::new(VOptimal::maxdiff())),
        ("v-optimal-exact", Box::new(VOptimal::exact())),
    ];

    let mut group = c.benchmark_group("construction");
    group.sample_size(10);
    for (name, builder) in &builders {
        group.bench_function(BenchmarkId::from_parameter(*name), |b| {
            b.iter(|| builder.build(&ordered, beta).unwrap().bucket_count())
        });
    }
    group.finish();

    // The other construction-time cost: permuting frequencies through the
    // unranking function (where sum-based pays again).
    let mut permute = c.benchmark_group("ordered_frequencies");
    permute.sample_size(10);
    for kind in [OrderingKind::NumCard, OrderingKind::SumBased] {
        let ordering = kind.build(&graph, &catalog, k);
        permute.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| ordered_frequencies(&catalog, ordering.as_ref()).len())
        });
    }
    permute.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_construction
}
criterion_main!(benches);
