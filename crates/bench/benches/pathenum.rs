//! Catalog computation strategies (Ablation C): shared-prefix trie DFS
//! vs independent per-path evaluation vs the source-partitioned parallel
//! variant.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phe_datasets::{erdos_renyi, LabelDistribution};
use phe_pathenum::{naive, parallel, SelectivityCatalog};

fn bench_catalog(c: &mut Criterion) {
    let graph = erdos_renyi(200, 1200, 4, LabelDistribution::Uniform, 42);
    let k = 3;

    let mut group = c.benchmark_group("catalog");
    group.sample_size(10);
    group.bench_function(BenchmarkId::from_parameter("trie-dfs"), |b| {
        b.iter(|| SelectivityCatalog::compute(&graph, k).total_mass())
    });
    group.bench_function(BenchmarkId::from_parameter("naive-per-path"), |b| {
        b.iter(|| naive::compute_catalog_naive(&graph, k).total_mass())
    });
    group.bench_function(BenchmarkId::from_parameter("parallel-2"), |b| {
        b.iter(|| parallel::compute_parallel(&graph, k, 2).total_mass())
    });
    group.finish();

    // Relation composition in isolation.
    let mut compose = c.benchmark_group("compose");
    compose.sample_size(20);
    let rel = phe_pathenum::PathRelation::from_label(&graph, phe_graph::LabelId(0));
    compose.bench_function(BenchmarkId::from_parameter("one-step"), |b| {
        let mut scratch = phe_graph::FixedBitSet::new(graph.vertex_count());
        b.iter(|| {
            rel.compose(&graph, phe_graph::LabelId(1), &mut scratch)
                .pair_count()
        })
    });
    compose.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_catalog
}
criterion_main!(benches);
