//! Criterion counterpart of the paper's Table 4: per-estimate latency
//! under each ordering method, V-optimal (greedy) histogram.
//!
//! The paper's claim to verify: sum-based estimation is measurably slower
//! than the native orderings (≈ +20% in their Java implementation),
//! because its ranking function runs the three-stage group search instead
//! of an O(k) positional computation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phe_core::eval::ordered_frequencies;
use phe_core::ordering::OrderingKind;
use phe_core::{HistogramKind, LabelPath};
use phe_histogram::PointEstimator;
use phe_pathenum::SelectivityCatalog;

fn bench_estimation(c: &mut Criterion) {
    let graph = phe_datasets::moreno_health_like_scaled(0.25, 42);
    let k = 4;
    let catalog = SelectivityCatalog::compute(&graph, k);
    let n = catalog.len();
    let beta = n / 8;

    // A fixed batch of query paths spread over the domain.
    let queries: Vec<LabelPath> = (0..n)
        .step_by(7)
        .map(|i| LabelPath::new(&catalog.encoding().decode(i)))
        .collect();

    let mut group = c.benchmark_group("estimation");
    group.sample_size(20);
    for kind in OrderingKind::ALL {
        let ordering = kind.build(&graph, &catalog, k);
        let ordered = ordered_frequencies(&catalog, ordering.as_ref());
        let histogram = HistogramKind::VOptimalGreedy.build(&ordered, beta).unwrap();
        group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for q in &queries {
                    acc += histogram.estimate(ordering.index_of(q) as usize);
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_estimation
}
criterion_main!(benches);
