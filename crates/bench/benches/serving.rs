//! Serving-path benchmarks for `phe-service`: what batching and the LRU
//! estimate cache buy at the request level.
//!
//! Measured at the protocol-line layer (`Request::parse` → registry →
//! validate → batch estimate → response serialization), i.e. everything a
//! request costs except the socket, so the numbers isolate the serving
//! subsystem:
//!
//! * `request/single-path` vs `request/batch-256`: per-request cost when a
//!   request carries 1 vs 256 paths — the amortization batching exists
//!   for. Per-path throughput for the batch is the reported time ÷ 256;
//!   the acceptance target is batched ≥ 5× single-request per-path
//!   throughput on a warm cache.
//! * `cache/warm` vs `cache/cold`: per-batch estimate latency when every
//!   lookup hits the sharded LRU vs when a deliberately tiny cache forces
//!   every lookup through the sum-based three-stage unranking + histogram
//!   walk (plus insert/evict).
//! * `tcp/single-path` vs `tcp/batch-256`: the same comparison over a
//!   real loopback connection — the configuration `phe serve` actually
//!   runs, where each request additionally pays two syscall round trips.
//!   This is where batching's amortization dominates.
//!
//! Connection-*scale* serving (1 → 512 concurrent connections, the
//! event loop vs thread-pool race, and the in-bin throughput/latency
//! acceptance gates) lives in the `serving_scale` binary
//! (`src/bin/serving_scale.rs`), which CI runs and collects into the
//! `BENCH_serving_scale.json` artifact.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use phe_core::{EstimatorConfig, HistogramKind, LabelPath, OrderingKind, PathSelectivityEstimator};
use phe_datasets::{erdos_renyi, LabelDistribution};
use phe_graph::LabelId;
use phe_service::protocol::{ok_response, PathStep, Request};
use phe_service::{
    EstimatorRegistry, ServableEstimator, Server, ServerConfig, ServiceClient, ServiceMetrics,
};
use serde_json::{Number, Value};

const LABELS: u16 = 5;
const K: usize = 4;
const BATCH: usize = 256;

fn build_servable() -> ServableEstimator {
    let g = erdos_renyi(
        120,
        1_500,
        LABELS,
        LabelDistribution::Zipf { exponent: 1.0 },
        42,
    );
    ServableEstimator::from_estimator(
        PathSelectivityEstimator::build(
            &g,
            EstimatorConfig {
                k: K,
                beta: 64,
                ordering: OrderingKind::SumBased,
                histogram: HistogramKind::VOptimalGreedy,
                threads: 1,
                retain_catalog: false,
                retain_sparse: false,
            },
        )
        .unwrap(),
    )
}

fn registry_with_cache(cache_capacity: usize) -> Arc<EstimatorRegistry> {
    let metrics = Arc::new(ServiceMetrics::new());
    let registry = Arc::new(EstimatorRegistry::new(
        metrics.cache_counters(),
        cache_capacity,
    ));
    registry.register("main", build_servable());
    registry
}

/// A fixed batch of paths spread over the k ≤ 4 domain.
fn query_paths() -> Vec<LabelPath> {
    let mut paths = Vec::with_capacity(BATCH);
    let mut i = 0u64;
    while paths.len() < BATCH {
        let len = 1 + (i % K as u64) as usize;
        let labels: Vec<LabelId> = (0..len)
            .map(|j| LabelId(((i * 7 + j as u64 * 13) % LABELS as u64) as u16))
            .collect();
        paths.push(LabelPath::new(&labels));
        i += 1;
    }
    paths
}

/// One full request at the protocol layer: parse, dispatch, serialize.
fn serve_line(registry: &EstimatorRegistry, line: &str) -> usize {
    let Ok(Request::Estimate { estimator, paths }) = Request::parse(line) else {
        panic!("bench request must parse");
    };
    let generation = registry.get(&estimator).expect("estimator registered");
    let servable = generation.estimator();
    let id_paths: Vec<Vec<LabelId>> = paths
        .iter()
        .map(|steps| {
            steps
                .iter()
                .map(|s| match s {
                    PathStep::Id(id) => LabelId(*id),
                    PathStep::Name(n) => servable.resolve(n).unwrap(),
                })
                .collect()
        })
        .collect();
    let estimates = generation.estimate_id_batch(&id_paths).unwrap();
    // Serialize the response exactly like the server's estimate handler.
    let response = ok_response(vec![
        (
            "version".into(),
            Value::Number(Number::PosInt(generation.version())),
        ),
        (
            "estimates".into(),
            Value::Array(
                estimates
                    .into_iter()
                    .map(|e| Value::Number(Number::Float(e)))
                    .collect(),
            ),
        ),
    ]);
    response.len()
}

/// [`serve_line`] plus exactly the per-request metrics the real server
/// records: the op counter lookup and the request/latency observation.
fn serve_line_instrumented(
    registry: &EstimatorRegistry,
    metrics: &ServiceMetrics,
    line: &str,
) -> usize {
    let t0 = std::time::Instant::now();
    metrics.record_op("estimate");
    let len = serve_line(registry, line);
    metrics.record_request(BATCH, t0.elapsed(), true);
    len
}

fn request_line(paths: &[LabelPath]) -> String {
    Request::Estimate {
        estimator: "main".to_owned(),
        paths: paths
            .iter()
            .map(|p| p.as_label_ids().iter().map(|l| PathStep::Id(l.0)).collect())
            .collect(),
    }
    .to_line()
}

fn bench_batching(c: &mut Criterion) {
    let registry = registry_with_cache(64 * 1024);
    let paths = query_paths();

    // Warm the cache with every path the requests will ask for.
    registry.get("main").unwrap().estimate_batch(&paths);

    let single_lines: Vec<String> = paths
        .iter()
        .map(|p| request_line(std::slice::from_ref(p)))
        .collect();
    let batch_line = request_line(&paths);

    let mut group = c.benchmark_group("request");
    group.sample_size(30);
    // Per-path cost when each path is its own request.
    group.bench_function("single-path", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % single_lines.len();
            serve_line(&registry, &single_lines[i])
        })
    });
    // One request carrying all 256 paths; ÷ 256 for per-path cost.
    group.bench_function("batch-256", |b| {
        b.iter(|| serve_line(&registry, &batch_line))
    });
    group.finish();
}

fn bench_tcp(c: &mut Criterion) {
    let registry = registry_with_cache(64 * 1024);
    let metrics = Arc::new(ServiceMetrics::new());
    let paths = query_paths();
    registry.get("main").unwrap().estimate_batch(&paths);

    let server = Server::start(
        Arc::clone(&registry),
        metrics,
        ServerConfig {
            addr: "127.0.0.1:0".to_owned(),
            workers: 2,
            allow_load: false,
            ..ServerConfig::default()
        },
    )
    .expect("bench server starts");
    let mut client = ServiceClient::connect(server.local_addr()).expect("bench client connects");

    let single: Vec<Vec<PathStep>> = vec![paths[0]
        .as_label_ids()
        .iter()
        .map(|l| PathStep::Id(l.0))
        .collect()];
    let batch: Vec<Vec<PathStep>> = paths
        .iter()
        .map(|p| p.as_label_ids().iter().map(|l| PathStep::Id(l.0)).collect())
        .collect();

    let mut group = c.benchmark_group("tcp");
    group.sample_size(20);
    group.bench_function("single-path", |b| {
        b.iter(|| client.estimate("main", single.clone()).unwrap())
    });
    group.bench_function("batch-256", |b| {
        b.iter(|| client.estimate("main", batch.clone()).unwrap())
    });
    group.finish();

    drop(client);
    server.shutdown();
}

fn bench_cache(c: &mut Criterion) {
    let paths = query_paths();

    let mut group = c.benchmark_group("cache");
    group.sample_size(30);

    // Cold: a cache far smaller than the batch's distinct-path set keeps
    // evicting, so essentially every lookup misses and runs the real
    // estimator (plus insert/evict — the worst case a swap-fresh cache
    // pays).
    let cold = registry_with_cache(16);
    let cold_generation = cold.get("main").unwrap();
    group.bench_function("cold-per-batch-256", |b| {
        b.iter(|| cold_generation.estimate_batch(&paths))
    });

    // Warm: same batch against a large pre-warmed cache — pure LRU hits.
    let warm = registry_with_cache(64 * 1024);
    let warm_generation = warm.get("main").unwrap();
    warm_generation.estimate_batch(&paths);
    group.bench_function("warm-per-batch-256", |b| {
        b.iter(|| warm_generation.estimate_batch(&paths))
    });
    group.finish();
}

/// Acceptance gate, not a measurement: the metrics instrumentation on
/// the batch-256 serving path must cost ≤ 2% over an uninstrumented
/// twin. The instrumented path records what the real server records per
/// request (op counter, request/path counters, latency histogram) — a
/// registry lookup plus a handful of relaxed atomic adds against a
/// batch worth hundreds of microseconds. Interleaved min-of-N keeps the
/// comparison robust to scheduler noise: the minimum of many short runs
/// converges on the true cost of each variant.
fn assert_instrumentation_overhead(_c: &mut Criterion) {
    use std::hint::black_box;
    use std::time::{Duration, Instant};

    let registry = registry_with_cache(64 * 1024);
    let metrics = ServiceMetrics::new();
    let paths = query_paths();
    registry.get("main").unwrap().estimate_batch(&paths);
    let line = request_line(&paths);

    for _ in 0..5 {
        black_box(serve_line(&registry, &line));
        black_box(serve_line_instrumented(&registry, &metrics, &line));
    }

    const ROUNDS: usize = 60;
    const ITERS: usize = 8;
    let mut best_plain = Duration::MAX;
    let mut best_instrumented = Duration::MAX;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        for _ in 0..ITERS {
            black_box(serve_line(&registry, &line));
        }
        best_plain = best_plain.min(t0.elapsed());
        let t0 = Instant::now();
        for _ in 0..ITERS {
            black_box(serve_line_instrumented(&registry, &metrics, &line));
        }
        best_instrumented = best_instrumented.min(t0.elapsed());
    }

    let overhead = best_instrumented.as_secs_f64() / best_plain.as_secs_f64().max(1e-12) - 1.0;
    println!(
        "instrumentation overhead on batch-256: {:+.3}% \
         (plain {:.1} us, instrumented {:.1} us per {ITERS}-iter round)",
        overhead * 100.0,
        best_plain.as_secs_f64() * 1e6,
        best_instrumented.as_secs_f64() * 1e6,
    );
    assert!(
        overhead <= 0.02,
        "instrumentation costs {:.2}% on the batch-256 serving path (budget 2%)",
        overhead * 100.0
    );
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(1000));
    targets = bench_batching, bench_tcp, bench_cache, assert_instrumentation_overhead
}
criterion_main!(benches);
