//! Micro-benchmarks of the ranking (`index_of`) and unranking
//! (`path_at`) bijections per ordering — the primitive costs behind both
//! Table 4 (ranking at estimation time) and histogram construction
//! (unranking |Lk| times).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use phe_core::ordering::OrderingKind;
use phe_core::LabelPath;
use phe_pathenum::SelectivityCatalog;

fn bench_ranking(c: &mut Criterion) {
    let graph = phe_datasets::moreno_health_like_scaled(0.25, 42);
    let k = 4;
    let catalog = SelectivityCatalog::compute(&graph, k);
    let n = catalog.len() as u64;

    let queries: Vec<LabelPath> = (0..n)
        .step_by(11)
        .map(|i| LabelPath::new(&catalog.encoding().decode(i as usize)))
        .collect();

    let mut rank_group = c.benchmark_group("index_of");
    rank_group.sample_size(20);
    for kind in OrderingKind::ALL {
        let ordering = kind.build(&graph, &catalog, k);
        rank_group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0u64;
                for q in &queries {
                    acc = acc.wrapping_add(ordering.index_of(q));
                }
                acc
            })
        });
    }
    rank_group.finish();

    let mut unrank_group = c.benchmark_group("path_at");
    unrank_group.sample_size(20);
    for kind in OrderingKind::ALL {
        let ordering = kind.build(&graph, &catalog, k);
        unrank_group.bench_function(BenchmarkId::from_parameter(kind.name()), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for i in (0..n).step_by(11) {
                    acc += ordering.path_at(i).len();
                }
                acc
            })
        });
    }
    unrank_group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(std::time::Duration::from_millis(400))
        .measurement_time(std::time::Duration::from_millis(1200));
    targets = bench_ranking
}
criterion_main!(benches);
