//! Offline stand-in for `parking_lot`: `RwLock`/`Mutex` with parking_lot's
//! non-poisoning API, implemented over `std::sync`. A poisoned std lock
//! means a writer panicked mid-update; parking_lot's contract is to carry
//! on, so these wrappers recover the guard via `into_inner`.

/// Non-poisoning reader-writer lock.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }
}

/// Non-poisoning mutex.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }
}
