//! Offline stand-in for `rand` 0.8.
//!
//! Exposes the trait/type names this workspace uses (`Rng`, `SeedableRng`,
//! `rngs::StdRng`, `gen`, `gen_range`, `gen_bool`) backed by xoshiro256++
//! seeded through SplitMix64. The stream differs from real `StdRng`
//! (ChaCha12) — fine here, because every consumer treats the generator as
//! an arbitrary deterministic source: same seed ⇒ same graph, and all
//! statistical assertions are distribution-level, not value-level.

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from a range (the subset of rand's
/// `SampleRange` this workspace needs).
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reject_sample(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (reject_sample(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_sample_range!(u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Uniform draw from `[0, bound)` by rejection from the top of the u64
/// space, so small bounds have no modulo bias.
fn reject_sample<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let raw = rng.next_u64();
        if raw < zone {
            return raw % bound;
        }
    }
}

fn unit_f64(raw: u64) -> f64 {
    // 53 random mantissa bits over [0, 1).
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Values drawable from the "standard" distribution (`rng.gen()`).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for u64 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn draw<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The user-facing generator trait (rand 0.8 method names).
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Draw from the standard distribution (`f64` in `[0, 1)`, full-width
    /// integers, fair bool).
    #[allow(clippy::should_implement_trait)]
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (rand 0.8 name).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic generator: xoshiro256++ (Blackman & Vigna), state
    /// seeded via SplitMix64 per the authors' recommendation.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            lo |= f < 0.25;
            hi |= f > 0.75;
        }
        assert!(lo && hi, "draws never reached both tails");
    }
}
