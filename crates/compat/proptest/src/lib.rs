//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest surface this workspace's property
//! tests use — the [`proptest!`] macro, range/tuple/collection/map
//! strategies, `prop_assert*`, `prop_assume` — as straightforward seeded
//! random testing. No shrinking: a failing case reports the assertion
//! message and the deterministic seed, which is enough to reproduce (every
//! run uses the same seed sequence).

use std::ops::Range;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a single case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is retried.
    Reject,
    /// An assertion failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// An assertion failure.
    pub fn fail(msg: String) -> TestCaseError {
        TestCaseError::Fail(msg)
    }

    /// An assumption rejection.
    pub fn reject() -> TestCaseError {
        TestCaseError::Reject
    }
}

/// The test-case generator (SplitMix64 — plenty for test-input synthesis).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A deterministic per-test generator.
    pub fn deterministic() -> TestRng {
        TestRng {
            state: 0x5eed_cafe_f00d_d00d,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw below `bound` (> 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let raw = self.next_u64();
            if raw < zone {
                return raw % bound;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of arbitrary values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an input for a second, value-dependent strategy.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A constant strategy (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.below(span) as $t)
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $i:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0);
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Strategy combinators under the `prop::` path, as the prelude exposes.
pub mod strategies {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy for `Vec<T>` with length drawn from `len`.
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        /// `prop::collection::vec(element, len_range)`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.len.clone().generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Uniform choice from a fixed set.
        pub struct Select<T: Clone>(Vec<T>);

        /// `prop::sample::select(options)`.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "cannot select from no options");
            Select(options)
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn generate(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }
    }
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::strategies as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

/// Declares property tests; see the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (@run ($cfg:expr) $(#[test] fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                let mut passed = 0u32;
                let mut attempts = 0u32;
                while passed < config.cases {
                    attempts += 1;
                    assert!(
                        attempts <= config.cases.saturating_mul(20).max(100),
                        "too many prop_assume rejections in {}",
                        stringify!($name),
                    );
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut rng);)*
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("property {} failed on case {}: {}", stringify!($name), passed, msg);
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the enclosing property case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that fails the enclosing property case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?})",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

/// `assert_ne!` that fails the enclosing property case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {} (both: {:?})",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// Rejects the current case; the runner retries with fresh inputs.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject());
        }
    };
}
