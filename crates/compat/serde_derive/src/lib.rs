//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no crates.io access, so this proc macro
//! (written against `proc_macro` alone — no `syn`/`quote`) derives the
//! compat `serde::Serialize` / `serde::Deserialize` traits for the shapes
//! this workspace actually uses:
//!
//! * structs with named fields (honouring `#[serde(skip)]`),
//! * tuple structs with a single field (serialized transparently, like
//!   serde's newtype behaviour),
//! * enums with unit variants (serialized as the variant-name string) and
//!   newtype variants (serialized externally tagged: `{"Variant": inner}`),
//!
//! matching `serde_json`'s wire format for those shapes. Generics are not
//! supported — no derived type in this workspace is generic.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `struct`/`enum` item, reduced to what codegen needs.
enum Item {
    NamedStruct {
        name: String,
        /// `(field_name, skip)` — skipped fields are omitted when
        /// serializing and filled with `Default::default()` on the way in.
        fields: Vec<(String, bool)>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    Enum {
        name: String,
        /// `(variant_name, has_payload)`.
        variants: Vec<(String, bool)>,
    },
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

// ---------------------------------------------------------------- parsing

/// True if this attribute token group is `serde(skip)`.
fn attr_is_serde_skip(group: &proc_macro::Group) -> bool {
    let mut tokens = group.stream().into_iter();
    match (tokens.next(), tokens.next()) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args))) => {
            name.to_string() == "serde"
                && args
                    .stream()
                    .into_iter()
                    .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip"))
        }
        _ => false,
    }
}

/// Consumes leading `#[...]` attributes; returns true if any was
/// `#[serde(skip)]`.
fn skip_attrs(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        tokens.next();
        match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                skip |= attr_is_serde_skip(&g);
            }
            other => panic!("expected attribute body, found {other:?}"),
        }
    }
    skip
}

/// Consumes a leading visibility modifier (`pub`, `pub(crate)`, ...).
fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        tokens.next();
        if matches!(tokens.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs(&mut tokens);
    skip_visibility(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive compat: generic type `{name}` is not supported");
    }

    match kind.as_str() {
        "struct" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::NamedStruct {
                name,
                fields: parse_named_fields(g.stream()),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Item::TupleStruct {
                    name,
                    arity: count_tuple_fields(g.stream()),
                }
            }
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match tokens.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Item::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("expected enum body for `{name}`, found {other:?}"),
        },
        other => panic!("cannot derive for `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<(String, bool)> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        let skip = skip_attrs(&mut tokens);
        skip_visibility(&mut tokens);
        let field = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, found {other:?}"),
        }
        // Consume the type: everything until a comma at angle-bracket
        // depth 0. `<`/`>` are plain puncts at this level (delimited
        // groups handle `()`/`[]` nesting for us).
        let mut angle_depth = 0i32;
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push((field, skip));
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut angle_depth = 0i32;
    let mut fields = 0usize;
    let mut saw_token = false;
    for t in stream {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                fields += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    fields + usize::from(saw_token)
}

fn parse_variants(stream: TokenStream) -> Vec<(String, bool)> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        if tokens.peek().is_none() {
            break;
        }
        skip_attrs(&mut tokens);
        let variant = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let mut payload = false;
        // Payload, discriminant, then the separating comma.
        for t in tokens.by_ref() {
            match &t {
                TokenTree::Group(g)
                    if matches!(g.delimiter(), Delimiter::Parenthesis | Delimiter::Brace) =>
                {
                    if g.delimiter() == Delimiter::Brace {
                        panic!("struct enum variant `{variant}` is not supported");
                    }
                    payload = true;
                }
                TokenTree::Punct(p) if p.as_char() == ',' => break,
                _ => {}
            }
        }
        variants.push((variant, payload));
    }
    variants
}

// ---------------------------------------------------------------- codegen

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for (f, skip) in fields {
                if *skip {
                    continue;
                }
                pushes.push_str(&format!(
                    "__fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::Value::object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Serialize::to_value(&self.0)\n\
                         }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                    .collect();
                format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             ::serde::Value::Array(vec![{}])\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut arms = String::new();
            for (v, payload) in variants {
                if *payload {
                    arms.push_str(&format!(
                        "{name}::{v}(__inner) => ::serde::Value::object(vec![(\"{v}\".to_string(), ::serde::Serialize::to_value(__inner))]),\n"
                    ));
                } else {
                    arms.push_str(&format!(
                        "{name}::{v} => ::serde::Value::String(\"{v}\".to_string()),\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{arms}}}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    match item {
        Item::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for (f, skip) in fields {
                if *skip {
                    inits.push_str(&format!("{f}: ::std::default::Default::default(),\n"));
                } else {
                    inits.push_str(&format!(
                        "{f}: ::serde::decode_field(__map, \"{f}\", \"{name}\")?,\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __map = __v.expect_object(\"{name}\")?;\n\
                         ::std::result::Result::Ok({name} {{\n{inits}}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::TupleStruct { name, arity } => {
            if *arity == 1 {
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             ::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))\n\
                         }}\n\
                     }}"
                )
            } else {
                let elems: Vec<String> = (0..*arity)
                    .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                    .collect();
                format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             let __items = __v.expect_array_of(\"{name}\", {arity})?;\n\
                             ::std::result::Result::Ok({name}({}))\n\
                         }}\n\
                     }}",
                    elems.join(", ")
                )
            }
        }
        Item::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut payload_arms = String::new();
            for (v, payload) in variants {
                if *payload {
                    payload_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}(::serde::Deserialize::from_value(__inner)?)),\n"
                    ));
                } else {
                    unit_arms.push_str(&format!(
                        "\"{v}\" => ::std::result::Result::Ok({name}::{v}),\n"
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match __v {{\n\
                             ::serde::Value::String(__s) => match __s.as_str() {{\n\
                                 {unit_arms}\
                                 __other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                             }},\n\
                             ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                                 let (__tag, __inner) = &__entries[0];\n\
                                 match __tag.as_str() {{\n\
                                     {payload_arms}\
                                     __other => ::std::result::Result::Err(::serde::Error::new(format!(\"unknown variant `{{__other}}` for {name}\"))),\n\
                                 }}\n\
                             }}\n\
                             __other => ::std::result::Result::Err(::serde::Error::new(format!(\"invalid value for enum {name}: {{__other:?}}\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
