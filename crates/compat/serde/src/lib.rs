//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this crate provides the
//! small serialization surface the workspace needs with serde-compatible
//! *names* (`serde::Serialize`, `serde::Deserialize`, `#[derive(...)]`,
//! `#[serde(skip)]`) over a much simpler model: everything serializes
//! through a JSON-like [`Value`] tree, and `serde_json` (the sibling compat
//! crate) is just a printer/parser for that tree.
//!
//! The wire format matches what real `serde_json` would produce for the
//! derived shapes used here (named structs, transparent newtypes, unit enum
//! variants as strings, externally tagged newtype variants), so snapshots
//! written by this build remain readable by a build against real serde.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like number: integers are kept exact, not coerced through f64.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer.
    PosInt(u64),
    /// A negative integer.
    NegInt(i64),
    /// A float.
    Float(f64),
}

impl Number {
    /// The value as f64 (lossy for very large integers, like serde_json).
    pub fn as_f64(&self) -> f64 {
        match *self {
            Number::PosInt(v) => v as f64,
            Number::NegInt(v) => v as f64,
            Number::Float(v) => v,
        }
    }

    /// The value as u64 if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::PosInt(v) => Some(v),
            Number::NegInt(_) => None,
            Number::Float(v) if v >= 0.0 && v.fract() == 0.0 && v <= u64::MAX as f64 => {
                Some(v as u64)
            }
            Number::Float(_) => None,
        }
    }

    /// The value as i64 if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::PosInt(v) => i64::try_from(v).ok(),
            Number::NegInt(v) => Some(v),
            Number::Float(v)
                if v.fract() == 0.0 && v >= i64::MIN as f64 && v <= i64::MAX as f64 =>
            {
                Some(v as i64)
            }
            Number::Float(_) => None,
        }
    }
}

/// A JSON value tree. Objects preserve insertion order (like serde_json
/// with the default feature set preserves nothing — ordering here is a
/// convenience for stable output).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// Error raised by deserialization (and, for API symmetry, carried through
/// the infallible serialization entry points).
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error with the given message.
    pub fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Builds an object value from ordered pairs.
    pub fn object(fields: Vec<(String, Value)>) -> Value {
        Value::Object(fields)
    }

    /// Builds a string value.
    pub fn string(s: impl Into<String>) -> Value {
        Value::String(s.into())
    }

    /// The object entries, or an error naming the expected type.
    pub fn expect_object(&self, ty: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(entries) => Ok(entries),
            other => Err(Error::new(format!(
                "expected object for {ty}, got {other:?}"
            ))),
        }
    }

    /// The array elements if this is an array of exactly `len` elements.
    pub fn expect_array_of(&self, ty: &str, len: usize) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) if items.len() == len => Ok(items),
            other => Err(Error::new(format!(
                "expected array of {len} for {ty}, got {other:?}"
            ))),
        }
    }

    /// Immutable array access.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable array access (used to tamper with snapshots in tests).
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// String access.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// f64 access.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    /// u64 access.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key)
            .unwrap_or_else(|| panic!("no field {key:?} in value"))
    }
}

impl std::ops::IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        match self {
            Value::Object(entries) => entries
                .iter_mut()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .unwrap_or_else(|| panic!("no field {key:?} in object")),
            other => panic!("cannot index non-object value {other:?} with {key:?}"),
        }
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(items) => &items[index],
            other => panic!("cannot index non-array value {other:?} with {index}"),
        }
    }
}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// This value as a JSON-like tree.
    fn to_value(&self) -> Value;
}

/// Deserialization from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a JSON-like tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up and decodes a struct field. A missing field decodes from
/// `Null`, which lets `Option` fields default to `None` (matching serde's
/// treatment of omitted optional fields closely enough for this workspace).
pub fn decode_field<T: Deserialize>(
    map: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::from_value(v).map_err(|e| Error::new(format!("field `{name}` of {ty}: {e}")))
        }
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::new(format!("missing field `{name}` of {ty}"))),
    }
}

// ------------------------------------------------------------- primitives

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::new(format!(concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!(concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::PosInt(v as u64))
                } else {
                    Value::Number(Number::NegInt(v))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = match v {
                    Value::Number(n) => n.as_i64(),
                    _ => None,
                }
                .ok_or_else(|| Error::new(format!(concat!("expected ", stringify!($t), ", got {:?}"), v)))?;
                <$t>::try_from(n)
                    .map_err(|_| Error::new(format!(concat!("value {} out of range for ", stringify!($t)), n)))
            }
        }
    )*};
}
impl_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::new(format!("expected f64, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::Float(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::new(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::new(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

// ------------------------------------------------------------- containers

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::new(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + std::fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::new(format!("expected array of {N}, got {len} elements")))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $i:tt),+) with $n:tt;)*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$i.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = v.expect_array_of("tuple", $n)?;
                Ok(($($t::from_value(&items[$i])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A.0) with 1;
    (A.0, B.1) with 2;
    (A.0, B.1, C.2) with 3;
    (A.0, B.1, C.2, D.3) with 4;
}

/// Map keys: JSON objects only have string keys, so integer-keyed maps
/// stringify their keys — the same convention real serde_json uses.
pub trait JsonKey: Sized {
    /// The key as a JSON object key.
    fn to_key(&self) -> String;
    /// Parses the key back.
    fn from_key(key: &str) -> Result<Self, Error>;
}

impl JsonKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(key: &str) -> Result<Self, Error> {
        Ok(key.to_owned())
    }
}

macro_rules! impl_json_key {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(key: &str) -> Result<Self, Error> {
                key.parse()
                    .map_err(|_| Error::new(format!(concat!("invalid ", stringify!($t), " map key {:?}"), key)))
            }
        }
    )*};
}
impl_json_key!(u16, u32, u64, usize, i32, i64);

impl<K: JsonKey + std::hash::Hash + Eq, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort keys for stable output (HashMap iteration order is random).
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<K: JsonKey + std::hash::Hash + Eq, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.expect_object("map")?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}

impl<K: JsonKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: JsonKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let entries = v.expect_object("map")?;
        entries
            .iter()
            .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
            .collect()
    }
}
