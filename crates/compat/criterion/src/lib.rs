//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock harness with criterion's macro/type names so the
//! bench files compile and run unchanged (`criterion_group!`,
//! `criterion_main!`, `Criterion`, `BenchmarkId`, `Bencher::iter`,
//! benchmark groups with `sample_size`). Reporting is mean / p50 / min
//! per iteration over the sampled batches — no plots, no statistics
//! beyond that, but stable enough to compare configurations.
//!
//! Understands the harness flags cargo passes: `--bench` (ignored), a
//! positional substring filter, and `--test` (each benchmark runs one
//! batch only, which is how `cargo test --benches` smoke-runs benches).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness state.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    filter: Option<String>,
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => {}
                "--test" => test_mode = true,
                // Flags with a value we don't interpret.
                "--save-baseline" | "--baseline" | "--measurement-time" | "--warm-up-time"
                | "--sample-size" => {
                    let _ = args.next();
                }
                other if !other.starts_with('-') => filter = Some(other.to_owned()),
                _ => {}
            }
        }
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 30,
            filter,
            test_mode,
        }
    }
}

impl Criterion {
    /// Sets the warm-up duration.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the measurement duration.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let sample_size = self.sample_size;
        self.run_one(&id.to_string(), sample_size, f);
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, sample_size: usize, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            warm_up: if self.test_mode {
                Duration::ZERO
            } else {
                self.warm_up
            },
            measurement: if self.test_mode {
                Duration::ZERO
            } else {
                self.measurement
            },
            sample_size: if self.test_mode { 1 } else { sample_size },
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(id);
    }
}

/// A group of related benchmarks (criterion's `BenchmarkGroup`).
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl std::fmt::Display, f: F) {
        let full = format!("{}/{}", self.name, id);
        let sample_size = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run_one(&full, sample_size, f);
    }

    /// Ends the group (reporting happens per-benchmark).
    pub fn finish(self) {}
}

/// Identifier helpers mirroring criterion's `BenchmarkId`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a function name and a parameter.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{function}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Measures `f` repeatedly; per-iteration time is reported.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, during which the batch size is calibrated so each
        // sampled batch runs ≥ ~1/4 of the per-sample budget.
        let mut iters_per_batch = 1u64;
        let warm_deadline = Instant::now() + self.warm_up;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            let per_sample =
                self.measurement.max(Duration::from_millis(10)) / self.sample_size as u32;
            if dt * 4 >= per_sample || iters_per_batch >= (1 << 40) {
                if Instant::now() >= warm_deadline {
                    break;
                }
            } else {
                iters_per_batch = iters_per_batch.saturating_mul(2);
            }
            if Instant::now() >= warm_deadline {
                break;
            }
        }

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters_per_batch {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns
                .push(dt.as_nanos() as f64 / iters_per_batch as f64);
        }
    }

    fn report(&self, id: &str) {
        if self.samples_ns.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mean = self.samples_ns.iter().sum::<f64>() / self.samples_ns.len() as f64;
        let p50 = sorted[sorted.len() / 2];
        let min = sorted[0];
        println!(
            "{id:<40} time: [min {} median {} mean {}]",
            fmt_ns(min),
            fmt_ns(p50),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group; both criterion forms are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
