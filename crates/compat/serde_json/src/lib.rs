//! Offline stand-in for `serde_json`: a JSON printer and parser over the
//! compat `serde` crate's [`Value`] tree. Supports exactly the entry
//! points this workspace uses: [`to_string`], [`to_string_pretty`],
//! [`from_str`], [`to_value`], [`from_value`].
//!
//! Integers round-trip exactly (u64/i64 are never forced through f64);
//! floats print with Rust's shortest round-trip formatting, so
//! parse(print(x)) == x bit-for-bit — the property the snapshot round-trip
//! tests rely on.

use serde::{Deserialize, Serialize};
pub use serde::{Error, Number, Value};

/// Serializes a value into its JSON tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Rebuilds a typed value from a JSON tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::from_value(&value)
}

/// Serializes to compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes to 2-space-indented JSON text.
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into a typed value.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    T::from_value(&value)
}

// ---------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

fn write_number(out: &mut String, n: &Number) {
    match *n {
        Number::PosInt(v) => out.push_str(&v.to_string()),
        Number::NegInt(v) => out.push_str(&v.to_string()),
        Number::Float(v) if v.is_finite() => {
            // `{}` is Rust's shortest round-trip form; make sure a float
            // stays a float on re-parse ("1" would re-parse as PosInt and
            // still compare equal through as_f64, but keep it honest).
            let s = v.to_string();
            out.push_str(&s);
            if !s.contains(['.', 'e', 'E']) {
                out.push_str(".0");
            }
        }
        // Like serde_json's lossy modes: non-finite floats become null.
        Number::Float(_) => out.push_str("null"),
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ----------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected {:?} at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", Value::Bool(true)),
            Some(b'f') => self.parse_literal("false", Value::Bool(false)),
            Some(b'n') => self.parse_literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or '}}' at offset {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(Error::new(format!(
                        "expected ',' or ']' at offset {}, got {:?}",
                        self.pos,
                        other.map(|b| b as char)
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::new("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("invalid \\u escape"))?;
                            // Surrogate pairs are not needed for this
                            // workspace's label names; reject them plainly.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::new("invalid \\u code point"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let number = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::new(format!("invalid number {text:?}")))?,
            )
        } else if text.starts_with('-') {
            Number::NegInt(
                text.parse::<i64>()
                    .map_err(|_| Error::new(format!("invalid number {text:?}")))?,
            )
        } else {
            Number::PosInt(
                text.parse::<u64>()
                    .map_err(|_| Error::new(format!("invalid number {text:?}")))?,
            )
        };
        Ok(Value::Number(number))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("k".into(), Value::Number(Number::PosInt(3))),
            (
                "xs".into(),
                Value::Array(vec![
                    Value::Number(Number::Float(0.1)),
                    Value::Number(Number::NegInt(-7)),
                    Value::String("a\"b\\c\n".into()),
                    Value::Null,
                    Value::Bool(true),
                ]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        let compact = to_string(&v).unwrap();
        let back: Value = from_str(&compact).unwrap();
        assert_eq!(v, back);
        let pretty = to_string_pretty(&v).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn floats_round_trip_bit_exact() {
        for f in [0.1f64, 1.0 / 3.0, 1e-300, 123456789.123456, 1.0, -0.0] {
            let s = to_string(&f).unwrap();
            let back: f64 = from_str(&s).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{f} -> {s} -> {back}");
        }
    }

    #[test]
    fn u64_round_trips_exactly() {
        let v = u64::MAX;
        let s = to_string(&v).unwrap();
        let back: u64 = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("\"unterminated").is_err());
        assert!(from_str::<Value>("{} trailing").is_err());
    }
}
