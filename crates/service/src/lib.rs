#![warn(missing_docs)]

//! # phe-service — concurrent estimation serving
//!
//! Everything below `phe-service` in this workspace is batch-shaped:
//! build an estimator, run a table, exit. This crate turns the estimator
//! into what a production query optimizer actually consumes — a
//! **long-lived, concurrently queryable statistics service**:
//!
//! * [`registry::EstimatorRegistry`] — named serving slots holding
//!   `Arc`-swappable [`registry::ServingEstimator`] generations. A rebuilt
//!   snapshot **hot-swaps** in atomically; in-flight readers keep the
//!   generation they pinned, so no request ever sees a torn estimator.
//! * [`registry::ServingEstimator::estimate_batch`] — batched estimation
//!   that amortizes registry lookup, metrics, and protocol overhead over
//!   many paths, fronted by a sharded LRU [`cache::ShardedLruCache`] with
//!   hit/miss counters (optimizer workloads re-ask hot join paths
//!   constantly).
//! * [`server::Server`] — a std-only TCP serving loop (on unix a
//!   readiness-driven event loop over a `poll(2)` [`reactor`], with
//!   admission control and load shedding; elsewhere the
//!   [`threadpool`] fallback), speaking newline-delimited JSON (see
//!   [`protocol`]) through the `phe serve` and `phe query --remote`
//!   CLI subcommands.
//! * [`metrics::ServiceMetrics`] — qps, p50/p99 latency, cache hit rate;
//!   the serve loop prints the report on SIGINT/shutdown.
//!
//! ## In-process quickstart
//!
//! ```
//! use std::sync::Arc;
//! use phe_core::{EstimatorConfig, PathSelectivityEstimator};
//! use phe_datasets::{erdos_renyi, LabelDistribution};
//! use phe_graph::LabelId;
//! use phe_service::estimator::ServableEstimator;
//! use phe_service::registry::EstimatorRegistry;
//!
//! let g = erdos_renyi(60, 240, 3, LabelDistribution::Zipf { exponent: 1.0 }, 7);
//! let est = PathSelectivityEstimator::build(&g, EstimatorConfig {
//!     k: 3, beta: 16, threads: 1, ..EstimatorConfig::default()
//! }).unwrap();
//!
//! let registry = Arc::new(EstimatorRegistry::with_default_counters());
//! registry.register("main", ServableEstimator::from_estimator(est));
//!
//! // Pin a generation, serve a batch; hot-swaps never disturb it.
//! let generation = registry.get("main").unwrap();
//! let estimates = generation
//!     .estimate_id_batch(&[vec![LabelId(0), LabelId(1)], vec![LabelId(2)]])
//!     .unwrap();
//! assert_eq!(estimates.len(), 2);
//! ```
//!
//! Over the wire, the same batch is one NDJSON line — see [`protocol`]
//! for the full op set and [`client::ServiceClient`] for the blocking
//! client.

pub mod cache;
pub mod client;
pub mod estimator;
#[cfg(unix)]
pub mod eventloop;
pub mod maintenance;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod registry;
pub mod server;
pub mod threadpool;

pub use cache::{CacheCounters, CachedExpr, ExprCache, ShardedLruCache};
pub use client::{BatchEstimates, BatchExprEstimates, ClientError, ExprResult, ServiceClient};
pub use estimator::{CatalogResidency, EstimateError, ServableEstimator};
pub use maintenance::{
    EnqueueError, FailAction, FailPoint, FailurePlan, Gate, MaintenanceConfig,
    MaintenanceCoordinator, RunOutcome, SlotStatus,
};
pub use metrics::{MetricsReport, ServiceMetrics};
pub use registry::{EstimatorRegistry, ExprOutcome, ServingEstimator};
pub use server::{install_sigint_flag, load_snapshot, Server, ServerConfig};
pub use threadpool::ThreadPoolServer;
